"""Verifier passes: the static legality rules for kernel pools.

Each pass inspects one :class:`~repro.compiler.variants.VariantPool`
through a :class:`PoolContext` and yields :class:`Diagnostic` findings.
The rules encode the paper's Table 1 and §2.2–§3.4 requirements.

The authoritative rule catalog — every id, its default severity, summary
and remedy — lives in :mod:`repro.analyze.registry` (rendered by
``python -m repro.analyze --explain DYSEL-<PASS>-<NNN>``); the test suite
asserts emissions match it, so this module carries no duplicate table to
drift.  The cost-bound/dominance passes (``DYSEL-COST-*``,
``DYSEL-DOM-*``) live in :mod:`repro.analyze.dominance`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from ..compiler.analyses.safe_point import lcm_of, safe_point_plan
from ..compiler.analyses.side_effect import (
    SideEffectKind,
    analyze_side_effects,
)
from ..compiler.analyses.uniform import analyze_ir_uniformity
from ..compiler.variants import VariantPool
from ..config import AnalyzeSettings
from ..errors import AnalysisError
from ..kernel.ir import KernelIR
from ..modes import OrchestrationFlow, ProfilingMode
from .diagnostics import Diagnostic, Severity, combos

#: Fair-slice size (in workload units) above which coprime work-assignment
#: factors are flagged as a profiling-cost hazard.
HUGE_SLICE_UNITS = 1 << 20

#: Ratio beyond which static per-unit output footprints count as divergent
#: (generous: byte-scaling transforms legitimately perturb volumes).
FOOTPRINT_RATIO = 1.5

_PARTIAL = (ProfilingMode.HYBRID, ProfilingMode.SWAP)
_COMMITTING = (ProfilingMode.FULLY, ProfilingMode.HYBRID)


@dataclass(frozen=True)
class VerifyOverrides:
    """Programmer assertions that relax conservative analyses.

    The paper's analyses are deliberately conservative and explicitly
    overridable at the launch API (§3.4): atomics do not prove actual
    cross-work-group contention, and a data-dependent loop bound may be
    uniform in practice (the uniform-CSR example).  An override downgrades
    the corresponding ERROR findings to WARNING — the diagnostic stays
    visible, but stops blocking the launch.
    """

    atomics_race_free: bool = False
    uniform_workload: bool = False


@dataclass(frozen=True)
class PoolContext:
    """Everything a pass may consult about one pool-under-verification."""

    pool: VariantPool
    #: Device parallelism profiling must fill (slice geometry).
    compute_units: int = 1
    #: Units of a concrete launch, when known (CLI / pre-launch checks);
    #: ``None`` verifies workload-independent facts only.
    workload_units: Optional[int] = None
    overrides: VerifyOverrides = field(default_factory=VerifyOverrides)
    #: Device kind the pool will launch on ("cpu"/"gpu"); drives the
    #: cost-bound passes' device model selection.
    device_kind: str = "cpu"
    #: Analysis settings (dominance opt-in, widening bounds, configured
    #: rule adjustments); defaults leave the cost passes inert.
    settings: AnalyzeSettings = field(default_factory=AnalyzeSettings)

    @property
    def irs(self) -> Tuple[Tuple[str, KernelIR], ...]:
        """(variant name, IR) pairs, registration order."""
        return tuple((v.name, v.ir) for v in self.pool.variants)

    @property
    def wa_factors(self) -> Tuple[int, ...]:
        """Work assignment factors, registration order."""
        return tuple(v.wa_factor for v in self.pool.variants)


class VerifierPass:
    """Base class: one legality rule family over a pool."""

    #: Stable pass name (diagnostics group under it in DESIGN.md).
    name: str = "base"

    def run(self, ctx: PoolContext) -> Iterable[Diagnostic]:
        """Yield findings for the pool (may be empty)."""
        raise NotImplementedError


class ModeEligibilityPass(VerifierPass):
    """Per-variant mode legality from side-effect and uniformity analyses."""

    name = "mode-eligibility"

    def run(self, ctx: PoolContext) -> Iterable[Diagnostic]:
        """Emit side-effect and uniformity mode restrictions."""
        side = analyze_side_effects(ctx.irs)
        for finding in side.findings:
            rule, hint = {
                SideEffectKind.GLOBAL_ATOMIC: (
                    "DYSEL-MODE-001",
                    "use mode 'swap_sync', or assert the atomics are "
                    "race-free across work-groups via the launch override",
                ),
                SideEffectKind.OUTPUT_OVERLAP: (
                    "DYSEL-MODE-002",
                    "use mode 'swap_sync' (private per-candidate outputs)",
                ),
                SideEffectKind.OUTPUT_VARIES: (
                    "DYSEL-MODE-003",
                    "use mode 'swap_sync' (private per-candidate outputs)",
                ),
            }[finding.kind]
            diagnostic = Diagnostic(
                rule_id=rule,
                severity=Severity.ERROR,
                message=finding.describe()
                + "; profiled slices would not commit disjoint outputs "
                "(paper Table 1: swap-based profiling required)",
                variant=finding.variant,
                hint=hint,
                scope=combos(modes=_COMMITTING),
            )
            if finding.overridable and ctx.overrides.atomics_race_free:
                diagnostic = diagnostic.downgraded(
                    "programmer asserted race-free atomics"
                )
            yield diagnostic

        for name, ir in ctx.irs:
            for reason in analyze_ir_uniformity(ir, label=name):
                diagnostic = Diagnostic(
                    rule_id="DYSEL-MODE-004",
                    severity=Severity.ERROR,
                    message=reason
                    + "; fully-productive slices would be unequal work "
                    "(paper Table 1: regular workload required)",
                    variant=name,
                    hint="use mode 'hybrid_async', or assert uniformity "
                    "via the launch override",
                    scope=combos(modes=[ProfilingMode.FULLY]),
                )
                if ctx.overrides.uniform_workload:
                    diagnostic = diagnostic.downgraded(
                        "programmer asserted a uniform workload"
                    )
                yield diagnostic


class AsyncLegalityPass(VerifierPass):
    """Flow legality: what may overlap with eager execution."""

    name = "async-legality"

    def run(self, ctx: PoolContext) -> Iterable[Diagnostic]:
        """Emit the flow restrictions (swap is sync-only, &c)."""
        yield Diagnostic(
            rule_id="DYSEL-ASYNC-001",
            severity=Severity.ERROR,
            message=f"kernel {ctx.pool.name!r}: swap-based profiling cannot "
            "run asynchronously — the final output space is unknown until "
            "profiling completes (paper Table 1)",
            hint="use mode 'swap_sync'",
            scope=combos(
                modes=[ProfilingMode.SWAP], flows=[OrchestrationFlow.ASYNC]
            ),
        )
        atomic_variants = [
            name for name, ir in ctx.irs if ir.has_global_atomics
        ]
        if atomic_variants:
            yield Diagnostic(
                rule_id="DYSEL-ASYNC-002",
                severity=Severity.WARNING,
                message="global atomics in "
                f"{sorted(atomic_variants)} interleave with eager chunks "
                "dispatched during asynchronous profiling; commit order "
                "becomes timing-dependent",
                hint="prefer the synchronous flow for atomic kernels",
                scope=combos(
                    modes=_COMMITTING, flows=[OrchestrationFlow.ASYNC]
                ),
            )


class SandboxCapacityPass(VerifierPass):
    """Declared sandbox index vs what the partial modes must isolate."""

    name = "sandbox-capacity"

    def run(self, ctx: PoolContext) -> Iterable[Diagnostic]:
        """Check sandbox coverage against what the variants write."""
        pool = ctx.pool
        declared_outputs = set(pool.spec.signature.output_names)
        sandboxed = set(pool.spec.effective_sandbox_outputs)
        if not declared_outputs:
            yield Diagnostic(
                rule_id="DYSEL-SANDBOX-001",
                severity=Severity.ERROR,
                message=f"kernel {pool.name!r} declares no output buffers; "
                "hybrid/swap profiling has nothing to sandbox",
                hint="declare outputs via ArgSpec(is_output=True), or use "
                "mode 'fully'",
                scope=combos(modes=_PARTIAL),
            )
            return

        written_outputs = set()
        for _name, ir in ctx.irs:
            written_outputs |= set(ir.written_buffers) & declared_outputs
        uncovered = sorted(written_outputs - sandboxed)
        if uncovered:
            yield Diagnostic(
                rule_id="DYSEL-SANDBOX-002",
                severity=Severity.ERROR,
                message=f"kernel {pool.name!r}: outputs {uncovered} are "
                "written by variants but missing from sandbox_index; "
                "non-committing candidates would corrupt them during "
                "hybrid/swap profiling",
                hint="extend sandbox_index in DySelAddKernel to cover "
                "every written output",
                scope=combos(modes=_PARTIAL),
            )

        k = len(pool.variants)
        yield Diagnostic(
            rule_id="DYSEL-SANDBOX-003",
            severity=Severity.INFO,
            message=f"kernel {pool.name!r}: K={k} variants need at most "
            f"{max(0, k - 1)} sandbox copies (hybrid) / {k} private "
            f"copies (swap) of {sorted(sandboxed)} (paper Table 1)",
        )


class SignatureConsistencyPass(VerifierPass):
    """Cross-variant signature and output-footprint consistency."""

    name = "signature-consistency"

    def run(self, ctx: PoolContext) -> Iterable[Diagnostic]:
        """Check cross-variant signature/footprint consistency."""
        pool = ctx.pool
        declared_outputs = set(pool.spec.signature.output_names)
        declared_args = {a.name for a in pool.spec.signature.args}

        write_sets = {}
        for name, ir in ctx.irs:
            writes = set(ir.written_buffers)
            write_sets[name] = writes & declared_outputs
            undeclared = sorted(writes - declared_outputs)
            if undeclared:
                where = (
                    "undeclared arguments"
                    if set(undeclared) - declared_args
                    else "non-output arguments"
                )
                yield Diagnostic(
                    rule_id="DYSEL-SIG-001",
                    severity=Severity.ERROR,
                    message=f"{name}: writes {undeclared}, which are "
                    f"{where} of kernel {pool.name!r}; sandboxing cannot "
                    "isolate writes the signature does not declare",
                    variant=name,
                    hint="declare the buffers as outputs "
                    "(ArgSpec(is_output=True))",
                )

        distinct = {frozenset(s) for s in write_sets.values()}
        if len(distinct) > 1:
            detail = ", ".join(
                f"{name}: {sorted(writes)}"
                for name, writes in sorted(write_sets.items())
            )
            yield Diagnostic(
                rule_id="DYSEL-SIG-002",
                severity=Severity.ERROR,
                message=f"kernel {pool.name!r}: variants write different "
                f"output sets ({detail}); stitching fully-productive "
                "slices from different variants would leave outputs "
                "partially written",
                hint="use a partial mode, or align the variants' outputs",
                scope=combos(modes=[ProfilingMode.FULLY]),
            )

        ever_written = set().union(*write_sets.values()) if write_sets else set()
        for output in sorted(declared_outputs - ever_written):
            yield Diagnostic(
                rule_id="DYSEL-SIG-003",
                severity=Severity.WARNING,
                message=f"kernel {pool.name!r}: declared output {output!r} "
                "is never written in any variant's IR; side-effect "
                "analysis may be reasoning about an incomplete write set",
                hint="add the missing MemoryAccess(is_write=True) site or "
                "drop the output declaration",
            )

        for variant in pool.variants:
            if variant.ir.work_group_threads != variant.work_group_size:
                yield Diagnostic(
                    rule_id="DYSEL-SIG-004",
                    severity=Severity.INFO,
                    message=f"{variant.name}: IR models "
                    f"{variant.ir.work_group_threads} work-group threads "
                    f"but the variant launches {variant.work_group_size}; "
                    "cost-model efficiency rules may misestimate",
                    variant=variant.name,
                )

        yield from self._footprints(ctx, write_sets)

    def _footprints(self, ctx: PoolContext, write_sets) -> Iterable[Diagnostic]:
        """Static per-unit output volume, normalized by wa_factor.

        Variants whose write footprints are statically computable (no
        data-dependent bounds in a write site's scope) must agree within
        :data:`FOOTPRINT_RATIO` — each workload unit's output is the same
        function regardless of which variant computes it.
        """
        factors = {v.name: v.wa_factor for v in ctx.pool.variants}
        volumes = {}
        for name, ir in ctx.irs:
            volume = _static_output_bytes(ir, write_sets.get(name, set()))
            if volume is not None and volume > 0:
                # IR volumes are per work-group; a coarsened work-group
                # covers wa_factor units, so normalize before comparing.
                volumes[name] = volume / max(1, factors[name])
        if len(volumes) < 2:
            return
        low_name = min(volumes, key=volumes.get)
        high_name = max(volumes, key=volumes.get)
        low, high = volumes[low_name], volumes[high_name]
        if high > low * FOOTPRINT_RATIO:
            yield Diagnostic(
                rule_id="DYSEL-SIG-005",
                severity=Severity.WARNING,
                message=f"kernel {ctx.pool.name!r}: static per-unit output "
                f"footprints diverge after wa-factor normalization "
                f"({low_name}: {low:.0f} B/unit vs {high_name}: "
                f"{high:.0f} B/unit); variants may not compute the same "
                "output volume",
                hint="check bytes_per_trip on the write sites, or the "
                "wa_factor registered for the coarsened variants",
            )


def _static_output_bytes(ir: KernelIR, outputs) -> Optional[float]:
    """Per-unit bytes written to declared outputs, when statically known.

    Returns ``None`` when any write site sits under a data-dependent loop
    bound — static analysis cannot see that footprint (and uniform
    analysis already flags the pool).
    """
    total = 0.0
    for access in ir.accesses:
        if not access.is_write or access.buffer not in outputs:
            continue
        if access.scope is not None:
            loop_names: Tuple[str, ...] = access.scope
        else:
            loop_names = tuple(
                loop.name for loop in ir.enclosing_loops(access.loop)
            )
        trips = 1.0
        for name in loop_names:
            bound = ir.loop_named(name).bound
            if bound.is_data_dependent:
                return None
            trips *= float(bound.static_trips)
        total += access.bytes_per_trip * trips
    return total


class SafePointPass(VerifierPass):
    """Fair-slice feasibility from work-assignment-factor geometry."""

    name = "safe-point"

    def run(self, ctx: PoolContext) -> Iterable[Diagnostic]:
        """Check fair-slice feasibility of the profiling plan."""
        pool = ctx.pool
        k = len(pool.variants)
        if k == 1:
            yield Diagnostic(
                rule_id="DYSEL-SAFEPOINT-003",
                severity=Severity.INFO,
                message=f"kernel {pool.name!r}: single-variant pool; the "
                "launch policy skips profiling entirely",
            )
        base = lcm_of(ctx.wa_factors)
        if base >= HUGE_SLICE_UNITS:
            yield Diagnostic(
                rule_id="DYSEL-SAFEPOINT-002",
                severity=Severity.WARNING,
                message=f"kernel {pool.name!r}: near-coprime work "
                f"assignment factors {sorted(set(ctx.wa_factors))} give a "
                f"fair profiling slice of {base} units; profiling would "
                "consume a large workload share",
                hint="register wa_factors with small pairwise LCMs "
                "(powers of two)",
            )
        if ctx.workload_units is None:
            return
        try:
            plan = safe_point_plan(
                pool.variants,
                compute_units=ctx.compute_units,
                workload_units=ctx.workload_units,
            )
        except AnalysisError as exc:
            yield Diagnostic(
                rule_id="DYSEL-SAFEPOINT-001",
                severity=Severity.ERROR,
                message=f"kernel {pool.name!r}: {exc}",
                hint="grow the workload, reduce coprime wa_factors, or "
                "launch with profiling=False",
            )
            return
        if plan.units_per_variant * k > ctx.workload_units:
            yield Diagnostic(
                rule_id="DYSEL-SAFEPOINT-004",
                severity=Severity.ERROR,
                message=f"kernel {pool.name!r}: fully-productive profiling "
                f"needs {k} slices of {plan.units_per_variant} units but "
                f"the launch has only {ctx.workload_units}",
                hint="use a partial mode (one shared slice), or grow the "
                "workload",
                scope=combos(modes=[ProfilingMode.FULLY]),
            )


class WriteSetRacePass(VerifierPass):
    """Commit-range races between profiled slices and async eager chunks.

    Under the asynchronous flow, eager chunks execute concurrently with
    the profiling candidates.  Safe point geometry keeps the *unit* ranges
    disjoint — profiled slices occupy ``[0, K·S)`` (fully) or ``[0, S)``
    (hybrid) and eager dispatch starts after them — but unit-disjointness
    only implies write-disjointness when outputs are regular.  Overlapping
    or varying output ranges, and global atomic commits, break that
    implication: a profiled slice and an eager chunk may write the same
    locations concurrently.
    """

    name = "write-set-race"

    def run(self, ctx: PoolContext) -> Iterable[Diagnostic]:
        """Flag cross-work-group write races between variants."""
        pool = ctx.pool
        k = len(pool.variants)
        triggers: List[Tuple[str, str, bool]] = []  # (variant, why, atomic?)
        for name, ir in ctx.irs:
            for buffer in ir.global_atomic_buffers:
                triggers.append(
                    (name, f"global atomic commits to {buffer!r}", True)
                )
            if ir.output_ranges_overlap:
                triggers.append(
                    (name, "work-group output ranges may overlap", False)
                )
            if ir.output_range_varies:
                triggers.append(
                    (name, "output range varies across variants", False)
                )
        if not triggers:
            return

        slice_units = self._slice_units(ctx)
        geometry = (
            f"profiled commit ranges [0, {k}·{slice_units}) (fully) / "
            f"[0, {slice_units}) (hybrid) vs eager chunks from unit "
            f"{k * slice_units} / {slice_units}"
        )
        detail = "; ".join(f"{name}: {why}" for name, why, _ in triggers)
        only_atomics = all(atomic for _, _, atomic in triggers)
        diagnostic = Diagnostic(
            rule_id="DYSEL-RACE-001",
            severity=Severity.ERROR,
            message=f"kernel {pool.name!r}: write sets of profiled slices "
            f"and async eager chunks may overlap ({detail}); safe-point "
            f"geometry {geometry} does not separate them",
            hint="use the synchronous flow, or mode 'swap_sync'",
            scope=combos(
                modes=_COMMITTING, flows=[OrchestrationFlow.ASYNC]
            ),
        )
        if only_atomics and ctx.overrides.atomics_race_free:
            diagnostic = diagnostic.downgraded(
                "programmer asserted race-free atomics"
            )
        yield diagnostic

    def _slice_units(self, ctx: PoolContext) -> int:
        """Fair-slice size for the geometry message (best effort)."""
        base = lcm_of(ctx.wa_factors)
        workload = ctx.workload_units
        if workload is not None:
            try:
                return safe_point_plan(
                    ctx.pool.variants,
                    compute_units=ctx.compute_units,
                    workload_units=workload,
                ).units_per_variant
            except AnalysisError:
                pass
        # Workload-independent nominal geometry: fill the device once.
        factors = ctx.wa_factors
        fill = math.ceil(ctx.compute_units * max(factors) / base)
        return base * max(1, fill)


#: The default pass pipeline, in execution order.
DEFAULT_PASSES: Tuple[VerifierPass, ...] = (
    ModeEligibilityPass(),
    AsyncLegalityPass(),
    SandboxCapacityPass(),
    SignatureConsistencyPass(),
    SafePointPass(),
    WriteSetRacePass(),
)
