"""Deterministic, seedable fault plans.

A :class:`FaultPlan` is a script of misbehaviour for one run: a list of
:class:`FaultRule` objects, each describing *what* goes wrong (a
:class:`FaultKind`), *where* (kernel/variant matchers and an execution
stage), and *when* (skip the first ``after`` matching submissions, then
fire ``count`` times, each firing gated by ``probability`` drawn from a
seeded RNG stream).  Given the same plan, seed, and workload, the same
submissions fault — chaos runs are replayable from their seed alone,
which is what lets CI echo a failing seed for local reproduction.

Plans are consumed by :class:`repro.faults.FaultInjector`, which sits
between the execution engine and the variants' functional executors.
The runtime side of the story — retries, slice repair, quarantine,
degradation — lives in :mod:`repro.core` and is documented in
``docs/faults.md``.
"""

from __future__ import annotations

import enum
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError


class FaultKind(enum.Enum):
    """What a fault rule injects into a matching submission.

    * ``CRASH`` — the variant aborts before writing anything; the
      submission raises :class:`~repro.errors.VariantCrashFault`.
    * ``CORRUPT`` — the variant runs, then its written elements are
      scribbled over; raises :class:`~repro.errors.VariantCorruptionFault`.
    * ``LATENCY`` — every work-group of the submission is slowed by
      ``magnitude``× (no error; the candidate simply loses the race).
    * ``HANG`` — the submission is accepted but never completes; callers
      detect it with deadline waits and cancel the task.
    * ``TRANSIENT`` — a transient device failure; raises
      :class:`~repro.errors.TransientDeviceFault`, and retrying the same
      submission may succeed (the rule's budget depletes per firing).
    """

    CRASH = "crash"
    CORRUPT = "corrupt"
    LATENCY = "latency"
    HANG = "hang"
    TRANSIENT = "transient"


#: Kinds that surface as raised :class:`~repro.errors.VariantFault`s.
RAISING_KINDS = frozenset(
    {FaultKind.CRASH, FaultKind.CORRUPT, FaultKind.TRANSIENT}
)


@dataclass(frozen=True)
class FaultRule:
    """One line of a fault plan: inject ``kind`` into matching submissions.

    Parameters
    ----------
    kind:
        What to inject (:class:`FaultKind`).
    variant:
        Variant-name matcher; ``None`` matches every variant.
    kernel:
        Kernel-signature matcher; ``None`` matches every kernel.
    count:
        How many times this rule may fire; ``None`` means no limit.
    after:
        Matching submissions to let through before the rule arms.
    probability:
        Chance a matching, armed submission actually faults (drawn from
        the plan's seeded RNG; 1.0 = always).
    magnitude:
        ``LATENCY`` only: slowdown factor applied to work-group costs.
    """

    kind: FaultKind
    variant: Optional[str] = None
    kernel: Optional[str] = None
    count: Optional[int] = 1
    after: int = 0
    probability: float = 1.0
    magnitude: float = 10.0

    def __post_init__(self) -> None:
        if self.count is not None and self.count < 1:
            raise ConfigurationError(
                f"fault rule count must be >= 1 or None, got {self.count}"
            )
        if self.after < 0:
            raise ConfigurationError(
                f"fault rule after must be >= 0, got {self.after}"
            )
        if not 0.0 < self.probability <= 1.0:
            raise ConfigurationError(
                f"fault rule probability must be in (0, 1], got "
                f"{self.probability}"
            )
        if self.magnitude <= 1.0 and self.kind is FaultKind.LATENCY:
            raise ConfigurationError(
                f"latency magnitude must be > 1, got {self.magnitude}"
            )

    def matches(self, variant: str, kernel: Optional[str]) -> bool:
        """Whether this rule targets the given submission."""
        if self.variant is not None and self.variant != variant:
            return False
        if (
            self.kernel is not None
            and kernel is not None
            and self.kernel != kernel
        ):
            return False
        return True


@dataclass
class _RuleState:
    """Mutable firing state of one rule within a plan."""

    rule: FaultRule
    seen: int = 0
    fired: int = 0

    @property
    def exhausted(self) -> bool:
        """Whether the rule's firing budget is spent."""
        return self.rule.count is not None and self.fired >= self.rule.count


@dataclass(frozen=True)
class FaultDecision:
    """What the plan decided for one submission."""

    kind: FaultKind
    rule: FaultRule
    #: LATENCY only: multiplicative slowdown for this submission.
    magnitude: float = 1.0


@dataclass(frozen=True)
class FaultRecord:
    """One fault the runtime observed (and survived, or not).

    Collected by the orchestration flows and folded into the quarantine
    ledger by the runtime; also the payload of ``FAULT_INJECT`` trace
    events and of :class:`~repro.errors.ProfilingFaultError`.
    """

    kernel: str
    variant: str
    kind: str
    #: Where the fault hit: ``"profile"``, ``"eager"``, ``"remainder"``,
    #: ``"repair"``, or ``"batch"`` (profiling-off whole-workload run).
    stage: str
    #: Device clock when the fault was handled.
    at_cycles: float
    #: Submission attempts made (1 + transient retries).
    attempts: int = 1
    message: str = ""


class FaultPlan:
    """A seedable, deterministic schedule of injected faults.

    Thread-safe: the serving layer shares one plan across device workers,
    so rule state is updated under a lock.  ``reset()`` restores the
    pristine state (and RNG stream) for replaying the same chaos run.
    """

    def __init__(self, rules: Sequence[FaultRule], seed: int = 0) -> None:
        """Build a plan from rules; ``seed`` drives probability draws."""
        if seed < 0:
            raise ConfigurationError(f"fault seed must be >= 0, got {seed}")
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self.seed = seed
        self._lock = threading.Lock()
        self._states: List[_RuleState] = []
        self._rng = np.random.default_rng(seed)
        #: (kernel or "*", variant, kind value) -> injections performed.
        self.injections: Dict[Tuple[str, str, str], int] = {}
        self.reset()

    def reset(self) -> None:
        """Restore pristine rule state and the RNG stream."""
        with self._lock:
            self._states = [_RuleState(rule) for rule in self.rules]
            self._rng = np.random.default_rng(self.seed)
            self.injections = {}

    def decide(
        self, variant: str, kernel: Optional[str] = None
    ) -> Optional[FaultDecision]:
        """The fault (if any) to inject into one submission.

        The first armed, unexhausted, matching rule wins; its
        probability draw consumes from the plan's RNG stream even when
        it comes up clean, so runs with the same seed replay exactly.
        """
        with self._lock:
            for state in self._states:
                rule = state.rule
                if not rule.matches(variant, kernel):
                    continue
                state.seen += 1
                if state.exhausted or state.seen <= rule.after:
                    continue
                if rule.probability < 1.0:
                    if self._rng.random() >= rule.probability:
                        continue
                state.fired += 1
                key = (kernel or "*", variant, rule.kind.value)
                self.injections[key] = self.injections.get(key, 0) + 1
                return FaultDecision(
                    kind=rule.kind, rule=rule, magnitude=rule.magnitude
                )
        return None

    @property
    def total_injected(self) -> int:
        """Faults injected so far (across all rules)."""
        with self._lock:
            return sum(self.injections.values())

    def corruption_rng(self) -> np.random.Generator:
        """RNG used to scribble corrupted output (seed-derived)."""
        return np.random.default_rng((self.seed, 0xC0FFEE))

    def __repr__(self) -> str:
        return (
            f"FaultPlan({len(self.rules)} rule(s), seed={self.seed}, "
            f"injected={self.total_injected})"
        )


def crash_once(variant: str, kernel: Optional[str] = None) -> FaultRule:
    """Convenience: crash the named variant's next submission."""
    return FaultRule(kind=FaultKind.CRASH, variant=variant, kernel=kernel)


def corrupt_once(variant: str, kernel: Optional[str] = None) -> FaultRule:
    """Convenience: corrupt the named variant's next submission."""
    return FaultRule(kind=FaultKind.CORRUPT, variant=variant, kernel=kernel)
