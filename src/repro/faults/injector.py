"""Fault injection at the engine's functional-execution boundary.

:class:`FaultInjector` sits where :class:`repro.device.ExecutionEngine`
would normally call ``variant.execute``: the engine hands every
submission to :meth:`FaultInjector.intercept`, which consults the
:class:`~repro.faults.FaultPlan` and either runs the variant cleanly or
makes it misbehave.  Fault semantics, per kind:

* **CRASH / TRANSIENT** — raise *before* functional execution; the
  variant writes nothing, exactly like a kernel that aborted on its
  first instruction.
* **CORRUPT** — run the variant, then scribble seeded garbage over the
  elements it wrote (detected by snapshot/diff of the writable buffers),
  and raise.  The corrupt bytes are really in the buffers — hardening
  must discard sandboxes and repair productive slices, not just note
  the error.
* **HANG** — skip execution and report ``hang=True``; the engine
  accepts the task but never schedules it, so only a deadline wait
  (:meth:`repro.device.ExecutionEngine.wait_deadline`) gets the host
  unstuck.
* **LATENCY** — run cleanly but report a work-group slowdown factor;
  no error is raised, the candidate just measures slower.

The injector is pure policy: it never touches the simulated clock or
the scheduler, so timing stays the engine's business.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from ..errors import (
    TransientDeviceFault,
    VariantCorruptionFault,
    VariantCrashFault,
)
from ..kernel.kernel import KernelVariant, WorkRange
from .plan import FaultDecision, FaultKind, FaultPlan


@dataclass(frozen=True)
class InjectionOutcome:
    """What happened to one intercepted submission."""

    #: Whether the variant's executor actually ran (and wrote output).
    executed: bool
    #: The engine must accept the task but never schedule it.
    hang: bool = False
    #: Multiplier on every work-group duration (1.0 = nominal).
    latency_scale: float = 1.0
    #: The plan decision behind any misbehaviour (``None`` = clean run).
    decision: Optional[FaultDecision] = None


#: Clean outcome shared by all uninjected submissions.
CLEAN = InjectionOutcome(executed=True)


class FaultInjector:
    """Applies a :class:`FaultPlan` to engine submissions.

    One injector is installed per engine
    (:meth:`repro.core.runtime.DySelRuntime.install_faults`); serving
    fleets install one per device worker, all sharing a thread-safe
    plan.  ``kernel`` is launch context set by the runtime so
    kernel-scoped rules match; a worker runtime is single-threaded, so
    plain attribute assignment is safe.
    """

    def __init__(self, plan: FaultPlan, kernel: Optional[str] = None) -> None:
        """Wrap ``plan``; ``kernel`` seeds the launch context."""
        self.plan = plan
        self.kernel = kernel
        self._rng = plan.corruption_rng()

    def intercept(
        self,
        variant: KernelVariant,
        args: Mapping[str, object],
        units: WorkRange,
    ) -> InjectionOutcome:
        """Run (or sabotage) one submission's functional execution.

        Raises the matching :class:`~repro.errors.VariantFault` subclass
        for CRASH / TRANSIENT / CORRUPT decisions; returns an
        :class:`InjectionOutcome` otherwise.
        """
        decision = self.plan.decide(variant.name, self.kernel)
        if decision is None:
            variant.execute(args, units)
            return CLEAN

        kind = decision.kind
        if kind is FaultKind.CRASH:
            raise VariantCrashFault(
                f"variant {variant.name!r} crashed over {units} "
                "(injected)",
                variant=variant.name,
                kernel=self.kernel or "",
                kind=kind.value,
            )
        if kind is FaultKind.TRANSIENT:
            raise TransientDeviceFault(
                f"transient device failure running {variant.name!r} over "
                f"{units} (injected)",
                variant=variant.name,
                kernel=self.kernel or "",
                kind=kind.value,
            )
        if kind is FaultKind.HANG:
            return InjectionOutcome(
                executed=False, hang=True, decision=decision
            )
        if kind is FaultKind.LATENCY:
            variant.execute(args, units)
            return InjectionOutcome(
                executed=True,
                latency_scale=decision.magnitude,
                decision=decision,
            )

        # CORRUPT: execute, then scribble over what was written.
        before = _snapshot(args)
        variant.execute(args, units)
        scribbled = _scribble(args, before, self._rng)
        raise VariantCorruptionFault(
            f"variant {variant.name!r} corrupted {scribbled} element(s) "
            f"over {units} (injected)",
            variant=variant.name,
            kernel=self.kernel or "",
            kind=kind.value,
        )


def _snapshot(args: Mapping[str, object]) -> Dict[str, np.ndarray]:
    """Copy every writable buffer's contents before execution."""
    before: Dict[str, np.ndarray] = {}
    for name, value in args.items():
        data = _writable_array(value)
        if data is not None:
            before[name] = data.copy()
    return before


def _scribble(
    args: Mapping[str, object],
    before: Mapping[str, np.ndarray],
    rng: np.random.Generator,
) -> int:
    """Overwrite every element the execution changed with seeded noise.

    Diffing against the snapshot confines the damage to buffers (and
    elements) the variant actually wrote — shared inputs are never
    touched, so corruption cannot leak into sibling candidates through
    read-only arguments.  Returns the number of elements scribbled.
    """
    scribbled = 0
    for name, value in args.items():
        data = _writable_array(value)
        if data is None or name not in before:
            continue
        flat = data.reshape(-1)
        old = before[name].reshape(-1)
        changed = np.flatnonzero(flat != old)
        if changed.size == 0:
            continue
        noise = rng.standard_normal(changed.size) * 1e6 + 1e6
        flat[changed] = noise.astype(flat.dtype, copy=False)
        scribbled += int(changed.size)
    return scribbled


def _writable_array(value: object) -> Optional[np.ndarray]:
    """The mutable ndarray behind an argument, if it has one."""
    data = getattr(value, "data", None)
    if isinstance(data, np.ndarray) and getattr(value, "writable", False):
        return data
    if isinstance(value, np.ndarray):
        return value
    return None


def count_by_variant(plan: FaultPlan) -> Dict[Tuple[str, str], int]:
    """Aggregate a plan's injections to (kernel, variant) -> count."""
    totals: Dict[Tuple[str, str], int] = {}
    for (kernel, variant, _kind), n in plan.injections.items():
        key = (kernel, variant)
        totals[key] = totals.get(key, 0) + n
    return totals
