"""Variant quarantine: keeping repeat offenders off the device.

A :class:`VariantQuarantine` ledger counts lifetime faults per
(kernel, variant).  When a variant reaches the policy's
``quarantine_threshold`` it is *quarantined*: the runtime filters it out
of every pool before selection, so neither profiling nor eager dispatch
will touch it.  Quarantine is not forever — after ``parole_ttl``
ledger-clock seconds the variant is *paroled*: its fault count resets
and it may compete again, but a single further fault during parole
re-quarantines it immediately (the count restarts against the same
threshold).

The ledger is shared infrastructure: a serving fleet keeps one ledger in
its :class:`repro.serve.SelectionStore` so a variant that misbehaves for
one client is off-limits for every client, and the ledger survives
restarts via the store's JSON persistence (ages are stored relative so
snapshots remain meaningful after a restart, matching the store's
timestamp handling).  The clock is injectable for deterministic tests.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..config import FaultPolicy
from ..errors import StoreError


@dataclass
class QuarantineEntry:
    """Ledger state for one (kernel, variant)."""

    #: Lifetime faults since the last parole.
    fault_count: int = 0
    #: Ledger-clock time of quarantine, ``None`` while at liberty.
    quarantined_at: Optional[float] = None
    #: Fault-kind value strings observed, most recent last (capped).
    kinds: List[str] = field(default_factory=list)
    #: Times this variant has been quarantined (survives parole).
    terms_served: int = 0


#: Observed fault kinds kept per entry (diagnostic breadcrumbs only).
_MAX_KINDS = 8


class VariantQuarantine:
    """Thread-safe fault ledger with threshold quarantine and TTL parole."""

    def __init__(
        self,
        policy: Optional[FaultPolicy] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        """``policy`` sets threshold/TTL; ``clock`` is injectable."""
        self.policy = policy if policy is not None else FaultPolicy()
        self._clock = clock if clock is not None else time.monotonic
        self._lock = threading.RLock()
        self._entries: Dict[Tuple[str, str], QuarantineEntry] = {}

    # ------------------------------------------------------------------
    # Recording and querying
    # ------------------------------------------------------------------

    def note_fault(self, kernel: str, variant: str, kind: str = "") -> bool:
        """Record one fault; returns True if this tips into quarantine."""
        with self._lock:
            entry = self._entries.setdefault(
                (kernel, variant), QuarantineEntry()
            )
            self._parole_if_due(entry)
            entry.fault_count += 1
            if kind:
                entry.kinds.append(kind)
                del entry.kinds[:-_MAX_KINDS]
            if (
                entry.quarantined_at is None
                and entry.fault_count >= self.policy.quarantine_threshold
            ):
                entry.quarantined_at = self._clock()
                entry.terms_served += 1
                return True
            return False

    def is_quarantined(self, kernel: str, variant: str) -> bool:
        """Whether the variant is currently barred (parole applied lazily)."""
        with self._lock:
            entry = self._entries.get((kernel, variant))
            if entry is None:
                return False
            self._parole_if_due(entry)
            return entry.quarantined_at is not None

    def quarantined(self, kernel: str) -> Tuple[str, ...]:
        """Names of the kernel's currently quarantined variants, sorted."""
        with self._lock:
            names = [
                variant
                for (k, variant), entry in self._entries.items()
                if k == kernel and not self._parole_if_due(entry)
                and entry.quarantined_at is not None
            ]
            return tuple(sorted(names))

    def fault_count(self, kernel: str, variant: str) -> int:
        """Faults recorded since the variant's last parole."""
        with self._lock:
            entry = self._entries.get((kernel, variant))
            return 0 if entry is None else entry.fault_count

    def release(self, kernel: str, variant: str) -> bool:
        """Manually parole a variant; returns True if it was quarantined."""
        with self._lock:
            entry = self._entries.get((kernel, variant))
            if entry is None or entry.quarantined_at is None:
                return False
            entry.quarantined_at = None
            entry.fault_count = 0
            return True

    def clear(self) -> None:
        """Forget every entry (tests, store resets)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        """Number of (kernel, variant) pairs with ledger state."""
        with self._lock:
            return len(self._entries)

    def _parole_if_due(self, entry: QuarantineEntry) -> bool:
        """Apply TTL parole to one entry; returns True if paroled now."""
        if entry.quarantined_at is None:
            return False
        ttl = self.policy.parole_ttl
        if ttl is None:
            return False
        if self._clock() - entry.quarantined_at >= ttl:
            entry.quarantined_at = None
            entry.fault_count = 0
            return True
        return False

    # ------------------------------------------------------------------
    # Persistence (SelectionStore integration)
    # ------------------------------------------------------------------

    def to_payload(self) -> Dict[str, Dict[str, object]]:
        """Serialize to a JSON-safe mapping with *relative* quarantine ages.

        Key is ``"kernel\\x1fvariant"`` (unit-separator join, matching
        no legal kernel/variant name); ``quarantine_age`` is seconds
        since quarantine so a persisted ledger stays meaningful across
        process restarts with unrelated clock epochs.
        """
        now = self._clock()
        with self._lock:
            payload: Dict[str, Dict[str, object]] = {}
            for (kernel, variant), entry in self._entries.items():
                self._parole_if_due(entry)
                item: Dict[str, object] = {
                    "kernel": kernel,
                    "variant": variant,
                    "fault_count": entry.fault_count,
                    "kinds": list(entry.kinds),
                    "terms_served": entry.terms_served,
                    "quarantine_age": (
                        None
                        if entry.quarantined_at is None
                        else max(0.0, now - entry.quarantined_at)
                    ),
                }
                payload["\x1f".join((kernel, variant))] = item
            return payload

    def load_payload(self, payload: Mapping[str, Mapping[str, object]]) -> None:
        """Restore entries from :meth:`to_payload` output (replaces state)."""
        now = self._clock()
        entries: Dict[Tuple[str, str], QuarantineEntry] = {}
        for key, item in payload.items():
            if not isinstance(item, Mapping):
                raise StoreError(
                    f"quarantine entry {key!r} is not an object"
                )
            try:
                kernel = str(item["kernel"])
                variant = str(item["variant"])
                fault_count = int(item["fault_count"])
                age = item.get("quarantine_age")
            except (KeyError, TypeError, ValueError) as exc:
                raise StoreError(
                    f"quarantine entry {key!r} is malformed: {exc}"
                ) from exc
            entry = QuarantineEntry(
                fault_count=fault_count,
                quarantined_at=None if age is None else now - float(age),
                kinds=[str(k) for k in item.get("kinds", ())][-_MAX_KINDS:],
                terms_served=int(item.get("terms_served", 0)),
            )
            entries[(kernel, variant)] = entry
        with self._lock:
            self._entries = entries

    def __repr__(self) -> str:
        with self._lock:
            active = sum(
                1
                for entry in self._entries.values()
                if entry.quarantined_at is not None
            )
            return (
                f"VariantQuarantine({len(self._entries)} tracked, "
                f"{active} quarantined, "
                f"threshold={self.policy.quarantine_threshold})"
            )
