"""Fault injection and graceful degradation for the DySel runtime.

DySel's profiling is *productive* — candidate outputs become real
results — so a misbehaving variant corrupts user-visible data, not just
a timing sample.  This package supplies both halves of the answer:

* **Injection** (:class:`FaultPlan`, :class:`FaultInjector`): a
  deterministic, seedable script of variant crashes, wrong-output
  corruption, latency spikes, hangs, and transient device failures,
  applied at the engine's functional-execution boundary.
* **Containment** (:class:`VariantQuarantine`): a thread-safe ledger
  that bars repeat offenders from selection, with TTL-based parole,
  persisted alongside selections in :class:`repro.serve.SelectionStore`.

The hardening that *reacts* to injected faults — transient retries with
capped backoff, discarding faulty sandboxes, re-running corrupt
productive slices with a surviving variant, degrading to the pool
default, and the structured :class:`repro.errors.LaunchAbortedError`
terminal failure — lives in :mod:`repro.core` and
:mod:`repro.serve`; see ``docs/faults.md`` for the state machine.
"""

from .injector import CLEAN, FaultInjector, InjectionOutcome, count_by_variant
from .plan import (
    RAISING_KINDS,
    FaultDecision,
    FaultKind,
    FaultPlan,
    FaultRecord,
    FaultRule,
    corrupt_once,
    crash_once,
)
from .quarantine import QuarantineEntry, VariantQuarantine

__all__ = [
    "CLEAN",
    "RAISING_KINDS",
    "FaultDecision",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultRecord",
    "FaultRule",
    "InjectionOutcome",
    "QuarantineEntry",
    "VariantQuarantine",
    "corrupt_once",
    "count_by_variant",
    "crash_once",
]
