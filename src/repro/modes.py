"""Shared vocabulary: profiling modes and orchestration flows.

Defined at the package top level because both sides of DySel speak it: the
compiler (:mod:`repro.compiler`) recommends a productive profiling mode
from its analyses, and the runtime (:mod:`repro.core`) executes it under a
synchronous or asynchronous orchestration flow (paper §2.2–§2.4, Fig 6b's
``mode`` parameter).
"""

from __future__ import annotations

import enum


class ProfilingMode(enum.Enum):
    """The three productive micro-profiling modes (paper §2.2, Table 1).

    * ``FULLY`` — fully-productive: each candidate profiles a distinct
      slice; all K slices contribute to the output; zero extra space;
      requires regular workload and disjoint outputs.
    * ``HYBRID`` — hybrid-based partial-productive: all candidates profile
      the *same* slice; the first candidate commits, the others write to
      sandboxes (≤ K−1 extra copies); handles irregular workload.
    * ``SWAP`` — swap-based partial-productive: every candidate runs with
      a private output (≤ K copies); the winner's output is swapped in;
      handles overlapping/varying output ranges, atomics, and algorithm
      changes; cannot run asynchronously (the final output space is
      unknown until profiling completes).
    """

    FULLY = "fully"
    HYBRID = "hybrid"
    SWAP = "swap"

    @property
    def productive_slices(self) -> str:
        """How many profiled slices contribute to the output ("K" or "1")."""
        return "K" if self is ProfilingMode.FULLY else "1"

    @property
    def supports_async(self) -> bool:
        """Whether the asynchronous flow may run this mode (Table 1)."""
        return self is not ProfilingMode.SWAP


class OrchestrationFlow(enum.Enum):
    """How profiling overlaps the rest of the launch (paper §2.4, Fig 4).

    * ``SYNC`` — barrier after profiling, then one batch with the winner.
    * ``ASYNC`` — eager execution in chunks with the current-best variant
      while profiling completes at higher priority.
    """

    SYNC = "sync"
    ASYNC = "async"
