"""Report formatting: the rows/series the paper's figures plot."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class RelativeBar:
    """One bar of a relative-execution-time figure."""

    group: str
    series: str
    value: float
    annotation: str = ""


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the paper's cross-benchmark aggregate)."""
    if not values:
        raise ValueError("geomean of empty sequence")
    product = 1.0
    for value in values:
        if value <= 0:
            raise ValueError(f"geomean requires positive values, got {value}")
        product *= value
    return product ** (1.0 / len(values))


def format_figure(
    title: str,
    bars: Sequence[RelativeBar],
    value_header: str = "relative time over oracle (lower is better)",
) -> str:
    """Render a figure's bars as an aligned text table, grouped like the
    paper's x-axis (benchmark groups × strategy series)."""
    groups: List[str] = []
    series: List[str] = []
    for bar in bars:
        if bar.group not in groups:
            groups.append(bar.group)
        if bar.series not in series:
            series.append(bar.series)
    lookup = {(bar.group, bar.series): bar for bar in bars}

    group_width = max([len("benchmark")] + [len(g) for g in groups]) + 2
    col_width = max([8] + [len(s) for s in series]) + 2
    lines = [title, "=" * len(title), f"({value_header})", ""]
    header = "benchmark".ljust(group_width) + "".join(
        s.rjust(col_width) for s in series
    )
    lines.append(header)
    lines.append("-" * len(header))
    for group in groups:
        row = group.ljust(group_width)
        for name in series:
            bar = lookup.get((group, name))
            cell = f"{bar.value:.2f}" if bar is not None else "-"
            row += cell.rjust(col_width)
        lines.append(row)
    return "\n".join(lines)


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Render a generic aligned text table."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [
        max([len(h)] + [len(row[i]) for row in str_rows]) + 2
        for i, h in enumerate(headers)
    ]
    lines = [title, "=" * len(title), ""]
    lines.append("".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("-" * sum(widths))
    for row in str_rows:
        lines.append("".join(row[i].ljust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)
