"""Kernel-launch census (paper Figure 2).

Figure 2 accumulates, across all Parboil and Rodinia OpenCL benchmarks,
how many kernel invocations fall into each work-group-count bucket — the
evidence that workload over-decomposition makes micro-profiling cheap:
most invocations carry 128–32768 work-groups, and launches under 128
work-groups (where DySel deactivates) are rare enough to drop.

We regenerate the census from our benchmark suite: each application
contributes its kernels' base work-group counts times the number of
invocations a realistic run performs (iterative solvers launch their
kernel per step; the counts below are the suites' default run lengths).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..config import DEFAULT_CONFIG, ReproConfig

#: (application, kernel, base work-groups, invocations per run).
#: Work-group counts are our suite's defaults (base variant, one
#: work-group per work-unit block); invocation counts are the benchmark
#: suites' default iteration counts — CG-style solvers and PDE steppers
#: dominate the high-invocation mass, matching the paper's observation.
CensusEntry = Tuple[str, str, int, int]


def suite_entries(config: ReproConfig = DEFAULT_CONFIG) -> List[CensusEntry]:
    """The launch census of our benchmark suite's default runs."""
    return [
        # Parboil
        ("sgemm", "sgemm", 2304, 1),
        ("stencil", "jacobi7", 2048, 100),
        ("cutcp", "lattice", 4096, 10),
        ("spmv-jds", "spmv", 512, 1000),  # CG solver inner loop
        ("mri-q", "computeQ", 2048, 2),
        ("histo", "histogram", 1024, 20),
        ("tpacf", "correlation", 201, 1),
        ("mri-q", "computePhiMag", 64, 2),
        ("sad", "larger_sad_calc_16", 99, 1),
        ("lbm", "collide-stream", 32768, 300),
        # Rodinia
        ("kmeans", "assign", 4096, 20),
        ("kmeans", "update", 256, 20),
        ("particle-filter", "find_index", 500, 100),
        ("particle-filter", "normalize", 500, 100),
        ("hotspot", "temperature", 1849, 360),
        ("bfs", "frontier", 1954, 24),
        ("srad", "srad1", 8192, 100),
        ("srad", "srad2", 8192, 100),
        ("lud", "diagonal", 128, 64),
        ("nw", "needle", 255, 128),
        ("backprop", "forward", 4096, 1),
        ("streamcluster", "pgain", 1024, 500),
        # SHOC
        ("spmv-csr", "spmv", 4096, 1000),  # CG solver inner loop
        ("reduction", "reduce", 256, 64),
        ("scan", "scan", 512, 64),
    ]


#: Figure 2's x-axis buckets (work-group counts, powers of two).
BUCKETS = (128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768)


@dataclass(frozen=True)
class Census:
    """Accumulated invocation counts per work-group bucket."""

    counts: Dict[int, int]
    dropped_small: int

    def series(self) -> List[Tuple[int, int]]:
        """(bucket, invocations) pairs in x order."""
        return [(bucket, self.counts.get(bucket, 0)) for bucket in BUCKETS]


def bucket_of(work_groups: int) -> int:
    """Round a work-group count down to its Figure 2 bucket."""
    chosen = BUCKETS[0]
    for bucket in BUCKETS:
        if work_groups >= bucket:
            chosen = bucket
    return chosen


def collect_census(config: ReproConfig = DEFAULT_CONFIG) -> Census:
    """Accumulate the suite's launches into Figure 2's buckets.

    Launches under 128 work-groups are counted separately and dropped
    from the plot, as the paper does.
    """
    counts: Dict[int, int] = {}
    dropped = 0
    for _app, _kernel, work_groups, invocations in suite_entries(config):
        if work_groups < BUCKETS[0]:
            dropped += invocations
            continue
        bucket = bucket_of(work_groups)
        counts[bucket] = counts.get(bucket, 0) + invocations
    return Census(counts=counts, dropped_small=dropped)
