"""Experiment harness: oracle/baseline runners and figure regeneration.

:mod:`~repro.harness.runner` executes a benchmark case under one selection
strategy (a fixed pure variant, a static heuristic's choice, or DySel
itself) and reports wall cycles; :mod:`~repro.harness.report` formats the
relative-to-oracle tables the paper's figures plot;
:mod:`~repro.harness.experiments` holds one module per table/figure.
"""

from .report import RelativeBar, format_figure, format_table
from .runner import (
    CaseEvaluation,
    RunResult,
    evaluate_case,
    run_dysel,
    run_pure,
    run_served,
)

__all__ = [
    "CaseEvaluation",
    "RelativeBar",
    "RunResult",
    "evaluate_case",
    "format_figure",
    "format_table",
    "run_dysel",
    "run_pure",
    "run_served",
]
