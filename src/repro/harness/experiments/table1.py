"""Table 1: properties of the three productive profiling modes.

Regenerates the summary table — productive output slices during
profiling, extra space requirement, and asynchronous-flow support — by
*measuring* each property on a live launch rather than restating
constants: a K-variant pool is profiled under each mode and the plan's
accounting is read back.
"""

from __future__ import annotations

from typing import Dict

from ...compiler.analyses.safe_point import safe_point_plan
from ...config import DEFAULT_CONFIG, ReproConfig
from ...core.productive import plan_profiling
from ...device.cpu import make_cpu
from ...kernel.launch import LaunchConfig
from ...modes import ProfilingMode
from ...workloads import spmv_csr
from ..report import format_table
from . import ExperimentResult


def run(config: ReproConfig = DEFAULT_CONFIG, quick: bool = False) -> ExperimentResult:
    """Regenerate Table 1."""
    size = 2048 if quick else 8192
    case = spmv_csr.input_dependent_case("cpu", "random", size, config)
    pool = case.pool
    k = len(pool.variants)
    device = make_cpu(config)
    args = case.fresh_args()
    launch = LaunchConfig.create(
        pool.spec.signature, args, case.workload_units
    )
    safe = safe_point_plan(
        pool.variants,
        compute_units=device.spec.compute_units,
        workload_units=case.workload_units,
    )

    rows = []
    data: Dict[str, Dict[str, object]] = {}
    for mode in ProfilingMode:
        plan = plan_profiling(pool, mode, launch, safe)
        productive = plan.productive_task_count
        copies = plan.extra_copies
        data[mode.value] = {
            "k": k,
            "productive_slices": productive,
            "extra_copies": copies,
            "async_support": mode.supports_async,
        }
        rows.append(
            (
                f"{mode.value}-productive profiling",
                f"{productive} (of K={k})",
                f"{copies} copies (bound {'0' if mode is ProfilingMode.FULLY else ('K-1' if mode is ProfilingMode.HYBRID else 'K')})",
                "Yes" if mode.supports_async else "No",
            )
        )
        plan.allocator.release_all()
    text = format_table(
        "Table 1: productive profiling modes",
        (
            "profiling method",
            "productive output in profiling",
            "extra space requirement",
            "async support",
        ),
        rows,
    )
    return ExperimentResult(
        experiment="table1", title="Table 1", text=text, data=data
    )
