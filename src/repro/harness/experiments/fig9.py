"""Figure 9: DySel on data placement, GPU (Case Study II).

Two benchmarks (spmv-csr on the random matrix, particle filter with
32,000 particles), pools of data-placement policies.  Bars, relative to
the oracle: Oracle, Sync, Async (best/worst initial), PORPLE's pick (its
Kepler-targeted policy), the Jang-rule heuristic's pick, and Worst.

Paper shape: on spmv-csr PORPLE loses 1.29×, the heuristic 2.29× (worst),
and the optimal policy is PORPLE's *Fermi* output; on particle filter both
baselines are optimal and Rodinia's original placement trails ~1.17×;
DySel within 4%.
"""

from __future__ import annotations

from typing import Dict, List

from ...config import DEFAULT_CONFIG, ReproConfig
from ...device.gpu import make_gpu
from ...workloads import particle_filter, spmv_csr
from ..report import RelativeBar, format_figure
from ..runner import evaluate_case
from . import ExperimentResult

SERIES = (
    "Oracle",
    "Sync",
    "Async(best)",
    "Async(worst)",
    "PORPLE",
    "Heuristic-based",
    "Worst",
)


def run(config: ReproConfig = DEFAULT_CONFIG, quick: bool = False) -> ExperimentResult:
    """Regenerate Figure 9."""
    gpu = make_gpu(config)
    size = 4096 if quick else 16384
    particles = 20000 if quick else particle_filter.DEFAULT_PARTICLES
    iterations = 10 if quick else 50
    cases = [
        ("spmv-csr", spmv_csr.placement_case(size, config, iterations=iterations)),
        (
            "particle filter",
            particle_filter.placement_case(particles, config, iterations=iterations),
        ),
    ]
    bars: List[RelativeBar] = []
    data: Dict[str, object] = {}
    for label, case in cases:
        evaluation = evaluate_case(case, gpu, config)
        oracle = evaluation.oracle.elapsed_cycles
        porple_name = next(
            name for name in case.pool.variant_names if "porple-kepler" in name
        )
        jang_name = next(
            name for name in case.pool.variant_names if "jang" in name
        )
        series_values = {
            "Oracle": 1.0,
            "Sync": evaluation.dysel["sync"].elapsed_cycles / oracle,
            "Async(best)": evaluation.dysel["async-best"].elapsed_cycles / oracle,
            "Async(worst)": evaluation.dysel["async-worst"].elapsed_cycles / oracle,
            "PORPLE": evaluation.pure[porple_name].elapsed_cycles / oracle,
            "Heuristic-based": evaluation.pure[jang_name].elapsed_cycles / oracle,
            "Worst": evaluation.worst.elapsed_cycles / oracle,
        }
        for series in SERIES:
            bars.append(RelativeBar(label, series, series_values[series]))
        data[label] = {
            "oracle_variant": evaluation.oracle.selected,
            "dysel_selected": evaluation.dysel["sync"].selected,
            "all_valid": evaluation.all_valid(),
            "series": series_values,
        }
    text = format_figure("Figure 9: DySel on data placement (GPU)", bars)
    return ExperimentResult(
        experiment="fig9", title="Fig 9", bars=bars, text=text, data=data
    )
