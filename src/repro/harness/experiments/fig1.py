"""Figure 1: Intel CPU OpenCL stack with different vectorization strategies.

Regenerates the motivation figure: for sgemm and spmv-jds on the CPU,
speedup over the Intel heuristic's width choice (higher is better) for
the scalar, 4-way and 8-way variants.  The paper reports the heuristic
falling short of the best by 2.13× (sgemm, picks 4-way, 8-way wins) and
1.24× (spmv-jds, picks 8-way, narrower wins).
"""

from __future__ import annotations

from ...compiler.heuristics.intel_vec import intel_vector_width
from ...config import DEFAULT_CONFIG, ReproConfig
from ...device.cpu import make_cpu
from ...workloads import sgemm, spmv_jds
from ..report import RelativeBar, format_figure
from ..runner import run_pure
from . import ExperimentResult

#: Series labels, matching the paper's legend.
SERIES = ("heuristic", "scalar", "4-way vector", "8-way vector")


def run(config: ReproConfig = DEFAULT_CONFIG, quick: bool = False) -> ExperimentResult:
    """Regenerate Figure 1."""
    cpu = make_cpu(config)
    n = 256 if quick else sgemm.DEFAULT_N
    size = 1024 if quick else spmv_jds.DEFAULT_SIZE
    cases = {
        "sgemm": (
            sgemm.vectorization_case(n, config),
            intel_vector_width(sgemm.base_variant(n, "cpu").ir),
        ),
        "spmv-jds": (
            spmv_jds.vectorization_case(size, config),
            intel_vector_width(spmv_jds.base_variant("cpu").ir),
        ),
    }
    bars = []
    data = {}
    for name, (case, heuristic_width) in cases.items():
        times = {}
        for variant_name in case.pool.variant_names:
            result = run_pure(case, cpu, variant_name, config)
            width_label = variant_name.split(",")[-1]
            times[width_label] = result.elapsed_cycles
        heuristic_label = (
            f"{heuristic_width}-way" if heuristic_width > 1 else "scalar"
        )
        heuristic_time = times[heuristic_label]
        speedups = {
            "heuristic": 1.0,
            "scalar": heuristic_time / times["scalar"],
            "4-way vector": heuristic_time / times["4-way"],
            "8-way vector": heuristic_time / times["8-way"],
        }
        for series in SERIES:
            bars.append(RelativeBar(group=name, series=series, value=speedups[series]))
        best = max(times, key=lambda k: heuristic_time / times[k])
        data[name] = {
            "heuristic_width": heuristic_width,
            "best": best,
            "best_speedup_over_heuristic": heuristic_time / min(times.values()),
        }
    text = format_figure(
        "Figure 1: vectorization strategies on CPU",
        bars,
        value_header="speedup over heuristic (higher is better)",
    )
    return ExperimentResult(
        experiment="fig1", title="Fig 1", bars=bars, text=text, data=data
    )
