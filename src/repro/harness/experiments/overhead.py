"""§5.1 / §5.2: profiling overhead studies.

Three measurements behind the discussion section:

* **sync vs async on the pathological pool** (§5.1) — sgemm's schedule
  family has a huge best-to-worst spread, so the synchronous barrier pays
  for the slowest candidate while async scatters the cost with eager
  chunks; on the GPU, host query latency erases the difference.
* **profile-every-iteration overheads** (§5.2) — iterative benchmarks
  re-profiled each launch expose the full profiling cost instead of
  amortizing it; tiny per-iteration kernels (spmv) are hit hardest.
* **selection accuracy under noise** (§5.2) — with measurement noise and
  small profiled units, DySel occasionally mispicks (the paper's 95%
  accuracy case); accuracy is measured across reseeded runs.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from ...config import DEFAULT_CONFIG, ReproConfig
from ...device.cpu import make_cpu
from ...device.gpu import make_gpu
from ...modes import OrchestrationFlow
from ...workloads import sgemm, spmv_csr, stencil
from ..report import format_table
from ..runner import evaluate_case, run_dysel, run_pure
from . import ExperimentResult


def sync_vs_async(config: ReproConfig, quick: bool) -> Dict[str, float]:
    """§5.1: overhead of sync vs async DySel on sgemm's schedule pool."""
    n = 256 if quick else 768
    case = sgemm.schedule_case(n, config)
    cpu = make_cpu(config)
    evaluation = evaluate_case(case, cpu, config)
    oracle = evaluation.oracle.elapsed_cycles
    return {
        "cpu_sync_overhead": evaluation.dysel["sync"].elapsed_cycles / oracle - 1,
        "cpu_async_overhead": evaluation.dysel["async-best"].elapsed_cycles
        / oracle
        - 1,
        "spread": evaluation.worst.elapsed_cycles / oracle,
    }


def gpu_eager_dispatch(config: ReproConfig, quick: bool) -> Dict[str, float]:
    """§5.1: the GPU's host query latency suppresses eager dispatches."""
    size = 2048 if quick else 8192
    case = spmv_csr.input_dependent_case("gpu", "random", size, config)
    gpu = make_gpu(config)
    cpu = make_cpu(config)
    gpu_run = run_dysel(case, gpu, flow=OrchestrationFlow.ASYNC, config=config)
    cpu_case = spmv_csr.input_dependent_case("cpu", "random", size, config)
    cpu_run = run_dysel(cpu_case, cpu, flow=OrchestrationFlow.ASYNC, config=config)
    return {
        "gpu_eager_chunks": float(gpu_run.eager_chunks),
        "cpu_eager_chunks": float(cpu_run.eager_chunks),
    }


def per_iteration_overheads(
    config: ReproConfig, quick: bool
) -> Dict[str, float]:
    """§5.2: overhead when profiling is re-activated every iteration."""
    iterations = 10 if quick else 30
    results: Dict[str, float] = {}
    cpu = make_cpu(config)
    gpu = make_gpu(config)
    cases = [
        (
            "cpu/spmv-csr (random)",
            cpu,
            spmv_csr.input_dependent_case(
                "cpu", "random", 2048 if quick else 16384, config, iterations=iterations
            ),
        ),
        (
            "gpu/spmv-csr (random)",
            gpu,
            spmv_csr.input_dependent_case(
                "gpu", "random", 2048 if quick else 16384, config, iterations=iterations
            ),
        ),
        (
            "cpu/stencil",
            cpu,
            stencil.schedule_case(
                stencil.DEFAULT_GRID, config, iterations=iterations
            ),
        ),
    ]
    for label, device, case in cases:
        best = min(
            run_pure(case, device, name, config).elapsed_cycles
            for name in case.pool.variant_names
        )
        every = run_dysel(
            case, device, profile_every_iteration=True, config=config
        )
        once = run_dysel(case, device, config=config)
        results[f"{label}: profile-once overhead"] = (
            once.elapsed_cycles / best - 1
        )
        results[f"{label}: profile-every-iteration overhead"] = (
            every.elapsed_cycles / best - 1
        )
    return results


def selection_accuracy(
    config: ReproConfig, quick: bool, trials: int = 20
) -> Dict[str, float]:
    """§5.2: fraction of reseeded runs that select the true best variant."""
    size = 2048 if quick else 8192
    correct = 0
    trials = 10 if quick else trials
    reference_case = spmv_csr.input_dependent_case("cpu", "random", size, config)
    cpu = make_cpu(config)
    truth = min(
        (
            (run_pure(reference_case, cpu, name, config.without_noise()).elapsed_cycles, name)
            for name in reference_case.pool.variant_names
        )
    )[1]
    for trial in range(trials):
        trial_config = dataclasses.replace(config, seed=config.seed + trial + 1)
        case = spmv_csr.input_dependent_case("cpu", "random", size, trial_config)
        device = make_cpu(trial_config)
        run = run_dysel(case, device, config=trial_config)
        if run.selected == truth:
            correct += 1
    return {"accuracy": correct / trials, "trials": float(trials)}


def run(config: ReproConfig = DEFAULT_CONFIG, quick: bool = False) -> ExperimentResult:
    """Regenerate the §5.1/§5.2 overhead studies."""
    data: Dict[str, object] = {}
    data["sync_vs_async"] = sync_vs_async(config, quick)
    data["gpu_eager_dispatch"] = gpu_eager_dispatch(config, quick)
    data["per_iteration"] = per_iteration_overheads(config, quick)
    data["selection_accuracy"] = selection_accuracy(config, quick)

    rows: List[tuple] = []
    for section, values in data.items():
        for key, value in values.items():  # type: ignore[union-attr]
            rows.append((section, key, f"{value:.3f}"))
    text = format_table(
        "Sections 5.1/5.2: profiling overhead studies",
        ("study", "metric", "value"),
        rows,
    )
    return ExperimentResult(
        experiment="overhead", title="§5.1/§5.2", text=text, data=data
    )
