"""Figure 10: DySel on mixed compile-time optimizations (Case Study III).

Four Parboil benchmarks (cutcp, sgemm, spmv-jds, stencil) with their
shipped version pools as DySel candidates, on CPU (a) and GPU (b).  Bars
relative to the oracle: Oracle, Sync, Async (best/worst initial), Worst;
plus the geometric mean.

Paper shape: near-oracle DySel on both devices (~2% CPU average); base
versions win on CPU while tiled/coarsened versions win on GPU; on GPU
spmv-jds DySel picks the second-best version, 0.8% off.
"""

from __future__ import annotations

from typing import Dict, List

from ...config import DEFAULT_CONFIG, ReproConfig
from ...device.cpu import make_cpu
from ...device.gpu import make_gpu
from ...workloads import cutcp, sgemm, spmv_jds, stencil
from ..report import RelativeBar, format_figure, geomean
from ..runner import evaluate_case
from . import ExperimentResult

SERIES = ("Oracle", "Sync", "Async(best)", "Async(worst)", "Worst")


def _cases(device_kind: str, config: ReproConfig, quick: bool):
    if quick:
        return [
            ("sgemm", sgemm.mixed_case(device_kind, 512, config)),
            (
                "stencil",
                stencil.mixed_case(
                    device_kind, (256, 256, 16), config, iterations=10
                ),
            ),
        ]
    return [
        ("cutcp", cutcp.mixed_case(device_kind, config=config)),
        ("sgemm", sgemm.mixed_case(device_kind, 768, config)),
        (
            "spmv-jds",
            spmv_jds.mixed_case(device_kind, config=config, iterations=50),
        ),
        ("stencil", stencil.mixed_case(device_kind, config=config, iterations=20)),
    ]


def run_device(
    device_kind: str, config: ReproConfig, quick: bool
) -> ExperimentResult:
    """Regenerate one panel (Fig 10a: cpu, Fig 10b: gpu)."""
    device = make_cpu(config) if device_kind == "cpu" else make_gpu(config)
    bars: List[RelativeBar] = []
    data: Dict[str, object] = {}
    labels = []
    for label, case in _cases(device_kind, config, quick):
        labels.append(label)
        evaluation = evaluate_case(case, device, config)
        oracle = evaluation.oracle.elapsed_cycles
        series_values = {
            "Oracle": 1.0,
            "Sync": evaluation.dysel["sync"].elapsed_cycles / oracle,
            "Async(best)": evaluation.dysel["async-best"].elapsed_cycles / oracle,
            "Async(worst)": evaluation.dysel["async-worst"].elapsed_cycles
            / oracle,
            "Worst": evaluation.worst.elapsed_cycles / oracle,
        }
        for series in SERIES:
            bars.append(RelativeBar(label, series, series_values[series]))
        data[label] = {
            "oracle_variant": evaluation.oracle.selected,
            "dysel_selected": evaluation.dysel["sync"].selected,
            "all_valid": evaluation.all_valid(),
            "series": series_values,
        }
    for series in SERIES:
        values = [
            bar.value for bar in bars if bar.series == series and bar.group in labels
        ]
        bars.append(RelativeBar("GeoMean", series, geomean(values)))
    panel = "a" if device_kind == "cpu" else "b"
    text = format_figure(
        f"Figure 10({panel}): mixed compile-time optimizations ({device_kind.upper()})",
        bars,
    )
    return ExperimentResult(
        experiment=f"fig10{panel}",
        title=f"Fig 10({panel})",
        bars=bars,
        text=text,
        data=data,
    )


def run(config: ReproConfig = DEFAULT_CONFIG, quick: bool = False) -> Dict[str, ExperimentResult]:
    """Regenerate both panels."""
    return {
        "cpu": run_device("cpu", config, quick),
        "gpu": run_device("gpu", config, quick),
    }
