"""Figure 8: DySel on locality-centric scheduling, CPU (Case Study I).

Seven benchmark configurations (cutcp, kmeans, sgemm, spmv-jds,
spmv-csr on the random and diagonal matrices, stencil), each with its LC
schedule family as the DySel pool.  Bars, relative to the oracle (lower
is better): Oracle, Sync, Async (best initial selection), Async (worst
initial selection), LC's static pick, and the Worst schedule; plus the
geometric mean.

Paper shape to reproduce: DySel near-oracle everywhere; LC optimal except
spmv-csr on the diagonal matrix (~1.15× off); large oracle-to-worst
spreads (sgemm pathological).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ...compiler.heuristics.lc import lc_select_schedule
from ...config import DEFAULT_CONFIG, ReproConfig
from ...device.cpu import make_cpu
from ...workloads import cutcp, kmeans, sgemm, spmv_csr, spmv_jds, stencil
from ...workloads.base import BenchmarkCase
from ..report import RelativeBar, format_figure, geomean
from ..runner import CaseEvaluation, evaluate_case
from . import ExperimentResult

SERIES = ("Oracle", "Sync", "Async(best)", "Async(worst)", "LC", "Worst")


def _cases(
    config: ReproConfig, quick: bool
) -> List[Tuple[str, BenchmarkCase, Callable[[], object]]]:
    """(label, case, LC-pick thunk) per benchmark."""
    if quick:
        return [
            (
                "sgemm",
                sgemm.schedule_case(512, config),
                lambda: lc_select_schedule(sgemm.schedule_family(512)),
            ),
            (
                "spmv-csr (random)",
                spmv_csr.schedule_case("random", 4096, config, iterations=30),
                lambda: lc_select_schedule(_csr_family()),
            ),
            (
                "spmv-csr (diagonal)",
                spmv_csr.schedule_case("diagonal", 65536, config, iterations=30),
                lambda: lc_select_schedule(_csr_family()),
            ),
        ]
    return [
        (
            "cutcp",
            cutcp.schedule_case((128, 128, 32), 40000, config, iterations=5),
            lambda: lc_select_schedule(cutcp.schedule_family(config)),
        ),
        (
            "kmeans",
            kmeans.schedule_case(config=config, iterations=20),
            lambda: lc_select_schedule(kmeans.schedule_family()),
        ),
        (
            "sgemm",
            sgemm.schedule_case(768, config),
            lambda: lc_select_schedule(sgemm.schedule_family(768)),
        ),
        (
            "spmv-jds",
            spmv_jds.schedule_case(config=config, iterations=50),
            lambda: lc_select_schedule(spmv_jds.schedule_family(config=config)),
        ),
        (
            "spmv-csr (random)",
            spmv_csr.schedule_case("random", 16384, config, iterations=50),
            lambda: lc_select_schedule(_csr_family()),
        ),
        (
            "spmv-csr (diagonal)",
            spmv_csr.schedule_case("diagonal", 262144, config, iterations=50),
            lambda: lc_select_schedule(_csr_family()),
        ),
        (
            "stencil",
            stencil.schedule_case(config=config, iterations=20),
            lambda: lc_select_schedule(stencil.schedule_family()),
        ),
    ]


def _csr_family():
    """The spmv-csr scalar kernel's two schedules, as LC sees them."""
    from ...compiler.transforms.schedule import reorder_loops

    base = spmv_csr.scalar_variant("cpu")
    return [
        (("wi_r", "nnz"), reorder_loops(base, ("wi_r", "nnz"), label="DFO")),
        (("nnz", "wi_r"), reorder_loops(base, ("nnz", "wi_r"), label="BFO")),
    ]


def _bars_for(
    label: str, evaluation: CaseEvaluation, lc_name: str
) -> List[RelativeBar]:
    oracle = evaluation.oracle.elapsed_cycles
    bars = [RelativeBar(label, "Oracle", 1.0)]
    bars.append(
        RelativeBar(label, "Sync", evaluation.dysel["sync"].elapsed_cycles / oracle)
    )
    bars.append(
        RelativeBar(
            label,
            "Async(best)",
            evaluation.dysel["async-best"].elapsed_cycles / oracle,
        )
    )
    bars.append(
        RelativeBar(
            label,
            "Async(worst)",
            evaluation.dysel["async-worst"].elapsed_cycles / oracle,
        )
    )
    bars.append(
        RelativeBar(label, "LC", evaluation.pure[lc_name].elapsed_cycles / oracle)
    )
    bars.append(
        RelativeBar(label, "Worst", evaluation.worst.elapsed_cycles / oracle)
    )
    return bars


def run(config: ReproConfig = DEFAULT_CONFIG, quick: bool = False) -> ExperimentResult:
    """Regenerate Figure 8."""
    cpu = make_cpu(config)
    bars: List[RelativeBar] = []
    data: Dict[str, object] = {}
    for label, case, lc_thunk in _cases(config, quick):
        evaluation = evaluate_case(case, cpu, config)
        lc_name = lc_thunk().name
        case_bars = _bars_for(label, evaluation, lc_name)
        bars.extend(case_bars)
        data[label] = {
            "oracle_variant": evaluation.oracle.selected,
            "lc_variant": lc_name,
            "dysel_selected": evaluation.dysel["sync"].selected,
            "all_valid": evaluation.all_valid(),
            "series": {bar.series: bar.value for bar in case_bars},
        }
    groups = [label for label, _, _ in _cases(config, quick)]
    for series in SERIES:
        values = [
            bar.value for bar in bars if bar.series == series and bar.group in groups
        ]
        bars.append(RelativeBar("GeoMean", series, geomean(values)))
    text = format_figure(
        "Figure 8: DySel on locality-centric scheduling (CPU)", bars
    )
    return ExperimentResult(
        experiment="fig8", title="Fig 8", bars=bars, text=text, data=data
    )
