"""Figure 11: DySel on input-dependent optimization (Case Study IV).

spmv-csr with the scalar and vector kernels, run against the random and
the diagonal matrix on CPU (a, crossed with the DFO/BFO schedules) and
GPU (b).  Bars relative to the oracle: Oracle, Sync, Async (best/worst
initial), each pure version, Worst.

Paper shape: the winner flips with the input on both devices (CPU:
scalar+DFO on random, scalar+BFO on diagonal; GPU: vector on random,
scalar on diagonal); the wrong pure choice costs 2.98×/8.63× on CPU and
4.73×/22.73× on GPU; DySel within ~1%.
"""

from __future__ import annotations

from typing import Dict, List

from ...config import DEFAULT_CONFIG, ReproConfig
from ...device.cpu import make_cpu
from ...device.gpu import make_gpu
from ...workloads import spmv_csr
from ..report import RelativeBar, format_figure
from ..runner import evaluate_case
from . import ExperimentResult


def run_device(
    device_kind: str, config: ReproConfig, quick: bool
) -> ExperimentResult:
    """Regenerate one panel (Fig 11a: cpu, Fig 11b: gpu)."""
    device = make_cpu(config) if device_kind == "cpu" else make_gpu(config)
    if quick:
        sizes = {"random": 8192, "diagonal": 65536}
        iterations = 30
    else:
        sizes = {"random": 16384, "diagonal": 262144}
        iterations = 50
    bars: List[RelativeBar] = []
    data: Dict[str, object] = {}
    for kind in ("random", "diagonal"):
        label = f"{kind} matrix"
        case = spmv_csr.input_dependent_case(
            device_kind, kind, sizes[kind], config, iterations=iterations
        )
        evaluation = evaluate_case(case, device, config)
        oracle = evaluation.oracle.elapsed_cycles
        series_values = {
            "Oracle": 1.0,
            "Sync": evaluation.dysel["sync"].elapsed_cycles / oracle,
            "Async(best)": evaluation.dysel["async-best"].elapsed_cycles / oracle,
            "Async(worst)": evaluation.dysel["async-worst"].elapsed_cycles
            / oracle,
        }
        for name in case.pool.variant_names:
            series_values[name] = (
                evaluation.pure[name].elapsed_cycles / oracle
            )
        series_values["Worst"] = evaluation.worst.elapsed_cycles / oracle
        for series, value in series_values.items():
            bars.append(RelativeBar(label, series, value))
        data[label] = {
            "oracle_variant": evaluation.oracle.selected,
            "dysel_selected": evaluation.dysel["sync"].selected,
            "all_valid": evaluation.all_valid(),
            "series": series_values,
        }
    panel = "a" if device_kind == "cpu" else "b"
    text = format_figure(
        f"Figure 11({panel}): input-dependent optimization ({device_kind.upper()})",
        bars,
    )
    return ExperimentResult(
        experiment=f"fig11{panel}",
        title=f"Fig 11({panel})",
        bars=bars,
        text=text,
        data=data,
    )


def run(config: ReproConfig = DEFAULT_CONFIG, quick: bool = False) -> Dict[str, ExperimentResult]:
    """Regenerate both panels."""
    return {
        "cpu": run_device("cpu", config, quick),
        "gpu": run_device("gpu", config, quick),
    }
