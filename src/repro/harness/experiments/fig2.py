"""Figure 2: distribution of work-group counts among kernel launches.

Regenerates the launch census supporting the low-cost-profiling
hypothesis: significant invocation mass between 128 and 32768 work-groups
(log-scale y), launches under 128 work-groups rare and dropped.
"""

from __future__ import annotations

import math

from ...config import DEFAULT_CONFIG, ReproConfig
from ..census import BUCKETS, collect_census
from ..report import format_table
from . import ExperimentResult


def run(config: ReproConfig = DEFAULT_CONFIG, quick: bool = False) -> ExperimentResult:
    """Regenerate Figure 2."""
    census = collect_census(config)
    rows = []
    for bucket, count in census.series():
        log_count = math.log10(count) if count > 0 else float("-inf")
        bar = "#" * int(round(log_count * 8)) if count > 0 else ""
        rows.append((bucket, count, f"1e{log_count:.1f}" if count else "0", bar))
    text = format_table(
        "Figure 2: kernel invocations per work-group-count bucket",
        ("work-groups", "invocations", "log10", "log-scale bar"),
        rows,
    )
    return ExperimentResult(
        experiment="fig2",
        title="Fig 2",
        text=text,
        data={
            "counts": dict(census.series()),
            "dropped_small_launches": census.dropped_small,
            "buckets": list(BUCKETS),
        },
    )
