"""One module per table/figure of the paper's evaluation.

Each module exposes ``run(config=DEFAULT_CONFIG, quick=False)`` returning
an :class:`ExperimentResult`: the regenerated rows/series (structured, for
tests and benchmarks) plus a formatted text report shaped like the paper's
figure.  ``quick=True`` shrinks inputs for CI-speed runs; the default
sizes match the paper's regimes (see DESIGN.md §4 and EXPERIMENTS.md for
paper-vs-measured).
"""

from dataclasses import dataclass, field
from typing import Dict, List

from ..report import RelativeBar


@dataclass
class ExperimentResult:
    """Regenerated content of one table/figure."""

    experiment: str
    title: str
    bars: List[RelativeBar] = field(default_factory=list)
    text: str = ""
    data: Dict[str, object] = field(default_factory=dict)

    def bar(self, group: str, series: str) -> float:
        """Look up one bar's value."""
        for bar in self.bars:
            if bar.group == group and bar.series == series:
                return bar.value
        raise KeyError(f"no bar ({group!r}, {series!r}) in {self.experiment}")

    def series_of(self, group: str) -> Dict[str, float]:
        """All series values of one group."""
        return {
            bar.series: bar.value for bar in self.bars if bar.group == group
        }


__all__ = ["ExperimentResult", "RelativeBar"]
