"""§5.3: performance advantage over heuristic approaches.

Regenerates the discussion's speedup-recovery summary from the figure
experiments: what DySel gains over the static heuristics' picks and over
the worst possible pure choice, per case study.
"""

from __future__ import annotations

from typing import Dict

from ...config import DEFAULT_CONFIG, ReproConfig
from ..report import format_table
from . import ExperimentResult
from . import fig8 as fig8_mod
from . import fig9 as fig9_mod
from . import fig11 as fig11_mod


def run(config: ReproConfig = DEFAULT_CONFIG, quick: bool = False) -> ExperimentResult:
    """Regenerate the §5.3 summary (runs Figs 8, 9 and 11 underneath)."""
    fig8 = fig8_mod.run(config, quick)
    fig9 = fig9_mod.run(config, quick)
    fig11 = fig11_mod.run(config, quick)

    rows = []
    data: Dict[str, float] = {}

    diag_label = "spmv-csr (diagonal)"
    if any(bar.group == diag_label for bar in fig8.bars):
        lc_gain = fig8.bar(diag_label, "LC") / fig8.bar(diag_label, "Sync")
        rows.append(
            ("Case I", "spmv-csr diagonal: DySel over LC (paper 1.15x)", f"{lc_gain:.2f}x")
        )
        data["case1_lc_recovery"] = lc_gain

    porple_gain = fig9.bar("spmv-csr", "PORPLE") / fig9.bar("spmv-csr", "Sync")
    jang_gain = fig9.bar("spmv-csr", "Heuristic-based") / fig9.bar(
        "spmv-csr", "Sync"
    )
    rows.append(
        ("Case II", "spmv-csr: DySel over PORPLE (paper 1.29x)", f"{porple_gain:.2f}x")
    )
    rows.append(
        ("Case II", "spmv-csr: DySel over heuristic (paper 2.29x)", f"{jang_gain:.2f}x")
    )
    data["case2_porple_recovery"] = porple_gain
    data["case2_heuristic_recovery"] = jang_gain

    for device, paper in (("cpu", "2.98x/8.63x"), ("gpu", "4.73x/22.73x")):
        panel = fig11[device]
        for kind in ("random", "diagonal"):
            label = f"{kind} matrix"
            worst_gain = panel.bar(label, "Worst") / panel.bar(label, "Sync")
            rows.append(
                (
                    "Case IV",
                    f"{device} spmv-csr {kind}: DySel over worst (paper {paper})",
                    f"{worst_gain:.2f}x",
                )
            )
            data[f"case4_{device}_{kind}_recovery"] = worst_gain

    text = format_table(
        "Section 5.3: performance advantage over heuristic approaches",
        ("case study", "recovery", "measured"),
        rows,
    )
    return ExperimentResult(
        experiment="summary", title="§5.3", text=text, data=data
    )
