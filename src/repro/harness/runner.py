"""Run benchmark cases under pure variants, static picks, and DySel.

The paper's evaluation methodology (§4.1): measure kernel execution time
including all profiling time, profiling launch overheads, and the
remaining workload's compute; the *oracle* is the best single pure
version, the *worst* the slowest.  ``evaluate_case`` reproduces that
protocol for one benchmark case: every pure variant is timed on a fresh
engine, then each requested DySel configuration runs on its own fresh
engine, and everything is reported relative to the oracle.

Iterative cases launch the kernel ``iterations`` times; DySel profiles
only the first launch (activation flag, §3.1) unless
``profile_every_iteration`` is set — the §5.2 overhead study's knob.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..config import ReproConfig
from ..core.runtime import DySelRuntime
from ..device.base import Device
from ..device.engine import ExecutionEngine, Priority
from ..errors import HarnessError
from ..kernel.kernel import WorkRange
from ..modes import OrchestrationFlow, ProfilingMode
from ..obs.events import TraceEvent
from ..obs.export import write_chrome_trace
from ..serve import (
    LaunchScheduler,
    SelectionStore,
    ServeOutcome,
    ServeRequest,
)
from ..workloads.base import BenchmarkCase


@dataclass(frozen=True)
class RunResult:
    """One (case × strategy) execution."""

    case: str
    strategy: str
    elapsed_cycles: float
    valid: bool
    selected: Optional[str] = None
    eager_chunks: int = 0
    profiled_launches: int = 0
    #: Recorded trace events (empty unless the run's config set
    #: ``ReproConfig.trace``); export with
    #: :func:`repro.obs.export.write_chrome_trace` or
    #: :func:`export_traces`.
    trace: Tuple[TraceEvent, ...] = ()

    def relative_to(self, oracle_cycles: float) -> float:
        """Relative execution time over the oracle (lower is better)."""
        if oracle_cycles <= 0:
            raise HarnessError("oracle cycles must be positive")
        return self.elapsed_cycles / oracle_cycles


def run_pure(
    case: BenchmarkCase,
    device: Device,
    variant_name: str,
    config: Optional[ReproConfig] = None,
) -> RunResult:
    """Time one pure variant over all iterations (no profiling at all)."""
    variant = case.pool.variant(variant_name)
    engine = ExecutionEngine(device, config)
    args = case.fresh_args()
    for _ in range(case.iterations):
        task = engine.submit(
            variant,
            args,
            WorkRange(0, case.workload_units),
            priority=Priority.BATCH,
        )
        engine.wait(task)
    return RunResult(
        case=case.name,
        strategy=f"pure:{variant_name}",
        elapsed_cycles=engine.now,
        valid=case.validate(args),
        selected=variant_name,
        trace=engine.tracer.events,
    )


def run_dysel(
    case: BenchmarkCase,
    device: Device,
    flow: OrchestrationFlow = OrchestrationFlow.ASYNC,
    initial_variant: Optional[str] = None,
    mode: Optional[ProfilingMode] = None,
    profile_every_iteration: bool = False,
    config: Optional[ReproConfig] = None,
    strategy_label: Optional[str] = None,
) -> RunResult:
    """Time a full DySel run (profiling included) over all iterations."""
    runtime = DySelRuntime(device, config)
    runtime.register_pool(case.pool)
    args = case.fresh_args()
    selected = None
    profiled = 0
    for iteration in range(case.iterations):
        profiling = profile_every_iteration or iteration == 0
        result = runtime.launch_kernel(
            case.pool.name,
            args,
            case.workload_units,
            profiling=profiling,
            mode=mode,
            flow=flow,
            initial_variant=initial_variant,
        )
        selected = result.selected
        profiled += int(result.profiled)
    eager = result.eager_chunks if case.iterations == 1 else 0
    label = strategy_label or f"dysel:{flow.value}"
    return RunResult(
        case=case.name,
        strategy=label,
        elapsed_cycles=runtime.engine.now,
        valid=case.validate(args),
        selected=selected,
        eager_chunks=eager,
        profiled_launches=profiled,
        trace=runtime.tracer.events,
    )


def export_traces(
    results: Mapping[str, RunResult], directory: str
) -> Dict[str, str]:
    """Write each traced result's Chrome trace under ``directory``.

    Returns ``{strategy label: written path}``; results without recorded
    events (tracing was off) are skipped.  This is how experiments
    (fig8/fig9/overhead) emit per-strategy timelines: run them with a
    config where ``trace=True``, then hand the results here — the Fig 4b
    sync-vs-async pictures become renderable from the files.
    """
    os.makedirs(directory, exist_ok=True)
    written: Dict[str, str] = {}
    for label, result in results.items():
        if not result.trace:
            continue
        safe = "".join(
            c if c.isalnum() or c in "-_." else "_" for c in label
        )
        path = os.path.join(directory, f"{safe}.trace.json")
        write_chrome_trace(result.trace, path, process_name=result.case)
        written[label] = path
    return written


def run_served(
    case: BenchmarkCase,
    devices: Tuple[Device, ...],
    requests: int = 8,
    clients: int = 8,
    config: Optional[ReproConfig] = None,
    store: Optional[SelectionStore] = None,
    flow: OrchestrationFlow = OrchestrationFlow.ASYNC,
) -> Tuple[List[ServeOutcome], LaunchScheduler]:
    """Replay one benchmark case as concurrent serving traffic.

    Builds ``requests`` identical-shape requests (fresh argument
    mappings each, so outputs stay independently checkable), serves them
    through a :class:`~repro.serve.LaunchScheduler` over ``devices``
    with ``clients`` concurrent client threads, validates every output,
    and returns the outcomes plus the scheduler (whose stats, store and
    device traces the caller can inspect).  Pass a pre-loaded ``store``
    to measure warm-start behaviour.
    """
    scheduler = LaunchScheduler(devices, config=config, store=store)
    scheduler.register_pool(case.pool)
    request_args = [case.fresh_args() for _ in range(requests)]
    batch = [
        ServeRequest(
            kernel=case.pool.name,
            args=args,
            workload_units=case.workload_units,
            flow=flow,
        )
        for args in request_args
    ]
    outcomes = scheduler.serve_all(batch, clients=clients)
    for args in request_args:
        if not case.validate(args):
            raise HarnessError(
                f"case {case.name!r}: served output failed validation"
            )
    return outcomes, scheduler


@dataclass
class CaseEvaluation:
    """All strategies' results for one case, oracle-normalized."""

    case: str
    pure: Dict[str, RunResult] = field(default_factory=dict)
    dysel: Dict[str, RunResult] = field(default_factory=dict)

    @property
    def oracle(self) -> RunResult:
        """The best pure version (the paper's oracle definition)."""
        if not self.pure:
            raise HarnessError(f"case {self.case!r}: no pure runs recorded")
        return min(self.pure.values(), key=lambda r: r.elapsed_cycles)

    @property
    def worst(self) -> RunResult:
        """The slowest pure version."""
        if not self.pure:
            raise HarnessError(f"case {self.case!r}: no pure runs recorded")
        return max(self.pure.values(), key=lambda r: r.elapsed_cycles)

    def relative(self, result: RunResult) -> float:
        """Relative execution time of a result over this case's oracle."""
        return result.relative_to(self.oracle.elapsed_cycles)

    def all_valid(self) -> bool:
        """True when every recorded run produced correct output."""
        runs = list(self.pure.values()) + list(self.dysel.values())
        return all(run.valid for run in runs)


def evaluate_case(
    case: BenchmarkCase,
    device: Device,
    config: Optional[ReproConfig] = None,
    dysel_flows: Tuple[str, ...] = ("sync", "async-best", "async-worst"),
    mode: Optional[ProfilingMode] = None,
    profile_every_iteration: bool = False,
) -> CaseEvaluation:
    """Run the paper's standard comparison for one case.

    Pure runs for every variant establish oracle and worst; then each
    requested DySel configuration runs: ``"sync"``, ``"async-best"``
    (asynchronous with the oracle's variant as the initial default) and
    ``"async-worst"`` (the slowest variant as initial default).
    """
    evaluation = CaseEvaluation(case=case.name)
    for name in case.pool.variant_names:
        evaluation.pure[name] = run_pure(case, device, name, config)

    best_name = evaluation.oracle.selected
    worst_name = evaluation.worst.selected
    for flow_label in dysel_flows:
        if flow_label == "sync":
            result = run_dysel(
                case,
                device,
                flow=OrchestrationFlow.SYNC,
                mode=mode,
                profile_every_iteration=profile_every_iteration,
                config=config,
                strategy_label="dysel:sync",
            )
        elif flow_label == "async-best":
            result = run_dysel(
                case,
                device,
                flow=OrchestrationFlow.ASYNC,
                initial_variant=best_name,
                mode=mode,
                profile_every_iteration=profile_every_iteration,
                config=config,
                strategy_label="dysel:async-best",
            )
        elif flow_label == "async-worst":
            result = run_dysel(
                case,
                device,
                flow=OrchestrationFlow.ASYNC,
                initial_variant=worst_name,
                mode=mode,
                profile_every_iteration=profile_every_iteration,
                config=config,
                strategy_label="dysel:async-worst",
            )
        else:
            raise HarnessError(f"unknown DySel flow label {flow_label!r}")
        evaluation.dysel[flow_label] = result
    return evaluation
