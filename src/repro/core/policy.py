"""Launch-time policy: when does DySel actually profile?

Paper §2.1: profiling-based selection is deactivated for small workloads —
launches under ~128 work-groups are both rare (Fig 2) and too small for
the optimization level to matter, while profiling overhead would be
proportionally large.  Paper §3.1: the *profiling activation flag* lets
iterative applications profile only their first iteration; later launches
reuse the cached selection.

A cached selection is only trusted after validation against the *current*
pool: re-registration can replace or extend a pool after a selection was
cached, and a stale winner must never be launched (it may not exist any
more) nor silently preferred over newly registered variants.  Stale
entries are evicted here and the launch falls back to the pool default
with an explicit reason.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from ..compiler.variants import VariantPool
from ..config import ReproConfig
from ..errors import LaunchError
from ..obs.events import EventKind
from ..obs.tracer import NULL_TRACER, Tracer
from ..predict import Prediction
from .selection import SelectionCache, SelectionRecord


@dataclass(frozen=True)
class LaunchDecision:
    """Whether to profile this launch, and which variant to use if not."""

    profile: bool
    variant_name: Optional[str] = None
    reason: str = ""


def _validated_cached(
    pool: VariantPool,
    cache: SelectionCache,
    tracer: Tracer,
    now: float,
) -> tuple:
    """The cached selection if it names a current variant, else evict it.

    Returns ``(record or None, stale_note)``; ``stale_note`` is non-empty
    when a stale entry was found and evicted.
    """
    cached: Optional[SelectionRecord] = cache.lookup(pool.name)
    if cached is None:
        return None, ""
    if cached.selected in pool.variant_names:
        return cached, ""
    stale_note = (
        f"cached selection {cached.selected!r} is not in the current pool "
        f"(variants: {list(pool.variant_names)}); "
    )
    cache.invalidate(pool.name)
    if tracer.enabled:
        tracer.instant(
            EventKind.CACHE_INVALIDATE,
            pool.name,
            now,
            stale_variant=cached.selected,
            reason="cached variant no longer in pool",
        )
    return None, stale_note


def _base_groups(pool: VariantPool, workload_units: int) -> int:
    """Work-groups of the finest-grained variant (the §2.1 size proxy)."""
    return workload_units // max(1, min(v.wa_factor for v in pool.variants))


def decide(
    pool: VariantPool,
    workload_units: int,
    profiling_requested: bool,
    cache: SelectionCache,
    config: ReproConfig,
    tracer: Tracer = NULL_TRACER,
    now: float = 0.0,
    pinned_variant: Optional[str] = None,
    drift_rearm: bool = False,
    dominated: Sequence[str] = (),
    predicted: Optional[Prediction] = None,
    deferred: bool = False,
) -> LaunchDecision:
    """Resolve the profiling decision for one launch.

    Precedence: an explicit ``profiling=False`` wins (use the pinned
    variant if given, else the cached selection if one exists *and still
    names a pool variant*, else the pool's default); a cached selection is
    reused only when the caller deactivated profiling — re-requesting
    profiling re-profiles, which is how callers handle changed inputs; a
    small workload deactivates profiling regardless.

    ``drift_rearm`` is the drift loop's override (:mod:`repro.drift`):
    a confirmed throughput drift re-arms profiling for exactly this
    launch even though the caller deactivated it, *unless* the workload
    is too small to profile or the pool has nothing to select — then the
    re-arm is moot and the normal profiling-off path runs (the caller's
    claim should be released so a later, larger launch retries).

    ``pinned_variant`` is the serving layer's instruction (persistent
    selection store, :mod:`repro.serve`): run exactly this variant without
    profiling.  It is validated against the current pool like a cached
    selection — a pinned name the pool no longer contains is ignored with
    an explicit reason rather than launched blind.

    ``dominated`` names variants the static cost-bound analysis excluded
    from the micro-profiling candidate set
    (:mod:`repro.analyze.dominance`): they stay in the correctness pool,
    but profiling plans are built over the survivors only, and when a
    single candidate survives, profiling is skipped outright — its
    outcome is statically known.  Each exclusion is recorded in the
    decision reason as ``"statically dominated"``.

    ``predicted`` is the serving layer's model guess
    (:mod:`repro.predict`), already vetted against the confidence
    threshold by the caller.  It is deliberately the *weakest* input:
    it only converts a launch that would otherwise micro-profile into a
    profiling-off run of the predicted variant (``"predicted
    selection"``), so it can never override the small-workload,
    single-variant, pinned, or quarantine gates (a quarantined variant
    is not in ``pool`` at all), never applies to a drift re-arm (the
    episode wants a real measurement), and only chooses among the
    dominance survivors — a predicted variant the static analysis
    excluded falls back to profiling with an explicit note.

    ``deferred`` is the serving layer's profiling *backpressure* flag
    (:mod:`repro.serve.qos`): the fleet is overloaded, so a launch that
    would micro-profile (or re-profile for drift) runs profiling-off on
    the best variant already known — cached selection if valid, else the
    pool default — with an explicit ``"deferred by backpressure"``
    reason.  Deferral is *weaker than prediction* (a confident predicted
    variant still serves; it costs no profiling) and irrelevant to every
    branch that was not going to profile anyway (pinned, cached,
    small-workload, single-variant, profiling-off).

    ``tracer``/``now`` report cache traffic to :mod:`repro.obs` when
    tracing is on (``now`` is the engine clock at decision time).
    """
    cached, stale_note = _validated_cached(pool, cache, tracer, now)
    if (
        drift_rearm
        and not profiling_requested
        and len(pool.variants) > 1
        and _base_groups(pool, workload_units)
        >= config.small_workload_threshold
    ):
        if deferred:
            return _deferred_decision(
                pool, cached, stale_note, kind="drift re-profile"
            )
        return LaunchDecision(profile=True, reason="drift re-activation")
    if pinned_variant is not None and not profiling_requested:
        if pinned_variant in pool.variant_names:
            return LaunchDecision(
                profile=False,
                variant_name=pinned_variant,
                reason="profiling deactivated; pinned selection reused",
            )
        stale_note += (
            f"pinned selection {pinned_variant!r} is not in the current "
            f"pool (variants: {list(pool.variant_names)}); "
        )
    if not profiling_requested:
        if cached is not None:
            if tracer.enabled:
                tracer.instant(
                    EventKind.CACHE_HIT,
                    pool.name,
                    now,
                    selected=cached.selected,
                )
            return LaunchDecision(
                profile=False,
                variant_name=cached.selected,
                reason="profiling deactivated; cached selection reused",
            )
        return LaunchDecision(
            profile=False,
            variant_name=pool.initial_default,
            reason=(
                f"profiling deactivated; {stale_note}no cached selection, "
                "using default"
            ),
        )

    base_groups = _base_groups(pool, workload_units)
    if base_groups < config.small_workload_threshold:
        if cached is not None and tracer.enabled:
            tracer.instant(
                EventKind.CACHE_HIT, pool.name, now, selected=cached.selected
            )
        name = cached.selected if cached is not None else pool.initial_default
        return LaunchDecision(
            profile=False,
            variant_name=name,
            reason=(
                f"small workload ({base_groups} work-groups < "
                f"{config.small_workload_threshold}); profiling deactivated"
            ),
        )

    if len(pool.variants) == 1:
        return LaunchDecision(
            profile=False,
            variant_name=pool.variants[0].name,
            reason="single-variant pool; nothing to select",
        )

    excluded = tuple(n for n in dominated if n in pool.variant_names)
    survivors = tuple(n for n in pool.variant_names if n not in excluded)
    notes = ""
    if excluded:
        note = (
            f"{', '.join(repr(n) for n in excluded)} statically dominated"
            " (excluded from profiling)"
        )
        if len(survivors) == 1:
            return LaunchDecision(
                profile=False,
                variant_name=survivors[0],
                reason=(
                    f"single non-dominated candidate; {note}; "
                    "profiling skipped"
                ),
            )
        notes = f"; {note}"

    if predicted is not None and not drift_rearm:
        if predicted.variant in survivors:
            return LaunchDecision(
                profile=False,
                variant_name=predicted.variant,
                reason=(
                    f"predicted selection ({predicted.variant!r}, "
                    f"confidence {predicted.confidence:.2f})"
                    f"{notes}"
                ),
            )
        notes += (
            f"; predicted {predicted.variant!r} is not a profiling "
            "candidate"
        )

    if deferred:
        return _deferred_decision(
            pool, cached, stale_note, kind="micro-profile", notes=notes
        )
    return LaunchDecision(profile=True, reason=f"profiling activated{notes}")


def _deferred_decision(
    pool: VariantPool,
    cached: Optional[SelectionRecord],
    stale_note: str,
    kind: str,
    notes: str = "",
) -> LaunchDecision:
    """A backpressure-deferred launch: profiling-off on the known best.

    ``kind`` names what was postponed (``"micro-profile"`` for a cold
    class, ``"drift re-profile"`` for a confirmed-drift re-arm) so
    deferral accounting can tell the two apart from the reason alone.
    """
    if cached is not None:
        return LaunchDecision(
            profile=False,
            variant_name=cached.selected,
            reason=(
                f"{kind} deferred by backpressure; "
                f"using cached selection{notes}"
            ),
        )
    return LaunchDecision(
        profile=False,
        variant_name=pool.initial_default,
        reason=(
            f"{kind} deferred by backpressure; "
            f"{stale_note}using pool default{notes}"
        ),
    )


# ----------------------------------------------------------------------
# Placement: the device-kind dimension of the selection tuple
# ----------------------------------------------------------------------

#: Placement policies accepted by :func:`decide_placement`.
PLACEMENT_POLICIES = ("cost-model", "dynamic-load")


@dataclass(frozen=True)
class PlacementCandidate:
    """One device kind's bid for a launch, as seen by the scheduler.

    ``load_cycles`` is the least-loaded same-kind worker's projected
    clock (cycles of already-committed work).  ``measured_cycles`` is the
    store's EWMA estimate for this (kernel, kind, class) scaled to the
    request — ``None`` until the class has been profiled on this kind.
    ``static_cycles`` is the static cost-bound interval midpoint from
    :mod:`repro.analyze.costbound` scaled the same way — ``None`` when
    the analysis could not bound the pool on this kind.  ``quarantined``
    marks a kind whose *entire* pool is currently barred by
    :class:`~repro.faults.quarantine.VariantQuarantine`; such kinds are
    excluded from placement the way quarantined variants are excluded
    from selection.
    """

    device_kind: str
    load_cycles: float = 0.0
    measured_cycles: Optional[float] = None
    static_cycles: Optional[float] = None
    quarantined: bool = False

    @property
    def cost_basis(self) -> str:
        """Which estimate a cost-model placement would use for this kind."""
        if self.measured_cycles is not None:
            return "measured"
        if self.static_cycles is not None:
            return "static"
        return "load"

    @property
    def projected_cycles(self) -> float:
        """Projected finish time under the cost-model policy."""
        cost = self.measured_cycles
        if cost is None:
            cost = self.static_cycles
        if cost is None:
            cost = 0.0
        return self.load_cycles + cost


@dataclass(frozen=True)
class PlacementDecision:
    """Where one launch should run, and why.

    The ``reason`` vocabulary mirrors the variant-selection reasons of
    :func:`decide` so traces read uniformly: ``"pinned device kind"``
    (caller forced the kind), ``"single eligible device kind"`` (nothing
    to choose), ``"dynamic load placement"`` (least projected load wins),
    ``"store-measured placement"`` / ``"static cost-bound placement"``
    (cost-model policy; the winner's estimate came from warm EWMA state
    or from the cold-start static interval midpoint).  Quarantine and
    stale-pin notes are appended the same way :func:`decide` appends
    dominance notes.
    """

    device_kind: str
    reason: str
    projected: Mapping[str, float] = field(default_factory=dict)


def decide_placement(
    kernel: str,
    candidates: Sequence[PlacementCandidate],
    policy: str = "cost-model",
    pinned_kind: Optional[str] = None,
) -> PlacementDecision:
    """Resolve the device-kind dimension for one launch.

    Pure function over the per-kind :class:`PlacementCandidate` bids the
    scheduler assembled, so the precedence rules are testable the same
    way :func:`decide` is.  Precedence, strongest first:

    1. Kinds whose whole pool is quarantined are ineligible (noted).
    2. ``pinned_kind`` wins when it is eligible; a pinned kind that is
       unknown or quarantined is ignored with an explicit note and the
       normal policy runs — mirroring how a stale pinned *variant* falls
       through in :func:`decide`.
    3. A single eligible kind is chosen outright.
    4. ``policy="dynamic-load"`` picks the least projected load
       (the oneDPL ``dynamic_load_policy`` rule).
    5. ``policy="cost-model"`` picks the least *projected finish time*:
       load plus the store-measured EWMA estimate when the class is warm
       on that kind, else the static cost-bound midpoint, else load
       alone.  The reason names the winner's basis, so a trace shows
       cold-start placements flip from ``"static cost-bound placement"``
       to ``"store-measured placement"`` as the store warms.

    Raises :class:`~repro.errors.LaunchError` when no kind is eligible
    or ``policy`` is unknown.
    """
    if policy not in PLACEMENT_POLICIES:
        raise LaunchError(
            f"unknown placement policy {policy!r} "
            f"(expected one of {list(PLACEMENT_POLICIES)})"
        )
    if not candidates:
        raise LaunchError(
            f"kernel {kernel!r}: no device-kind candidates for placement"
        )
    eligible = [c for c in candidates if not c.quarantined]
    barred = [c.device_kind for c in candidates if c.quarantined]
    notes = ""
    if barred:
        notes = (
            f"; {', '.join(repr(k) for k in sorted(barred))} quarantined "
            "(excluded from placement)"
        )
    if not eligible:
        raise LaunchError(
            f"kernel {kernel!r}: every device kind is quarantined "
            f"({', '.join(repr(k) for k in sorted(barred))}); "
            "placement impossible"
        )
    projected = {c.device_kind: c.projected_cycles for c in eligible}
    if pinned_kind is not None:
        chosen = next(
            (c for c in eligible if c.device_kind == pinned_kind), None
        )
        if chosen is not None:
            return PlacementDecision(
                device_kind=chosen.device_kind,
                reason=f"pinned device kind{notes}",
                projected=projected,
            )
        known = {c.device_kind for c in candidates}
        why = "quarantined" if pinned_kind in known else "unknown"
        notes = (
            f"; pinned device kind {pinned_kind!r} is {why} (ignored)"
            + notes
        )
    if len(eligible) == 1:
        return PlacementDecision(
            device_kind=eligible[0].device_kind,
            reason=f"single eligible device kind{notes}",
            projected=projected,
        )
    if policy == "dynamic-load":
        winner = min(eligible, key=lambda c: (c.load_cycles, c.device_kind))
        return PlacementDecision(
            device_kind=winner.device_kind,
            reason=f"dynamic load placement{notes}",
            projected=projected,
        )
    winner = min(eligible, key=lambda c: (c.projected_cycles, c.device_kind))
    basis_reason = {
        "measured": "store-measured placement",
        "static": "static cost-bound placement",
        "load": "dynamic load placement",
    }[winner.cost_basis]
    return PlacementDecision(
        device_kind=winner.device_kind,
        reason=f"{basis_reason}{notes}",
        projected=projected,
    )
