"""Launch-time policy: when does DySel actually profile?

Paper §2.1: profiling-based selection is deactivated for small workloads —
launches under ~128 work-groups are both rare (Fig 2) and too small for
the optimization level to matter, while profiling overhead would be
proportionally large.  Paper §3.1: the *profiling activation flag* lets
iterative applications profile only their first iteration; later launches
reuse the cached selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..compiler.variants import VariantPool
from ..config import ReproConfig
from .selection import SelectionCache


@dataclass(frozen=True)
class LaunchDecision:
    """Whether to profile this launch, and which variant to use if not."""

    profile: bool
    variant_name: Optional[str] = None
    reason: str = ""


def decide(
    pool: VariantPool,
    workload_units: int,
    profiling_requested: bool,
    cache: SelectionCache,
    config: ReproConfig,
) -> LaunchDecision:
    """Resolve the profiling decision for one launch.

    Precedence: an explicit ``profiling=False`` wins (use the cached
    selection if one exists, else the pool's default); a cached selection
    is reused only when the caller deactivated profiling — re-requesting
    profiling re-profiles, which is how callers handle changed inputs; a
    small workload deactivates profiling regardless.
    """
    cached = cache.lookup(pool.name)
    if not profiling_requested:
        if cached is not None:
            return LaunchDecision(
                profile=False,
                variant_name=cached.selected,
                reason="profiling deactivated; cached selection reused",
            )
        return LaunchDecision(
            profile=False,
            variant_name=pool.initial_default,
            reason="profiling deactivated; no cached selection, using default",
        )

    base_groups = workload_units // max(
        1, min(v.wa_factor for v in pool.variants)
    )
    if base_groups < config.small_workload_threshold:
        name = cached.selected if cached is not None else pool.initial_default
        return LaunchDecision(
            profile=False,
            variant_name=name,
            reason=(
                f"small workload ({base_groups} work-groups < "
                f"{config.small_workload_threshold}); profiling deactivated"
            ),
        )

    if len(pool.variants) == 1:
        return LaunchDecision(
            profile=False,
            variant_name=pool.variants[0].name,
            reason="single-variant pool; nothing to select",
        )

    return LaunchDecision(profile=True, reason="profiling activated")
