"""Launch-time policy: when does DySel actually profile?

Paper §2.1: profiling-based selection is deactivated for small workloads —
launches under ~128 work-groups are both rare (Fig 2) and too small for
the optimization level to matter, while profiling overhead would be
proportionally large.  Paper §3.1: the *profiling activation flag* lets
iterative applications profile only their first iteration; later launches
reuse the cached selection.

A cached selection is only trusted after validation against the *current*
pool: re-registration can replace or extend a pool after a selection was
cached, and a stale winner must never be launched (it may not exist any
more) nor silently preferred over newly registered variants.  Stale
entries are evicted here and the launch falls back to the pool default
with an explicit reason.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..compiler.variants import VariantPool
from ..config import ReproConfig
from ..obs.events import EventKind
from ..obs.tracer import NULL_TRACER, Tracer
from ..predict import Prediction
from .selection import SelectionCache, SelectionRecord


@dataclass(frozen=True)
class LaunchDecision:
    """Whether to profile this launch, and which variant to use if not."""

    profile: bool
    variant_name: Optional[str] = None
    reason: str = ""


def _validated_cached(
    pool: VariantPool,
    cache: SelectionCache,
    tracer: Tracer,
    now: float,
) -> tuple:
    """The cached selection if it names a current variant, else evict it.

    Returns ``(record or None, stale_note)``; ``stale_note`` is non-empty
    when a stale entry was found and evicted.
    """
    cached: Optional[SelectionRecord] = cache.lookup(pool.name)
    if cached is None:
        return None, ""
    if cached.selected in pool.variant_names:
        return cached, ""
    stale_note = (
        f"cached selection {cached.selected!r} is not in the current pool "
        f"(variants: {list(pool.variant_names)}); "
    )
    cache.invalidate(pool.name)
    if tracer.enabled:
        tracer.instant(
            EventKind.CACHE_INVALIDATE,
            pool.name,
            now,
            stale_variant=cached.selected,
            reason="cached variant no longer in pool",
        )
    return None, stale_note


def _base_groups(pool: VariantPool, workload_units: int) -> int:
    """Work-groups of the finest-grained variant (the §2.1 size proxy)."""
    return workload_units // max(1, min(v.wa_factor for v in pool.variants))


def decide(
    pool: VariantPool,
    workload_units: int,
    profiling_requested: bool,
    cache: SelectionCache,
    config: ReproConfig,
    tracer: Tracer = NULL_TRACER,
    now: float = 0.0,
    pinned_variant: Optional[str] = None,
    drift_rearm: bool = False,
    dominated: Sequence[str] = (),
    predicted: Optional[Prediction] = None,
) -> LaunchDecision:
    """Resolve the profiling decision for one launch.

    Precedence: an explicit ``profiling=False`` wins (use the pinned
    variant if given, else the cached selection if one exists *and still
    names a pool variant*, else the pool's default); a cached selection is
    reused only when the caller deactivated profiling — re-requesting
    profiling re-profiles, which is how callers handle changed inputs; a
    small workload deactivates profiling regardless.

    ``drift_rearm`` is the drift loop's override (:mod:`repro.drift`):
    a confirmed throughput drift re-arms profiling for exactly this
    launch even though the caller deactivated it, *unless* the workload
    is too small to profile or the pool has nothing to select — then the
    re-arm is moot and the normal profiling-off path runs (the caller's
    claim should be released so a later, larger launch retries).

    ``pinned_variant`` is the serving layer's instruction (persistent
    selection store, :mod:`repro.serve`): run exactly this variant without
    profiling.  It is validated against the current pool like a cached
    selection — a pinned name the pool no longer contains is ignored with
    an explicit reason rather than launched blind.

    ``dominated`` names variants the static cost-bound analysis excluded
    from the micro-profiling candidate set
    (:mod:`repro.analyze.dominance`): they stay in the correctness pool,
    but profiling plans are built over the survivors only, and when a
    single candidate survives, profiling is skipped outright — its
    outcome is statically known.  Each exclusion is recorded in the
    decision reason as ``"statically dominated"``.

    ``predicted`` is the serving layer's model guess
    (:mod:`repro.predict`), already vetted against the confidence
    threshold by the caller.  It is deliberately the *weakest* input:
    it only converts a launch that would otherwise micro-profile into a
    profiling-off run of the predicted variant (``"predicted
    selection"``), so it can never override the small-workload,
    single-variant, pinned, or quarantine gates (a quarantined variant
    is not in ``pool`` at all), never applies to a drift re-arm (the
    episode wants a real measurement), and only chooses among the
    dominance survivors — a predicted variant the static analysis
    excluded falls back to profiling with an explicit note.

    ``tracer``/``now`` report cache traffic to :mod:`repro.obs` when
    tracing is on (``now`` is the engine clock at decision time).
    """
    cached, stale_note = _validated_cached(pool, cache, tracer, now)
    if (
        drift_rearm
        and not profiling_requested
        and len(pool.variants) > 1
        and _base_groups(pool, workload_units)
        >= config.small_workload_threshold
    ):
        return LaunchDecision(profile=True, reason="drift re-activation")
    if pinned_variant is not None and not profiling_requested:
        if pinned_variant in pool.variant_names:
            return LaunchDecision(
                profile=False,
                variant_name=pinned_variant,
                reason="profiling deactivated; pinned selection reused",
            )
        stale_note += (
            f"pinned selection {pinned_variant!r} is not in the current "
            f"pool (variants: {list(pool.variant_names)}); "
        )
    if not profiling_requested:
        if cached is not None:
            if tracer.enabled:
                tracer.instant(
                    EventKind.CACHE_HIT,
                    pool.name,
                    now,
                    selected=cached.selected,
                )
            return LaunchDecision(
                profile=False,
                variant_name=cached.selected,
                reason="profiling deactivated; cached selection reused",
            )
        return LaunchDecision(
            profile=False,
            variant_name=pool.initial_default,
            reason=(
                f"profiling deactivated; {stale_note}no cached selection, "
                "using default"
            ),
        )

    base_groups = _base_groups(pool, workload_units)
    if base_groups < config.small_workload_threshold:
        if cached is not None and tracer.enabled:
            tracer.instant(
                EventKind.CACHE_HIT, pool.name, now, selected=cached.selected
            )
        name = cached.selected if cached is not None else pool.initial_default
        return LaunchDecision(
            profile=False,
            variant_name=name,
            reason=(
                f"small workload ({base_groups} work-groups < "
                f"{config.small_workload_threshold}); profiling deactivated"
            ),
        )

    if len(pool.variants) == 1:
        return LaunchDecision(
            profile=False,
            variant_name=pool.variants[0].name,
            reason="single-variant pool; nothing to select",
        )

    excluded = tuple(n for n in dominated if n in pool.variant_names)
    survivors = tuple(n for n in pool.variant_names if n not in excluded)
    notes = ""
    if excluded:
        note = (
            f"{', '.join(repr(n) for n in excluded)} statically dominated"
            " (excluded from profiling)"
        )
        if len(survivors) == 1:
            return LaunchDecision(
                profile=False,
                variant_name=survivors[0],
                reason=(
                    f"single non-dominated candidate; {note}; "
                    "profiling skipped"
                ),
            )
        notes = f"; {note}"

    if predicted is not None and not drift_rearm:
        if predicted.variant in survivors:
            return LaunchDecision(
                profile=False,
                variant_name=predicted.variant,
                reason=(
                    f"predicted selection ({predicted.variant!r}, "
                    f"confidence {predicted.confidence:.2f})"
                    f"{notes}"
                ),
            )
        notes += (
            f"; predicted {predicted.variant!r} is not a profiling "
            "candidate"
        )

    return LaunchDecision(profile=True, reason=f"profiling activated{notes}")
