"""Kernel pool registry: multiple implementations per kernel signature.

Unlike a traditional runtime, DySel lets compilers and programmers deposit
several implementations of the same kernel function signature (paper
§3.1, Fig 6a).  The registry stores them as
:class:`~repro.compiler.variants.VariantPool` objects keyed by signature
name, building pools incrementally as ``add_kernel`` calls arrive.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..compiler.variants import VariantPool
from ..errors import RegistrationError
from ..kernel.kernel import KernelSpec, KernelVariant
from ..modes import ProfilingMode


class DySelKernelRegistry:
    """Holds every registered kernel pool."""

    def __init__(self) -> None:
        self._specs: Dict[str, KernelSpec] = {}
        self._variants: Dict[str, List[KernelVariant]] = {}
        self._modes: Dict[str, Optional[ProfilingMode]] = {}
        self._defaults: Dict[str, Optional[str]] = {}
        #: Materialized pools, invalidated whenever the registration
        #: changes.  A stable pool object per signature means the mode
        #: recommendation analyses run once, and the launch verifier's
        #: identity-keyed verdict cache actually hits across launches.
        self._pools: Dict[str, VariantPool] = {}

    def declare(self, spec: KernelSpec) -> None:
        """Declare a kernel signature before registering implementations."""
        name = spec.signature.name
        if name in self._specs:
            raise RegistrationError(f"kernel {name!r} already declared")
        self._specs[name] = spec
        self._variants[name] = []
        self._modes[name] = None
        self._defaults[name] = None

    def add_kernel(
        self,
        kernel_sig: str,
        implementation: KernelVariant,
        initial_default: bool = False,
    ) -> None:
        """Register one implementation under a declared signature.

        Mirrors ``DySelAddKernel`` (Fig 6a): the work assignment factor and
        sandbox metadata travel on the variant / spec.  Passing
        ``initial_default=True`` marks this variant as the asynchronous
        flow's suggested starting version (paper §2.4's ``Kdefault``).
        """
        if kernel_sig not in self._specs:
            raise RegistrationError(
                f"kernel {kernel_sig!r} not declared; call declare() first"
            )
        existing = self._variants[kernel_sig]
        if any(v.name == implementation.name for v in existing):
            raise RegistrationError(
                f"kernel {kernel_sig!r}: variant {implementation.name!r} "
                "already registered"
            )
        existing.append(implementation)
        if initial_default:
            self._defaults[kernel_sig] = implementation.name
        self._pools.pop(kernel_sig, None)

    def set_mode(self, kernel_sig: str, mode: ProfilingMode) -> None:
        """Override the compiler-recommended profiling mode (paper §3.4)."""
        if kernel_sig not in self._specs:
            raise RegistrationError(f"kernel {kernel_sig!r} not declared")
        self._modes[kernel_sig] = mode
        self._pools.pop(kernel_sig, None)

    def register_pool(self, pool: VariantPool) -> None:
        """Register a pre-built pool in one call (compiler entry point).

        Re-registering a signature *replaces* the previous pool wholesale
        (a recompile shipping a new variant set).  Callers holding
        derived per-pool state — most importantly the runtime's selection
        cache — must invalidate it; :meth:`DySelRuntime.register_pool`
        does so, and :func:`repro.core.policy.decide` additionally
        validates any cached selection against the current pool so stale
        winners can never launch even through a bare registry.
        """
        if pool.name in self._specs:
            self._forget(pool.name)
        self.declare(pool.spec)
        for variant in pool.variants:
            self.add_kernel(pool.name, variant)
        self._modes[pool.name] = pool.mode
        self._defaults[pool.name] = pool.initial_default
        self._pools[pool.name] = pool

    def _forget(self, kernel_sig: str) -> None:
        """Drop every record of a signature (re-registration support)."""
        self._specs.pop(kernel_sig, None)
        self._variants.pop(kernel_sig, None)
        self._modes.pop(kernel_sig, None)
        self._defaults.pop(kernel_sig, None)
        self._pools.pop(kernel_sig, None)

    def pool(self, kernel_sig: str) -> VariantPool:
        """Materialize the current pool for a signature (memoized)."""
        if kernel_sig not in self._specs:
            raise RegistrationError(f"kernel {kernel_sig!r} not declared")
        cached = self._pools.get(kernel_sig)
        if cached is not None:
            return cached
        variants = tuple(self._variants[kernel_sig])
        if not variants:
            raise RegistrationError(
                f"kernel {kernel_sig!r} has no registered implementations"
            )
        pool = VariantPool(
            spec=self._specs[kernel_sig],
            variants=variants,
            mode=self._modes[kernel_sig],
            initial_default=self._defaults[kernel_sig],
        )
        self._pools[kernel_sig] = pool
        return pool

    def __contains__(self, kernel_sig: str) -> bool:
        return kernel_sig in self._specs

    def __iter__(self) -> Iterator[str]:
        return iter(self._specs)

    def items(self) -> Iterator[Tuple[str, VariantPool]]:
        """Iterate (signature name, pool) pairs."""
        for name in self._specs:
            yield name, self.pool(name)
