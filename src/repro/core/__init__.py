"""DySel: the dynamic-selection runtime (the paper's contribution).

The runtime accepts a *pool* of kernel variants per kernel signature
(:mod:`~repro.core.registry`), and at launch time micro-profiles the
candidates on a small slice of the actual workload — productively, so
profiled work contributes to the final output
(:mod:`~repro.core.productive`) — then processes the remaining workload
with the winner (:mod:`~repro.core.orchestrator`, synchronous or
asynchronous flow).  Selection state persists across launches so iterative
solvers profile once (:mod:`~repro.core.selection`,
:mod:`~repro.core.policy`).

:mod:`~repro.core.api` exposes the paper-faithful functional facade
(``DySelAddKernel`` / ``DySelLaunchKernel``, Fig 6); most code should use
:class:`~repro.core.runtime.DySelRuntime` directly.
"""

from ..modes import OrchestrationFlow, ProfilingMode
from .api import DySelContext
from .policy import PlacementCandidate, PlacementDecision, decide_placement
from .registry import DySelKernelRegistry
from .runtime import DySelRuntime, LaunchResult
from .selection import SelectionCache, SelectionRecord, VariantMeasurement

__all__ = [
    "DySelContext",
    "DySelKernelRegistry",
    "DySelRuntime",
    "LaunchResult",
    "OrchestrationFlow",
    "PlacementCandidate",
    "PlacementDecision",
    "ProfilingMode",
    "SelectionCache",
    "SelectionRecord",
    "VariantMeasurement",
    "decide_placement",
]
