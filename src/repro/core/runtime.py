"""DySelRuntime: the launch-facing runtime (paper Fig 6b).

``launch_kernel`` resolves the kernel pool, applies the launch policy
(small-workload deactivation, activation flag, cached selections), gates
the requested (mode, flow) through the static pool verifier
(:mod:`repro.analyze`, level set by ``ReproConfig.verify``), runs safe
point analysis, lays out the productive profiling plan, and drives the
requested orchestration flow on the device's execution engine.  One
runtime owns one engine, so simulated time accumulates across launches —
which is how iterative experiments (profile the first iteration, reuse the
selection) measure amortized overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from ..analyze.gate import gate_launch
from ..analyze.manager import PoolVerifier
from ..analyze.passes import VerifyOverrides
from ..compiler.analyses.safe_point import safe_point_plan
from ..compiler.variants import VariantPool
from ..config import ReproConfig
from ..device.base import Device
from ..device.engine import ExecutionEngine, Priority
from ..errors import LaunchError
from ..kernel.kernel import KernelSpec, KernelVariant, WorkRange
from ..kernel.launch import LaunchConfig
from ..modes import OrchestrationFlow, ProfilingMode
from . import policy
from .orchestrator import run_async, run_sync
from .productive import plan_profiling
from .registry import DySelKernelRegistry
from .selection import SelectionCache, SelectionRecord


@dataclass(frozen=True)
class LaunchResult:
    """What one ``launch_kernel`` call produced.

    ``elapsed_cycles`` covers everything the evaluation's timing covers
    (paper §4.1): profiling time, profiling launch overheads, and the
    remaining workload's compute time.
    """

    kernel: str
    selected: str
    profiled: bool
    mode: Optional[ProfilingMode]
    flow: Optional[OrchestrationFlow]
    start_cycles: float
    end_cycles: float
    reason: str = ""
    record: Optional[SelectionRecord] = None
    eager_chunks: int = 0
    eager_units: int = 0
    profiling_latency_cycles: float = 0.0

    @property
    def elapsed_cycles(self) -> float:
        """Wall time of the launch on the device clock."""
        return self.end_cycles - self.start_cycles


class DySelRuntime:
    """The DySel runtime bound to one (simulated) device."""

    def __init__(
        self,
        device: Device,
        config: Optional[ReproConfig] = None,
        registry: Optional[DySelKernelRegistry] = None,
    ) -> None:
        self.device = device
        self.config = config if config is not None else device.config
        self.registry = registry if registry is not None else DySelKernelRegistry()
        self.engine = ExecutionEngine(device, self.config)
        self.cache = SelectionCache()
        #: Static pool verifier; verdicts are cached per pool, so gating
        #: costs one pass-manager run per (pool, overrides) lifetime.
        self.verifier = PoolVerifier()

    # ------------------------------------------------------------------
    # Registration facade
    # ------------------------------------------------------------------

    def declare_kernel(self, spec: KernelSpec) -> None:
        """Declare a kernel signature (see :class:`DySelKernelRegistry`)."""
        self.registry.declare(spec)

    def add_kernel(
        self,
        kernel_sig: str,
        implementation: KernelVariant,
        initial_default: bool = False,
    ) -> None:
        """Register one implementation (``DySelAddKernel``, Fig 6a)."""
        self.registry.add_kernel(kernel_sig, implementation, initial_default)

    def register_pool(self, pool: VariantPool) -> None:
        """Register a compiler-built pool in one call."""
        self.registry.register_pool(pool)

    # ------------------------------------------------------------------
    # Launch
    # ------------------------------------------------------------------

    def launch_kernel(
        self,
        kernel_sig: str,
        args: Mapping[str, object],
        workload_units: int,
        profiling: bool = True,
        mode: Optional[ProfilingMode] = None,
        flow: OrchestrationFlow = OrchestrationFlow.ASYNC,
        initial_variant: Optional[str] = None,
        override_side_effects: bool = False,
    ) -> LaunchResult:
        """Launch a kernel (``DySelLaunchKernel``, Fig 6b).

        Parameters
        ----------
        kernel_sig:
            Declared kernel signature name.
        args:
            Concrete argument mapping (validated against the signature).
        workload_units:
            Total workload units of this launch.
        profiling:
            The profiling activation flag (§3.1): off reuses the cached
            selection (or the pool default).
        mode:
            Productive profiling mode override; defaults to the compiler's
            recommendation from uniform-workload/side-effect analyses.
        flow:
            Orchestration flow; the paper's default is asynchronous.
            Swap-mode pools fall back to synchronous (Table 1).
        initial_variant:
            Async-flow initial default override (``Kdefault``).
        override_side_effects:
            The paper's programmer override (§3.4): asserts that global
            atomics are race-free across work-groups, downgrading the
            verifier's conservative atomics findings from ERROR to
            WARNING so fully/hybrid profiling stays available.
        """
        if kernel_sig not in self.registry:
            raise LaunchError(f"kernel {kernel_sig!r} is not registered")
        pool = self.registry.pool(kernel_sig)
        launch = LaunchConfig.create(
            pool.spec.signature, args, workload_units
        )

        decision = policy.decide(
            pool, workload_units, profiling, self.cache, self.config
        )
        if not decision.profile:
            return self._launch_without_profiling(pool, launch, decision)

        effective_mode = mode if mode is not None else pool.mode
        assert effective_mode is not None
        effective_flow = flow
        reason = decision.reason
        if self.config.verify != "off":
            report = self.verifier.verify(
                pool,
                compute_units=self.device.spec.compute_units,
                overrides=VerifyOverrides(
                    atomics_race_free=override_side_effects
                ),
            )
            gate = gate_launch(
                report, effective_mode, effective_flow, self.config.verify
            )
            effective_mode, effective_flow = gate.mode, gate.flow
            if gate.note:
                reason += "; " + gate.note
        elif (
            flow is OrchestrationFlow.ASYNC
            and not effective_mode.supports_async
        ):
            # Pre-verifier fallback (verify="off"): Table 1's silent
            # swap → synchronous demotion.
            effective_flow = OrchestrationFlow.SYNC
            reason += "; swap mode forced synchronous flow"

        safe = safe_point_plan(
            pool.variants,
            compute_units=self.device.spec.compute_units,
            workload_units=workload_units,
            multiplier=self.config.safe_point_multiplier,
        )
        plan = plan_profiling(pool, effective_mode, launch, safe)

        if effective_flow is OrchestrationFlow.SYNC:
            outcome = run_sync(self.engine, pool, plan, launch, self.config)
        else:
            outcome = run_async(
                self.engine,
                pool,
                plan,
                launch,
                self.config,
                initial_variant=initial_variant,
            )
        self.cache.record(outcome.record)
        assert outcome.record.selected is not None
        return LaunchResult(
            kernel=kernel_sig,
            selected=outcome.record.selected,
            profiled=True,
            mode=effective_mode,
            flow=effective_flow,
            start_cycles=outcome.start_cycles,
            end_cycles=outcome.end_cycles,
            reason=reason,
            record=outcome.record,
            eager_chunks=outcome.eager_chunks,
            eager_units=outcome.eager_units,
            profiling_latency_cycles=outcome.profiling_latency_cycles,
        )

    def _launch_without_profiling(
        self,
        pool: VariantPool,
        launch: LaunchConfig,
        decision: policy.LaunchDecision,
    ) -> LaunchResult:
        assert decision.variant_name is not None
        variant = pool.variant(decision.variant_name)
        start = self.engine.now
        if launch.workload_units > 0:
            task = self.engine.submit(
                variant,
                launch.args,
                WorkRange(0, launch.workload_units),
                priority=Priority.BATCH,
            )
            self.engine.wait(task)
        return LaunchResult(
            kernel=pool.name,
            selected=variant.name,
            profiled=False,
            mode=None,
            flow=None,
            start_cycles=start,
            end_cycles=self.engine.now,
            reason=decision.reason,
        )
