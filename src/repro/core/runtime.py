"""DySelRuntime: the launch-facing runtime (paper Fig 6b).

``launch_kernel`` resolves the kernel pool, applies the launch policy
(small-workload deactivation, activation flag, cached selections), gates
the requested (mode, flow) through the static pool verifier
(:mod:`repro.analyze`, level set by ``ReproConfig.verify``), runs safe
point analysis, lays out the productive profiling plan, and drives the
requested orchestration flow on the device's execution engine.  One
runtime owns one engine, so simulated time accumulates across launches —
which is how iterative experiments (profile the first iteration, reuse the
selection) measure amortized overhead.

Failure philosophy: a launch that *could* run productively never dies on
a profiling-layout technicality.  An infeasible profiling plan (the fair
slice does not fit the workload) demotes — fully-productive falls back to
hybrid when the verifier allows it, otherwise profiling is switched off
and the pool default runs — with the demotion recorded in
``LaunchResult.reason`` and a :class:`ProfilingDemotionWarning`, matching
the verification gate's warn-level behaviour.

With ``ReproConfig.trace`` set, every launch emits structured events
(:mod:`repro.obs`): ``LaunchBegin``/``LaunchEnd`` brackets, gate and plan
demotions, cache traffic, per-variant profile spans, eager chunks, and
the remainder batch — enough to reconstruct the paper's Fig 4 timelines
from a recorded trace.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..analyze.diagnostics import VerificationReport
from ..analyze.dominance import (
    policy_from_settings,
    pool_cost_bounds,
    prune_pool,
)
from ..analyze.gate import gate_launch
from ..analyze.manager import PoolVerifier
from ..analyze.passes import VerifyOverrides
from ..compiler.analyses.safe_point import SafePointPlan, safe_point_plan
from ..compiler.variants import VariantPool
from ..config import ReproConfig
from ..device.base import Device
from ..device.cost import invalidate_cost_memo, ir_hash
from ..device.engine import ExecutionEngine, Priority
from ..drift import DriftConfig, DriftSignal, ReselectionController
from ..errors import (
    AnalysisError,
    LaunchAbortedError,
    LaunchError,
    ProfilingError,
    ProfilingFaultError,
    RegistrationError,
)
from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan, FaultRecord
from ..faults.quarantine import VariantQuarantine
from ..kernel.kernel import KernelSpec, KernelVariant, WorkRange
from ..kernel.launch import LaunchConfig
from ..modes import OrchestrationFlow, ProfilingMode
from ..obs.events import EventKind
from ..predict import Prediction
from . import policy
from .orchestrator import _run_batch_with_fallback, run_async, run_sync
from .productive import ProfilingPlan, plan_profiling
from .registry import DySelKernelRegistry
from .selection import SelectionCache, SelectionRecord


class ProfilingDemotionWarning(UserWarning):
    """A profiling plan was infeasible and the launch was demoted."""


@dataclass(frozen=True)
class LaunchResult:
    """What one ``launch_kernel`` call produced.

    ``elapsed_cycles`` covers everything the evaluation's timing covers
    (paper §4.1): profiling time, profiling launch overheads, and the
    remaining workload's compute time.
    """

    kernel: str
    selected: str
    profiled: bool
    mode: Optional[ProfilingMode]
    flow: Optional[OrchestrationFlow]
    start_cycles: float
    end_cycles: float
    reason: str = ""
    record: Optional[SelectionRecord] = None
    eager_chunks: int = 0
    eager_units: int = 0
    profiling_latency_cycles: float = 0.0

    @property
    def elapsed_cycles(self) -> float:
        """Wall time of the launch on the device clock."""
        return self.end_cycles - self.start_cycles


class DySelRuntime:
    """The DySel runtime bound to one (simulated) device."""

    def __init__(
        self,
        device: Device,
        config: Optional[ReproConfig] = None,
        registry: Optional[DySelKernelRegistry] = None,
    ) -> None:
        self.device = device
        self.config = config if config is not None else device.config
        self.registry = registry if registry is not None else DySelKernelRegistry()
        self.engine = ExecutionEngine(device, self.config)
        self.cache = SelectionCache()
        #: Static pool verifier; verdicts are cached per pool, so gating
        #: costs one pass-manager run per (pool, overrides) lifetime.
        self.verifier = PoolVerifier()
        #: Observability hook: shared with the engine, so launch-level
        #: and engine-level events land on one timeline.
        self.tracer = self.engine.tracer
        #: Callbacks fired whenever a registration change invalidates a
        #: kernel's selection state (``callback(kernel_sig, why)``).  The
        #: serving layer registers one per runtime so persistent-store
        #: entries die together with the in-memory cache entry.
        self._invalidation_hooks: List[Callable[[str, str], None]] = []
        #: Repeat-offender ledger: variants that keep faulting are barred
        #: from selection until parole (see :mod:`repro.faults`).  The
        #: serving layer may replace this with a store-shared ledger so
        #: quarantines persist across worker runtimes.
        self.quarantine = VariantQuarantine(self.config.faults)
        #: Cache of quarantine-restricted pools, keyed by
        #: ``(kernel, barred-names)`` so repeat launches under a stable
        #: quarantine set do not rebuild the filtered pool each time.
        self._restricted_pools: Dict[
            Tuple[str, Tuple[str, ...]], VariantPool
        ] = {}
        #: Cache of dominance-pruned profiling candidate pools, keyed by
        #: ``(kernel, active-variant-names)`` — the active set changes
        #: with quarantine, and a replaced pool object fails the identity
        #: check, so a stale pruned pool is never reused.  Only consulted
        #: when ``ReproConfig.analyze.dominance`` is on.
        self._dominance_pools: Dict[
            Tuple[str, Tuple[str, ...]],
            Tuple[VariantPool, VariantPool, Tuple[str, ...]],
        ] = {}
        #: Optional drift feedback loop (:mod:`repro.drift`): when armed
        #: via :meth:`enable_drift`, profiling-off launches feed their
        #: measured cycles per unit into the detector and a confirmed
        #: drift re-arms profiling for the next launch of that kernel.
        #: ``None`` (the default) keeps the runtime's behaviour exactly
        #: as before — the serving layer drives its own controller per
        #: workload class instead.
        self.drift: Optional[ReselectionController] = None

    # ------------------------------------------------------------------
    # Fault injection (chaos testing)
    # ------------------------------------------------------------------

    def install_faults(self, plan: FaultPlan) -> FaultInjector:
        """Install a :class:`FaultPlan` on this runtime's engine.

        Installing an injector arms the hardened launch paths: transient
        retries, hang deadlines, productive-slice repair, quarantine and
        the degradation ladder (``docs/faults.md``).  Without an injector
        the runtime behaves exactly as before — fault handling costs
        nothing when chaos testing is off.
        """
        injector = FaultInjector(plan)
        self.engine.injector = injector
        return injector

    def clear_faults(self) -> None:
        """Remove any installed fault injector (back to clean runs)."""
        self.engine.injector = None

    # ------------------------------------------------------------------
    # Drift adaptation
    # ------------------------------------------------------------------

    def enable_drift(
        self,
        config: Optional[DriftConfig] = None,
        controller: Optional[ReselectionController] = None,
    ) -> ReselectionController:
        """Arm the drift → re-profile feedback loop on this runtime.

        With drift enabled, every profiling-off launch feeds its measured
        cycles per workload unit into a per-kernel
        :class:`~repro.drift.DriftDetector`; a confirmed throughput
        change re-arms the profiling activation flag for the next launch
        of that kernel (``policy.decide`` reason
        ``"drift re-activation"``), and the re-selection episode is
        recorded on the returned controller.  Pass ``controller`` to
        share one across runtimes (the serving layer does its own wiring
        through the selection store instead).
        """
        if controller is not None:
            self.drift = controller
        else:
            self.drift = ReselectionController(config)
        return self.drift

    def _observe_drift(
        self, kernel_sig: str, result: LaunchResult, workload_units: int
    ) -> None:
        """Feed one profiling-off launch into the drift loop (if armed)."""
        if (
            self.drift is None
            or workload_units <= 0
            or result.elapsed_cycles <= 0.0
        ):
            return
        cycles_per_unit = result.elapsed_cycles / workload_units
        signal = self.drift.observe(
            kernel_sig, kernel_sig, result.selected, cycles_per_unit
        )
        if signal is DriftSignal.NONE or not self.tracer.enabled:
            return
        kind = (
            EventKind.DRIFT_SUSPECT
            if signal is DriftSignal.SUSPECT
            else EventKind.DRIFT_CONFIRMED
        )
        self.tracer.instant(
            kind,
            kernel_sig,
            self.engine.now,
            variant=result.selected,
            cycles_per_unit=cycles_per_unit,
        )

    def add_invalidation_hook(
        self, hook: Callable[[str, str], None]
    ) -> None:
        """Subscribe to selection invalidations (``hook(kernel, why)``).

        Fired on every registration change that can stale derived
        selection state — pool extension via :meth:`add_kernel` and
        wholesale re-registration via :meth:`register_pool` — whether or
        not this runtime's own in-memory cache held an entry (an external
        store may hold selections this runtime never made).
        """
        self._invalidation_hooks.append(hook)

    # ------------------------------------------------------------------
    # Registration facade
    # ------------------------------------------------------------------

    def declare_kernel(self, spec: KernelSpec) -> None:
        """Declare a kernel signature (see :class:`DySelKernelRegistry`)."""
        self.registry.declare(spec)

    def add_kernel(
        self,
        kernel_sig: str,
        implementation: KernelVariant,
        initial_default: bool = False,
    ) -> None:
        """Register one implementation (``DySelAddKernel``, Fig 6a).

        Extending a pool invalidates any cached selection for it: the
        cached winner was chosen against the *old* candidate set, and a
        ``profiling=False`` launch must not silently ignore the new
        variant (nor crash on a name that a replacement removed).
        """
        self.registry.add_kernel(kernel_sig, implementation, initial_default)
        self._invalidate_selection(
            kernel_sig,
            "pool extended by add_kernel",
            ir_hashes=self._pool_ir_hashes(kernel_sig),
        )

    def register_pool(self, pool: VariantPool) -> None:
        """Register a compiler-built pool in one call.

        Re-registering a signature replaces the previous pool (see
        :meth:`DySelKernelRegistry.register_pool`) and invalidates its
        cached selection.  A *first* registration invalidates nothing:
        selections loaded from a persistent store must survive the
        routine pool registration that every serving process performs at
        startup.
        """
        replacing = pool.name in self.registry
        stale_hashes = self._pool_ir_hashes(pool.name) if replacing else ()
        self.registry.register_pool(pool)
        if replacing:
            hashes = set(stale_hashes)
            hashes.update(ir_hash(variant.ir) for variant in pool.variants)
            self._invalidate_selection(
                pool.name, "pool re-registered", ir_hashes=hashes
            )

    def _pool_ir_hashes(self, kernel_sig: str) -> Tuple[str, ...]:
        """IR hashes of a signature's currently registered variants."""
        try:
            pool = self.registry.pool(kernel_sig)
        except RegistrationError:
            return ()
        return tuple(ir_hash(variant.ir) for variant in pool.variants)

    def _invalidate_selection(
        self,
        kernel_sig: str,
        why: str,
        ir_hashes: Optional[Iterable[str]] = None,
    ) -> None:
        """Evict a kernel's cached selection after a registration change.

        Invalidation hooks fire unconditionally (external stores may hold
        selections this runtime never cached); the in-memory eviction and
        its trace event only happen when there was an entry to evict.
        With ``ir_hashes`` given, the engine's cost-kernel memo entries
        for those IRs are dropped too — a re-registered pool may ship a
        structurally different variant under the same name, and stale
        cost arrays must die with the stale selection.
        """
        for hook in self._invalidation_hooks:
            hook(kernel_sig, why)
        if ir_hashes:
            invalidate_cost_memo(ir_hashes)
        if kernel_sig not in self.cache:
            return
        stale = self.cache.lookup(kernel_sig)
        self.cache.invalidate(kernel_sig)
        if self.tracer.enabled:
            self.tracer.instant(
                EventKind.CACHE_INVALIDATE,
                kernel_sig,
                self.engine.now,
                stale_variant=stale.selected if stale else None,
                reason=why,
            )

    # ------------------------------------------------------------------
    # Launch
    # ------------------------------------------------------------------

    def launch_kernel(
        self,
        kernel_sig: str,
        args: Mapping[str, object],
        workload_units: int,
        profiling: bool = True,
        mode: Optional[ProfilingMode] = None,
        flow: OrchestrationFlow = OrchestrationFlow.ASYNC,
        initial_variant: Optional[str] = None,
        override_side_effects: bool = False,
        pinned_variant: Optional[str] = None,
        stream_name: Optional[str] = None,
        drift_rearm: bool = False,
        predicted: Optional[Prediction] = None,
        work_range: Optional[WorkRange] = None,
        deferred: bool = False,
    ) -> LaunchResult:
        """Launch a kernel (``DySelLaunchKernel``, Fig 6b).

        Parameters
        ----------
        kernel_sig:
            Declared kernel signature name.
        args:
            Concrete argument mapping (validated against the signature).
        workload_units:
            Total workload units of this launch.
        profiling:
            The profiling activation flag (§3.1): off reuses the cached
            selection (or the pool default).
        mode:
            Productive profiling mode override; defaults to the compiler's
            recommendation from uniform-workload/side-effect analyses.
        flow:
            Orchestration flow; the paper's default is asynchronous.
            Swap-mode pools fall back to synchronous (Table 1).
        initial_variant:
            Async-flow initial default override (``Kdefault``).
        override_side_effects:
            The paper's programmer override (§3.4): asserts that global
            atomics are race-free across work-groups, downgrading the
            verifier's conservative atomics findings from ERROR to
            WARNING so fully/hybrid profiling stays available.
        pinned_variant:
            With ``profiling=False``, run exactly this variant (the
            serving layer's persisted-selection replay); validated
            against the current pool before use.
        stream_name:
            Stream to attribute a profiling-off batch submission to (the
            serving layer tags each admitted request with its leased
            stream so traces show per-request queues).  Profiled launches
            manage their own per-candidate streams and ignore this.
        drift_rearm:
            External drift override (the serving layer's
            :class:`~repro.drift.ReselectionController` confirmed a
            throughput change for this request's workload class): with
            ``profiling=False``, re-arm profiling for exactly this
            launch.  When the runtime's own drift loop is armed
            (:meth:`enable_drift`) the flag is raised internally and
            callers never need to pass it.
        predicted:
            The serving layer's confident model guess
            (:class:`repro.predict.Prediction`): with ``profiling=True``,
            lets the policy skip the micro-profile and run the predicted
            variant outright — but only when it survives every stronger
            gate (small workload, single variant, quarantine filtering,
            dominance exclusion, drift re-arm); otherwise the launch
            profiles exactly as if no prediction existed.
        work_range:
            Execute only this half-open sub-range of the workload's units
            (the fleet scheduler's work splitting,
            :mod:`repro.serve.scheduler`): output buffers receive exactly
            the slice this range computes, so concurrent devices can each
            run a disjoint part and the caller stitches nothing — the
            parts already wrote disjoint slices.  ``workload_units`` must
            equal ``len(work_range)`` (it is this call's unit count, and
            what LAUNCH_BEGIN records, so ranged traces still reconcile).
            A ranged launch never micro-profiles: profiling, drift
            re-arms, and predictions are demoted to a profiling-off run
            with an explicit reason — split parts ride the selection
            their class already has; only whole launches pay or re-pay
            the profile.
        deferred:
            The serving layer's profiling-backpressure flag
            (:mod:`repro.serve.qos`): the fleet is overloaded, so any
            branch that would micro-profile (or drift-re-profile) runs
            profiling-off on the cached selection or pool default with a
            ``"deferred by backpressure"`` reason instead.  Confident
            predictions still serve (they cost no profiling); branches
            that were not going to profile are unaffected.
        """
        if kernel_sig not in self.registry:
            raise LaunchError(f"kernel {kernel_sig!r} is not registered")
        ranged_note = ""
        if work_range is not None:
            if len(work_range) != workload_units:
                raise LaunchError(
                    f"kernel {kernel_sig!r}: work_range {work_range!r} "
                    f"covers {len(work_range)} unit(s) but workload_units="
                    f"{workload_units}; pass the range's own unit count"
                )
            if profiling or drift_rearm or predicted is not None:
                ranged_note = "; ranged launch never profiles"
            profiling = False
            drift_rearm = False
            predicted = None
        if self.engine.injector is not None:
            self.engine.injector.kernel = kernel_sig
        pool = self._active_pool(kernel_sig, self.registry.pool(kernel_sig))
        profile_pool, dominated = self._dominance_candidates(
            kernel_sig, pool
        )
        launch = LaunchConfig.create(
            pool.spec.signature, args, workload_units
        )
        tracer = self.tracer
        if tracer.enabled:
            tracer.instant(
                EventKind.LAUNCH_BEGIN,
                kernel_sig,
                self.engine.now,
                workload_units=workload_units,
                profiling_requested=profiling,
                requested_flow=flow.value,
                requested_mode=mode.value if mode is not None else None,
                launch_index=self.engine.launch_count,
                **(
                    {
                        "work_start": work_range.start,
                        "work_end": work_range.end,
                    }
                    if work_range is not None
                    else {}
                ),
            )
            if dominated and profiling:
                tracer.instant(
                    EventKind.DOMINANCE_PRUNE,
                    kernel_sig,
                    self.engine.now,
                    pruned=list(dominated),
                    survivors=list(profile_pool.variant_names),
                    margin=self.config.analyze.dominance_margin,
                    device_kind=self.device.kind,
                )

        claimed_drift = False
        if (
            not profiling
            and not drift_rearm
            and work_range is None
            and self.drift is not None
            and self.drift.should_rearm(kernel_sig)
        ):
            claimed_drift = self.drift.claim(kernel_sig)
        decision = policy.decide(
            pool,
            workload_units,
            profiling,
            self.cache,
            self.config,
            tracer,
            self.engine.now,
            pinned_variant=pinned_variant,
            drift_rearm=drift_rearm or claimed_drift,
            dominated=dominated,
            predicted=predicted,
            deferred=deferred,
        )
        if not decision.profile:
            if claimed_drift:
                # The re-arm was moot for this launch (too small to
                # profile, nothing to select); let a later launch retry.
                self.drift.release(kernel_sig)
            if ranged_note:
                decision = policy.LaunchDecision(
                    profile=False,
                    variant_name=decision.variant_name,
                    reason=decision.reason + ranged_note,
                )
            result = self._launch_without_profiling(
                pool,
                launch,
                decision,
                stream_name=stream_name,
                work_range=work_range,
            )
            self._observe_drift(kernel_sig, result, workload_units)
            return result

        effective_mode = mode if mode is not None else pool.mode
        assert effective_mode is not None
        effective_flow = flow
        reason = decision.reason
        report: Optional[VerificationReport] = None
        if self.config.verify != "off":
            report = self.verifier.verify(
                pool,
                compute_units=self.device.spec.compute_units,
                overrides=VerifyOverrides(
                    atomics_race_free=override_side_effects
                ),
                device_kind=self.device.kind,
                settings=self.config.analyze,
            )
            gate = gate_launch(
                report, effective_mode, effective_flow, self.config.verify
            )
            if tracer.enabled:
                tracer.instant(
                    EventKind.GATE_DECISION,
                    kernel_sig,
                    self.engine.now,
                    requested=f"{effective_mode.value}_{effective_flow.value}",
                    resolved=f"{gate.mode.value}_{gate.flow.value}",
                    demoted=gate.demoted,
                    note=gate.note,
                )
            effective_mode, effective_flow = gate.mode, gate.flow
            if gate.note:
                reason += "; " + gate.note
        elif (
            flow is OrchestrationFlow.ASYNC
            and not effective_mode.supports_async
        ):
            # Pre-verifier fallback (verify="off"): Table 1's silent
            # swap → synchronous demotion.
            effective_flow = OrchestrationFlow.SYNC
            reason += "; swap mode forced synchronous flow"

        try:
            safe = safe_point_plan(
                profile_pool.variants,
                compute_units=self.device.spec.compute_units,
                workload_units=workload_units,
                multiplier=self.config.safe_point_multiplier,
            )
        except AnalysisError as exc:
            # The workload passed the small-workload policy yet cannot
            # host one fair slice (huge LCM of work assignment factors):
            # demote to profiling-off rather than failing the launch.
            planned = None
            note = f"safe point analysis infeasible ({exc})"
            self._warn_demotion(
                pool.name, f"{note}; demoted to profiling-off (pool default)"
            )
            if tracer.enabled:
                tracer.instant(
                    EventKind.PLAN_DEMOTION,
                    pool.name,
                    self.engine.now,
                    from_mode=effective_mode.value,
                    to="profiling-off",
                    error=str(exc),
                )
        else:
            planned = self._plan_with_demotion(
                profile_pool,
                effective_mode,
                effective_flow,
                launch,
                safe,
                report,
            )
        if planned is None:
            # Nothing profilable fits this launch: run the pool default
            # without profiling instead of failing the launch.
            if claimed_drift:
                self.drift.release(kernel_sig)
            note = (
                "profiling plan infeasible; demoted to profiling-off with "
                "the pool default"
            )
            return self._launch_without_profiling(
                pool,
                launch,
                policy.LaunchDecision(
                    profile=False,
                    variant_name=pool.initial_default,
                    reason=reason + "; " + note,
                ),
                stream_name=stream_name,
            )
        plan, effective_mode, effective_flow, demotion_note = planned
        if demotion_note:
            reason += "; " + demotion_note

        try:
            if effective_flow is OrchestrationFlow.SYNC:
                outcome = run_sync(
                    self.engine, profile_pool, plan, launch, self.config
                )
            else:
                outcome = run_async(
                    self.engine,
                    profile_pool,
                    plan,
                    launch,
                    self.config,
                    initial_variant=initial_variant,
                )
        except ProfilingFaultError as exc:
            if claimed_drift:
                self.drift.release(kernel_sig)
            return self._degrade_after_faults(
                kernel_sig, pool, launch, reason, exc, stream_name
            )
        self.cache.record(outcome.record)
        if outcome.faults:
            self._note_faults(kernel_sig, outcome.faults)
        assert outcome.record.selected is not None
        result = LaunchResult(
            kernel=kernel_sig,
            selected=outcome.record.selected,
            profiled=True,
            mode=effective_mode,
            flow=effective_flow,
            start_cycles=outcome.start_cycles,
            end_cycles=outcome.end_cycles,
            reason=reason,
            record=outcome.record,
            eager_chunks=outcome.eager_chunks,
            eager_units=outcome.eager_units,
            profiling_latency_cycles=outcome.profiling_latency_cycles,
        )
        if claimed_drift:
            episode = self.drift.complete(kernel_sig, result.selected)
            if episode is not None and tracer.enabled:
                tracer.instant(
                    EventKind.RESELECTION,
                    kernel_sig,
                    self.engine.now,
                    stale_variant=episode.stale_variant,
                    new_variant=result.selected,
                    reselected=episode.reselected,
                )
        if tracer.enabled:
            tracer.instant(
                EventKind.LAUNCH_END,
                kernel_sig,
                result.end_cycles,
                selected=result.selected,
                profiled=True,
                mode=effective_mode.value,
                flow=effective_flow.value,
                elapsed_cycles=result.elapsed_cycles,
                profiling_latency_cycles=result.profiling_latency_cycles,
                eager_chunks=result.eager_chunks,
                eager_units=result.eager_units,
                reason=reason,
            )
        return result

    def _plan_with_demotion(
        self,
        pool: VariantPool,
        mode: ProfilingMode,
        flow: OrchestrationFlow,
        launch: LaunchConfig,
        safe: SafePointPlan,
        report: Optional[VerificationReport],
    ) -> Optional[
        Tuple[ProfilingPlan, ProfilingMode, OrchestrationFlow, str]
    ]:
        """Lay out the profiling plan, demoting when it does not fit.

        The workload passed the small-workload policy, yet the fair slice
        from safe point analysis can still exceed what the launch has
        (fully-productive needs K slices; a huge LCM of work assignment
        factors can outgrow even one).  Raising here would fail a launch
        that plain execution handles fine, so instead:

        * fully-productive retries as hybrid (one shared slice, K−1
          sandboxes) when the verifier deems hybrid legal for this pool —
          or unconditionally when verification is off;
        * anything still infeasible demotes to profiling-off (``None``),
          and the caller runs the pool default.

        Every demotion warns (:class:`ProfilingDemotionWarning`) and is
        recorded in the trace and the launch reason — the gate's
        warn-level philosophy, applied to plan layout.
        """
        try:
            return plan_profiling(pool, mode, launch, safe), mode, flow, ""
        except ProfilingError as exc:
            first_error = exc

        note = f"profiling plan infeasible for {mode.value} ({first_error})"
        if mode is ProfilingMode.FULLY:
            hybrid_flow = flow
            legal = True
            if report is not None:
                if report.is_legal(ProfilingMode.HYBRID, flow):
                    pass
                elif report.is_legal(
                    ProfilingMode.HYBRID, OrchestrationFlow.SYNC
                ):
                    hybrid_flow = OrchestrationFlow.SYNC
                else:
                    legal = False
            if legal:
                try:
                    plan = plan_profiling(
                        pool, ProfilingMode.HYBRID, launch, safe
                    )
                except ProfilingError:
                    pass
                else:
                    demotion = f"{note}; demoted to hybrid"
                    self._warn_demotion(pool.name, demotion)
                    if self.tracer.enabled:
                        self.tracer.instant(
                            EventKind.PLAN_DEMOTION,
                            pool.name,
                            self.engine.now,
                            from_mode=mode.value,
                            to=f"hybrid_{hybrid_flow.value}",
                            error=str(first_error),
                        )
                    return plan, ProfilingMode.HYBRID, hybrid_flow, demotion

        self._warn_demotion(
            pool.name, f"{note}; demoted to profiling-off (pool default)"
        )
        if self.tracer.enabled:
            self.tracer.instant(
                EventKind.PLAN_DEMOTION,
                pool.name,
                self.engine.now,
                from_mode=mode.value,
                to="profiling-off",
                error=str(first_error),
            )
        return None

    def _warn_demotion(self, kernel: str, note: str) -> None:
        """Emit the profiling-demotion warning for one launch."""
        warnings.warn(
            f"kernel {kernel!r}: {note}. The launch continues; set a "
            "larger workload or a smaller safe_point_multiplier to keep "
            "profiling active.",
            ProfilingDemotionWarning,
            stacklevel=4,
        )

    # ------------------------------------------------------------------
    # Fault handling: quarantine filtering and the degradation ladder
    # ------------------------------------------------------------------

    def _active_pool(
        self, kernel_sig: str, pool: VariantPool
    ) -> VariantPool:
        """Filter quarantined variants out of the registered pool.

        A quarantined variant must not be profiled, selected eagerly, or
        replayed from a cached selection; barring it from the pool the
        policy sees covers all three (``policy.decide`` already evicts
        cached winners that are no longer in the pool).  Raises
        :class:`LaunchAbortedError` when every variant is barred —
        nothing can run until parole.
        """
        barred = self.quarantine.quarantined(kernel_sig)
        if not barred:
            return pool
        kept = tuple(v for v in pool.variants if v.name not in barred)
        if not kept:
            raise LaunchAbortedError(
                f"kernel {kernel_sig!r}: every variant is quarantined "
                f"({', '.join(barred)}); nothing can run until parole",
                kernel=kernel_sig,
                quarantined=barred,
            )
        key = (kernel_sig, barred)
        cached = self._restricted_pools.get(key)
        if cached is not None:
            return cached
        default = pool.initial_default
        if default in barred:
            default = kept[0].name
        restricted = VariantPool(
            spec=pool.spec,
            variants=kept,
            mode=pool.mode,
            initial_default=default,
        )
        self._restricted_pools[key] = restricted
        return restricted

    def _dominance_candidates(
        self, kernel_sig: str, pool: VariantPool
    ) -> Tuple[VariantPool, Tuple[str, ...]]:
        """The micro-profiling candidate pool after dominance pruning.

        With ``ReproConfig.analyze.dominance`` off (the default) the pool
        passes through untouched.  On, each variant's static cost
        interval (:mod:`repro.analyze.costbound`, per-unit bounds so the
        verdict holds for every workload size) is compared against the
        best upper bound; variants whose lower bound exceeds it by the
        safety margin are excluded from *profiling only* — the returned
        names never leave the correctness pool, so quarantine fallback,
        pinning, and differential testing still see them.  Composes with
        quarantine: ``pool`` here is already the quarantine-filtered
        active pool, and the cache key includes its variant names.
        """
        settings = self.config.analyze
        if not settings.dominance or len(pool.variants) <= 1:
            return pool, ()
        key = (kernel_sig, pool.variant_names)
        hit = self._dominance_pools.get(key)
        if hit is not None and hit[0] is pool:
            return hit[1], hit[2]
        verdict = pool_cost_bounds(
            pool,
            self.device.kind,
            policy=policy_from_settings(settings),
            margin=settings.dominance_margin,
        )
        pruned_pool, dominated = prune_pool(pool, verdict)
        self._dominance_pools[key] = (pool, pruned_pool, dominated)
        return pruned_pool, dominated

    def _note_faults(
        self, kernel_sig: str, faults: Sequence[FaultRecord]
    ) -> None:
        """Book observed faults into the quarantine ledger.

        Each record counts one strike against its variant; crossing the
        policy threshold quarantines it, emits a trace event, and fires
        the selection-invalidation hooks (a persisted selection pinning a
        now-quarantined variant must not be replayed).
        """
        for record in faults:
            newly = self.quarantine.note_fault(
                kernel_sig, record.variant, record.kind
            )
            if not newly:
                continue
            if self.tracer.enabled:
                self.tracer.instant(
                    EventKind.VARIANT_QUARANTINE,
                    record.variant,
                    self.engine.now,
                    kernel=kernel_sig,
                    fault_kind=record.kind,
                    fault_count=self.quarantine.fault_count(
                        kernel_sig, record.variant
                    ),
                )
            self._invalidate_selection(
                kernel_sig,
                f"variant {record.variant!r} quarantined after repeated "
                "faults",
            )

    def _degrade_after_faults(
        self,
        kernel_sig: str,
        pool: VariantPool,
        launch: LaunchConfig,
        reason: str,
        exc: ProfilingFaultError,
        stream_name: Optional[str],
    ) -> LaunchResult:
        """Profiling lost every candidate: degrade to a profiling-off run.

        The degraded run re-executes the *whole* workload (overwriting
        any garbage a corrupt candidate scribbled into productive slices)
        with the best remaining default: prefer variants that neither
        faulted in this launch nor sit in quarantine, then fall back to
        faulted-but-unquarantined ones.  When nothing remains the launch
        aborts with :class:`LaunchAbortedError`.
        """
        self._note_faults(kernel_sig, exc.faults)
        faulted = tuple(sorted({f.variant for f in exc.faults}))
        if self.tracer.enabled:
            self.tracer.instant(
                EventKind.LAUNCH_DEGRADED,
                kernel_sig,
                self.engine.now,
                faults=len(exc.faults),
                faulted=list(faulted),
                error=str(exc),
            )
        active = [
            name
            for name in pool.variant_names
            if not self.quarantine.is_quarantined(kernel_sig, name)
        ]
        if not active:
            raise LaunchAbortedError(
                f"kernel {kernel_sig!r}: profiling faulted on every "
                "candidate and no variant survives quarantine",
                kernel=kernel_sig,
                quarantined=self.quarantine.quarantined(kernel_sig),
                faulted=faulted,
            ) from exc
        clean = [name for name in active if name not in faulted]
        default = clean[0] if clean else active[0]
        note = (
            "profiling faulted on every candidate; degraded to "
            f"profiling-off with {default!r}"
        )
        self._warn_demotion(kernel_sig, note)
        return self._launch_without_profiling(
            pool,
            launch,
            policy.LaunchDecision(
                profile=False,
                variant_name=default,
                reason=reason + "; " + note,
            ),
            stream_name=stream_name,
        )

    def _launch_without_profiling(
        self,
        pool: VariantPool,
        launch: LaunchConfig,
        decision: policy.LaunchDecision,
        stream_name: Optional[str] = None,
        work_range: Optional[WorkRange] = None,
    ) -> LaunchResult:
        """Run the decided variant over the whole workload in one batch.

        ``work_range`` narrows the batch to a sub-range of units (the
        fleet scheduler's split parts); the default covers the whole
        workload.  With a fault injector installed the batch runs through
        the orchestrator's fallback chain: the decided variant first,
        then every non-quarantined sibling, until one finishes the whole
        range cleanly.  Exhausting the chain aborts the launch.
        """
        assert decision.variant_name is not None
        span = (
            work_range
            if work_range is not None
            else WorkRange(0, launch.workload_units)
        )
        start = self.engine.now
        selected = decision.variant_name
        reason = decision.reason
        task = None
        if self.engine.injector is None:
            variant = pool.variant(selected)
            if launch.workload_units > 0:
                task = self.engine.submit(
                    variant,
                    launch.args,
                    span,
                    priority=Priority.BATCH,
                    stream=stream_name,
                )
                self.engine.wait(task)
        elif launch.workload_units > 0:
            candidates = [selected] + [
                name
                for name in pool.variant_names
                if name != selected
                and not self.quarantine.is_quarantined(pool.name, name)
            ]
            faults: List[FaultRecord] = []
            try:
                completed = _run_batch_with_fallback(
                    self.engine,
                    pool,
                    candidates,
                    launch.args,
                    span,
                    self.config,
                    faults,
                    stage="batch",
                    priority=Priority.BATCH,
                    stream=stream_name,
                )
            except ProfilingFaultError as exc:
                self._note_faults(pool.name, exc.faults)
                raise LaunchAbortedError(
                    f"kernel {pool.name!r}: every runnable variant "
                    "faulted on the batch run",
                    kernel=pool.name,
                    quarantined=self.quarantine.quarantined(pool.name),
                    faulted=tuple(sorted({f.variant for f in exc.faults})),
                ) from exc
            self._note_faults(pool.name, faults)
            if completed is not None and completed != selected:
                reason += (
                    f"; default {selected!r} faulted, batch completed by "
                    f"{completed!r}"
                )
                selected = completed
        result = LaunchResult(
            kernel=pool.name,
            selected=selected,
            profiled=False,
            mode=None,
            flow=None,
            start_cycles=start,
            end_cycles=self.engine.now,
            reason=reason,
        )
        if self.tracer.enabled:
            if task is not None:
                self.tracer.task_span(
                    EventKind.REMAINDER_BATCH, selected, task
                )
            self.tracer.instant(
                EventKind.LAUNCH_END,
                pool.name,
                result.end_cycles,
                selected=result.selected,
                profiled=False,
                mode=None,
                flow=None,
                elapsed_cycles=result.elapsed_cycles,
                profiling_latency_cycles=0.0,
                eager_chunks=0,
                eager_units=0,
                reason=reason,
            )
        return result
