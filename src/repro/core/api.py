"""Paper-faithful functional facade over :class:`DySelRuntime`.

Figure 6 of the paper shows the runtime interface as two calls::

    DySelAddKernel(kernel_sig, implementation, wa_factor, sandbox_index=[])
    DySelLaunchKernel(kernel_sig, profiling=True, mode=fully_async)

:class:`DySelContext` reproduces that shape — including the combined
``mode`` argument that folds the productive profiling mode and the
sync/async flow into one enum-like string (``"fully_async"``,
``"hybrid_sync"``, ...) — on top of the object API.  New code should
prefer :class:`~repro.core.runtime.DySelRuntime`; this facade exists so
examples and tests can exercise the interface exactly as published.
"""

from __future__ import annotations

import difflib
from typing import Mapping, Optional, Sequence, Tuple

from ..device.base import Device
from ..errors import LaunchError, RegistrationError
from ..kernel.kernel import KernelSpec, KernelVariant
from ..kernel.signature import KernelSignature
from ..config import ReproConfig
from ..modes import OrchestrationFlow, ProfilingMode
from .runtime import DySelRuntime, LaunchResult

#: Accepted ``mode`` strings: productive mode × orchestration flow.
_MODE_TABLE = {
    "fully_sync": (ProfilingMode.FULLY, OrchestrationFlow.SYNC),
    "fully_async": (ProfilingMode.FULLY, OrchestrationFlow.ASYNC),
    "hybrid_sync": (ProfilingMode.HYBRID, OrchestrationFlow.SYNC),
    "hybrid_async": (ProfilingMode.HYBRID, OrchestrationFlow.ASYNC),
    "swap_sync": (ProfilingMode.SWAP, OrchestrationFlow.SYNC),
}


def parse_mode(mode: str) -> Tuple[ProfilingMode, OrchestrationFlow]:
    """Parse a combined mode string into (profiling mode, flow).

    Rejections are diagnostic, not generic: a structurally valid but
    illegal combination (``"swap_async"``) names the Table 1 rule it
    violates and the nearest legal mode; an unrecognized string suggests
    the closest accepted spelling.
    """
    try:
        return _MODE_TABLE[mode]
    except KeyError:
        pass
    modes = {m.value: m for m in ProfilingMode}
    flows = {f.value: f for f in OrchestrationFlow}
    parts = mode.rsplit("_", 1) if isinstance(mode, str) else []
    if len(parts) == 2 and parts[0] in modes and parts[1] in flows:
        profiling_mode, flow = modes[parts[0]], flows[parts[1]]
        assert (
            flow is OrchestrationFlow.ASYNC
            and not profiling_mode.supports_async
        )
        nearest = f"{profiling_mode.value}_{OrchestrationFlow.SYNC.value}"
        raise LaunchError(
            f"illegal mode {mode!r}: {profiling_mode.value}-based "
            "profiling cannot run asynchronously — every candidate "
            "writes a private output, so the final output space is "
            "unknown until profiling completes (paper Table 1, rule "
            f"DYSEL-ASYNC-001); nearest legal mode: {nearest!r}"
        )
    suggestions = difflib.get_close_matches(
        str(mode), sorted(_MODE_TABLE), n=1
    )
    did_you_mean = (
        f"; did you mean {suggestions[0]!r}?" if suggestions else ""
    )
    raise LaunchError(
        f"unknown mode {mode!r}; expected one of "
        f"{sorted(_MODE_TABLE)}{did_you_mean}"
    ) from None


class DySelContext:
    """One device's DySel runtime behind the paper's two-call interface."""

    def __init__(self, device: Device, config: Optional[ReproConfig] = None) -> None:
        self.runtime = DySelRuntime(device, config)

    def DySelAddKernel(  # noqa: N802 - paper-faithful name
        self,
        kernel_sig: KernelSignature,
        implementation: KernelVariant,
        wa_factor: Optional[int] = None,
        sandbox_index: Sequence[str] = (),
        initial_default: bool = False,
    ) -> None:
        """Register a kernel implementation (paper Fig 6a).

        ``wa_factor`` overrides the variant's work assignment factor;
        ``sandbox_index`` names the output arguments that sandboxing and
        swapping apply to (defaults to every declared output).
        """
        name = kernel_sig.name
        if name not in self.runtime.registry:
            self.runtime.declare_kernel(
                KernelSpec(
                    signature=kernel_sig,
                    sandbox_outputs=tuple(sandbox_index),
                )
            )
        elif sandbox_index:
            raise RegistrationError(
                f"kernel {name!r}: sandbox_index must be supplied with the "
                "first DySelAddKernel call for a signature"
            )
        if wa_factor is not None and wa_factor != implementation.wa_factor:
            import dataclasses

            implementation = dataclasses.replace(
                implementation, wa_factor=wa_factor
            )
        self.runtime.add_kernel(
            name, implementation, initial_default=initial_default
        )

    def DySelLaunchKernel(  # noqa: N802 - paper-faithful name
        self,
        kernel_sig: str,
        args: Mapping[str, object],
        workload_units: int,
        profiling: bool = True,
        mode: str = "fully_async",
        override_side_effects: bool = False,
    ) -> LaunchResult:
        """Launch a kernel (paper Fig 6b).

        ``override_side_effects`` is the paper's §3.4 programmer
        override: it asserts the kernel's global atomics are race-free
        across work-groups, so the verifier downgrades its conservative
        atomics findings and keeps fully/hybrid profiling available.
        """
        profiling_mode, flow = parse_mode(mode)
        return self.runtime.launch_kernel(
            kernel_sig,
            args,
            workload_units,
            profiling=profiling,
            mode=profiling_mode,
            flow=flow,
            override_side_effects=override_side_effects,
        )
