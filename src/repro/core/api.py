"""Paper-faithful functional facade over :class:`DySelRuntime`.

Figure 6 of the paper shows the runtime interface as two calls::

    DySelAddKernel(kernel_sig, implementation, wa_factor, sandbox_index=[])
    DySelLaunchKernel(kernel_sig, profiling=True, mode=fully_async)

:class:`DySelContext` reproduces that shape — including the combined
``mode`` argument that folds the productive profiling mode and the
sync/async flow into one enum-like string (``"fully_async"``,
``"hybrid_sync"``, ...) — on top of the object API.  New code should
prefer :class:`~repro.core.runtime.DySelRuntime`; this facade exists so
examples and tests can exercise the interface exactly as published.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Tuple

from ..device.base import Device
from ..errors import LaunchError, RegistrationError
from ..kernel.kernel import KernelSpec, KernelVariant
from ..kernel.signature import KernelSignature
from ..config import ReproConfig
from ..modes import OrchestrationFlow, ProfilingMode
from .runtime import DySelRuntime, LaunchResult

#: Accepted ``mode`` strings: productive mode × orchestration flow.
_MODE_TABLE = {
    "fully_sync": (ProfilingMode.FULLY, OrchestrationFlow.SYNC),
    "fully_async": (ProfilingMode.FULLY, OrchestrationFlow.ASYNC),
    "hybrid_sync": (ProfilingMode.HYBRID, OrchestrationFlow.SYNC),
    "hybrid_async": (ProfilingMode.HYBRID, OrchestrationFlow.ASYNC),
    "swap_sync": (ProfilingMode.SWAP, OrchestrationFlow.SYNC),
}


def parse_mode(mode: str) -> Tuple[ProfilingMode, OrchestrationFlow]:
    """Parse a combined mode string into (profiling mode, flow)."""
    try:
        return _MODE_TABLE[mode]
    except KeyError:
        raise LaunchError(
            f"unknown mode {mode!r}; expected one of {sorted(_MODE_TABLE)}"
        ) from None


class DySelContext:
    """One device's DySel runtime behind the paper's two-call interface."""

    def __init__(self, device: Device, config: Optional[ReproConfig] = None) -> None:
        self.runtime = DySelRuntime(device, config)

    def DySelAddKernel(  # noqa: N802 - paper-faithful name
        self,
        kernel_sig: KernelSignature,
        implementation: KernelVariant,
        wa_factor: Optional[int] = None,
        sandbox_index: Sequence[str] = (),
        initial_default: bool = False,
    ) -> None:
        """Register a kernel implementation (paper Fig 6a).

        ``wa_factor`` overrides the variant's work assignment factor;
        ``sandbox_index`` names the output arguments that sandboxing and
        swapping apply to (defaults to every declared output).
        """
        name = kernel_sig.name
        if name not in self.runtime.registry:
            self.runtime.declare_kernel(
                KernelSpec(
                    signature=kernel_sig,
                    sandbox_outputs=tuple(sandbox_index),
                )
            )
        elif sandbox_index:
            raise RegistrationError(
                f"kernel {name!r}: sandbox_index must be supplied with the "
                "first DySelAddKernel call for a signature"
            )
        if wa_factor is not None and wa_factor != implementation.wa_factor:
            import dataclasses

            implementation = dataclasses.replace(
                implementation, wa_factor=wa_factor
            )
        self.runtime.add_kernel(
            name, implementation, initial_default=initial_default
        )

    def DySelLaunchKernel(  # noqa: N802 - paper-faithful name
        self,
        kernel_sig: str,
        args: Mapping[str, object],
        workload_units: int,
        profiling: bool = True,
        mode: str = "fully_async",
    ) -> LaunchResult:
        """Launch a kernel (paper Fig 6b)."""
        profiling_mode, flow = parse_mode(mode)
        return self.runtime.launch_kernel(
            kernel_sig,
            args,
            workload_units,
            profiling=profiling,
            mode=profiling_mode,
            flow=flow,
        )
