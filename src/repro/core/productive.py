"""Productive profiling plans: the three modes of paper §2.2 / Fig 3.

A :class:`ProfilingPlan` decides, for one launch, which workload units
each candidate profiles and against which argument binding:

* **fully-productive** — candidate *i* profiles its own slice
  ``[i·S, (i+1)·S)`` of the real output; all K slices contribute; the
  remainder starts at ``K·S``.
* **hybrid partial-productive** — every candidate profiles the *same*
  slice ``[0, S)``; the first candidate binds the real output, the others
  bind sandboxes (≤ K−1 copies); the remainder starts at ``S``.
* **swap-based partial-productive** — every candidate profiles ``[0, S)``
  into a fully private output (≤ K copies); after selection the winner's
  private output is swapped in (a pointer swap on real hardware — no
  simulated cost) and the remainder starts at ``S``.

``S`` (``units_per_variant``) comes from safe point analysis, so slices
are aligned to every variant's work assignment factor and equal in units —
the fairness precondition for throughput comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..compiler.analyses.safe_point import SafePointPlan
from ..compiler.variants import VariantPool
from ..errors import ProfilingError
from ..kernel.buffers import Buffer
from ..kernel.kernel import KernelVariant, WorkRange
from ..kernel.launch import LaunchConfig
from ..modes import ProfilingMode
from .sandbox import SandboxAllocator, required_copies


@dataclass(frozen=True)
class ProfilingTask:
    """One candidate's micro-profiling execution."""

    variant: KernelVariant
    args: Mapping[str, object]
    units: WorkRange
    #: Whether this task's writes land in the final output.
    productive: bool
    #: Swap mode only: the candidate's private output buffers.
    private_outputs: Optional[Dict[str, Buffer]] = None


@dataclass
class ProfilingPlan:
    """Complete profiling layout for one launch."""

    mode: ProfilingMode
    tasks: Tuple[ProfilingTask, ...]
    remainder: WorkRange
    units_per_variant: int
    allocator: SandboxAllocator = field(default_factory=SandboxAllocator)

    @property
    def productive_task_count(self) -> int:
        """How many profiled slices contribute to the final output
        (Table 1: K for fully-productive, 1 for the partial modes).

        Swap mode marks no task productive up front — the winner's slice
        reaches the output only through :meth:`finalize` — but exactly one
        slice contributes in the end.
        """
        if self.mode is ProfilingMode.SWAP:
            return 1 if self.tasks else 0
        return sum(1 for task in self.tasks if task.productive)

    @property
    def extra_copies(self) -> int:
        """Sandbox/private copies allocated (Table 1's space column)."""
        return self.allocator.live_copies

    def task_for(self, variant_name: str) -> ProfilingTask:
        """Look up the profiling task of one candidate."""
        for task in self.tasks:
            if task.variant.name == variant_name:
                return task
        raise ProfilingError(f"no profiling task for variant {variant_name!r}")

    def finalize(self, winner_name: str, launch: LaunchConfig) -> None:
        """Commit profiling results after selection.

        In swap mode, installs the winner's private outputs as the final
        outputs (modeled as a pointer swap: no simulated time).  All
        sandbox/private copies are then released.
        """
        if self.mode is ProfilingMode.SWAP:
            task = self.task_for(winner_name)
            if task.private_outputs is None:
                raise ProfilingError(
                    f"swap-mode task for {winner_name!r} has no private "
                    "outputs"
                )
            self.allocator.swap_in(launch.output_buffers(), task.private_outputs)
        self.allocator.release_all()


def plan_profiling(
    pool: VariantPool,
    mode: ProfilingMode,
    launch: LaunchConfig,
    safe_plan: SafePointPlan,
) -> ProfilingPlan:
    """Lay out profiling tasks for a launch under the given mode."""
    span = safe_plan.units_per_variant
    total = launch.workload_units
    variants = pool.variants
    allocator = SandboxAllocator(max_copies=0)

    if mode is ProfilingMode.FULLY:
        needed = span * len(variants)
        if needed > total:
            raise ProfilingError(
                f"kernel {pool.name!r}: fully-productive profiling needs "
                f"{needed} units but the launch has {total}"
            )
        tasks = tuple(
            ProfilingTask(
                variant=variant,
                args=launch.args,
                units=WorkRange(i * span, (i + 1) * span),
                productive=True,
            )
            for i, variant in enumerate(variants)
        )
        remainder = WorkRange(needed, total)
        return ProfilingPlan(mode, tasks, remainder, span, allocator)

    if span > total:
        raise ProfilingError(
            f"kernel {pool.name!r}: profiling slice of {span} units exceeds "
            f"the launch's {total}"
        )
    shared = WorkRange(0, span)
    remainder = WorkRange(span, total)
    outputs = _sandboxed_outputs(pool, launch)
    # Enforce the Table 1 space bound: K−1 (hybrid) / K (swap) copies of
    # each sandboxed output, never more.
    allocator = SandboxAllocator(
        max_copies=required_copies(mode, len(variants)) * len(outputs)
    )

    if mode is ProfilingMode.HYBRID:
        tasks = []
        for i, variant in enumerate(variants):
            if i == 0:
                tasks.append(
                    ProfilingTask(variant, launch.args, shared, productive=True)
                )
            else:
                args = allocator.sandbox_args(
                    launch, outputs, label=f"sandbox.{variant.name}"
                )
                tasks.append(
                    ProfilingTask(variant, args, shared, productive=False)
                )
        return ProfilingPlan(mode, tuple(tasks), remainder, span, allocator)

    if mode is ProfilingMode.SWAP:
        tasks = []
        for variant in variants:
            privates = allocator.private_outputs(
                launch, outputs, label=f"private.{variant.name}"
            )
            args = dict(launch.with_args(dict(privates)).args)
            tasks.append(
                ProfilingTask(
                    variant,
                    args,
                    shared,
                    productive=False,
                    private_outputs=privates,
                )
            )
        return ProfilingPlan(mode, tuple(tasks), remainder, span, allocator)

    raise ProfilingError(f"unknown profiling mode {mode!r}")


def _sandboxed_outputs(
    pool: VariantPool, launch: LaunchConfig
) -> Dict[str, Buffer]:
    """Output buffers subject to sandbox/swap handling for this launch."""
    names = pool.spec.effective_sandbox_outputs
    if not names:
        raise ProfilingError(
            f"kernel {pool.name!r} declares no output buffers; partial "
            "productive profiling has nothing to sandbox"
        )
    outputs: Dict[str, Buffer] = {}
    for name in names:
        value = launch.args[name]
        assert isinstance(value, Buffer)
        outputs[name] = value
    return outputs
