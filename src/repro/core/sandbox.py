"""Sandbox and private-output management for partial productive profiling.

Hybrid-based profiling directs non-committing candidates' writes into
*sandboxes* — throwaway copies of the output buffers — so all candidates
can profile the same workload slice without corrupting the final output
(paper Fig 3b; at most K−1 copies).  Swap-based profiling gives *every*
candidate a private output and installs the winner's contents afterwards
(Fig 3c; at most K copies).

The paper notes the space requirement could shrink if profiling footprints
were predictable; :class:`SandboxAllocator` tracks allocated bytes so the
Table 1 space accounting is observable in tests and benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from ..errors import SandboxError
from ..kernel.buffers import Buffer
from ..kernel.launch import LaunchConfig


class SandboxAllocator:
    """Creates and accounts for sandbox / private-output buffers."""

    def __init__(self) -> None:
        self._allocated_bytes = 0
        self._live: List[Buffer] = []

    @property
    def allocated_bytes(self) -> int:
        """Total bytes allocated for sandboxes/private outputs so far."""
        return self._allocated_bytes

    @property
    def live_copies(self) -> int:
        """Number of copies currently alive."""
        return len(self._live)

    def sandbox_args(
        self, launch: LaunchConfig, outputs: Mapping[str, Buffer], label: str
    ) -> Dict[str, object]:
        """Argument mapping with the given outputs replaced by copies."""
        overrides: Dict[str, object] = {}
        for name, buffer in outputs.items():
            copy = buffer.sandbox_copy(label)
            self._allocated_bytes += copy.nbytes
            self._live.append(copy)
            overrides[name] = copy
        return dict(launch.with_args(overrides).args)

    def private_outputs(
        self, launch: LaunchConfig, outputs: Mapping[str, Buffer], label: str
    ) -> Dict[str, Buffer]:
        """Private copies of the outputs for one swap-mode candidate."""
        privates: Dict[str, Buffer] = {}
        for name, buffer in outputs.items():
            copy = buffer.sandbox_copy(label)
            self._allocated_bytes += copy.nbytes
            self._live.append(copy)
            privates[name] = copy
        return privates

    def swap_in(
        self, outputs: Mapping[str, Buffer], privates: Mapping[str, Buffer]
    ) -> None:
        """Install the winner's private outputs as the final outputs."""
        missing = set(outputs) - set(privates)
        if missing:
            raise SandboxError(
                f"winner has no private copy for outputs {sorted(missing)}"
            )
        for name, buffer in outputs.items():
            buffer.swap_contents(privates[name])

    def release_all(self) -> None:
        """Drop all live copies (profiling finished)."""
        self._live.clear()
