"""Sandbox and private-output management for partial productive profiling.

Hybrid-based profiling directs non-committing candidates' writes into
*sandboxes* — throwaway copies of the output buffers — so all candidates
can profile the same workload slice without corrupting the final output
(paper Fig 3b; at most K−1 copies).  Swap-based profiling gives *every*
candidate a private output and installs the winner's contents afterwards
(Fig 3c; at most K copies).

The paper notes the space requirement could shrink if profiling footprints
were predictable; :class:`SandboxAllocator` tracks allocated bytes so the
Table 1 space accounting is observable in tests and benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from ..errors import SandboxError
from ..kernel.buffers import Buffer
from ..kernel.launch import LaunchConfig
from ..modes import ProfilingMode


def required_copies(mode: ProfilingMode, num_variants: int) -> int:
    """Table 1's extra-space bound: output copies a mode needs for K variants.

    Fully-productive profiling needs none (all slices commit in place);
    hybrid sandboxes every non-committing candidate (K−1); swap gives every
    candidate a private output (K).  The pool verifier compares this bound
    against the declared sandbox index before any launch.
    """
    if num_variants < 0:
        raise SandboxError(f"num_variants must be >= 0, got {num_variants}")
    if mode is ProfilingMode.FULLY:
        return 0
    if mode is ProfilingMode.HYBRID:
        return max(0, num_variants - 1)
    return num_variants


class SandboxAllocator:
    """Creates and accounts for sandbox / private-output buffers.

    ``max_copies`` optionally enforces the Table 1 bound: exceeding it
    raises :class:`SandboxError` instead of silently over-allocating,
    which keeps the space accounting honest in tests and the verifier.
    """

    def __init__(self, max_copies: Optional[int] = None) -> None:
        if max_copies is not None and max_copies < 0:
            raise SandboxError(f"max_copies must be >= 0, got {max_copies}")
        self._allocated_bytes = 0
        self._live: List[Buffer] = []
        self._max_copies = max_copies

    @property
    def allocated_bytes(self) -> int:
        """Total bytes allocated for sandboxes/private outputs so far."""
        return self._allocated_bytes

    @property
    def live_copies(self) -> int:
        """Number of copies currently alive."""
        return len(self._live)

    def _track(self, copy: Buffer, label: str) -> None:
        """Register a live sandbox copy, enforcing the copy budget."""
        if (
            self._max_copies is not None
            and len(self._live) >= self._max_copies
        ):
            raise SandboxError(
                f"sandbox allocation {label!r} exceeds the declared "
                f"capacity of {self._max_copies} copies (Table 1 bound)"
            )
        self._allocated_bytes += copy.nbytes
        self._live.append(copy)

    def sandbox_args(
        self, launch: LaunchConfig, outputs: Mapping[str, Buffer], label: str
    ) -> Dict[str, object]:
        """Argument mapping with the given outputs replaced by copies."""
        overrides: Dict[str, object] = {}
        for name, buffer in outputs.items():
            copy = buffer.sandbox_copy(label)
            self._track(copy, label)
            overrides[name] = copy
        return dict(launch.with_args(overrides).args)

    def private_outputs(
        self, launch: LaunchConfig, outputs: Mapping[str, Buffer], label: str
    ) -> Dict[str, Buffer]:
        """Private copies of the outputs for one swap-mode candidate."""
        privates: Dict[str, Buffer] = {}
        for name, buffer in outputs.items():
            copy = buffer.sandbox_copy(label)
            self._track(copy, label)
            privates[name] = copy
        return privates

    def swap_in(
        self, outputs: Mapping[str, Buffer], privates: Mapping[str, Buffer]
    ) -> None:
        """Install the winner's private outputs as the final outputs."""
        missing = set(outputs) - set(privates)
        if missing:
            raise SandboxError(
                f"winner has no private copy for outputs {sorted(missing)}"
            )
        for name, buffer in outputs.items():
            buffer.swap_contents(privates[name])

    def release_all(self) -> None:
        """Drop all live copies (profiling finished)."""
        self._live.clear()
