"""Mixed execution: different variants on different workload partitions.

The paper's §4.1 notes that "a mixed version that applies different pure
versions on different partitions of computation could potentially
outperform the oracle" and leaves it as future work.  This module provides
that hook as an *experimental extension*: a :class:`MixedPlan` maps unit
ranges to variant names, built either by hand or from per-slice
micro-profiles (:func:`build_mixed_plan`), and
:func:`execute_mixed` runs it on an engine.

The mechanism pays off exactly when the workload is heterogeneous enough
that different slices have different best variants — e.g. a sparse matrix
whose top rows are dense (vector-friendly) and bottom rows are sparse
(scalar-friendly).  The extension benchmark
(``benchmarks/test_extension_mixed.py``) constructs such an input and
shows the mixed plan beating the best single pure version — the outcome
the paper anticipated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Tuple

from ..compiler.variants import VariantPool
from ..device.engine import ExecutionEngine, Priority, TaskHandle
from ..errors import ProfilingError
from ..kernel.kernel import WorkRange


@dataclass(frozen=True)
class MixedPlan:
    """A partition of the workload with one variant per segment."""

    #: (units, variant name) segments, contiguous and in order.
    segments: Tuple[Tuple[WorkRange, str], ...]

    def __post_init__(self) -> None:
        if not self.segments:
            raise ProfilingError("mixed plan needs at least one segment")
        cursor = self.segments[0][0].start
        for units, _name in self.segments:
            if units.start != cursor:
                raise ProfilingError(
                    f"mixed plan segments must be contiguous; gap at "
                    f"{cursor} -> {units.start}"
                )
            cursor = units.end

    @property
    def span(self) -> WorkRange:
        """The covered unit range."""
        return WorkRange(self.segments[0][0].start, self.segments[-1][0].end)

    def variant_for(self, unit: int) -> str:
        """The variant assigned to one unit."""
        for units, name in self.segments:
            if units.start <= unit < units.end:
                return name
        raise ProfilingError(f"unit {unit} outside the mixed plan's span")


def build_mixed_plan(
    pool: VariantPool,
    engine: ExecutionEngine,
    args: Mapping[str, object],
    workload_units: int,
    num_slices: int = 8,
) -> MixedPlan:
    """Profile every variant on every slice; assign each slice its winner.

    A straightforward realization of the paper's future-work idea: the
    workload is cut into ``num_slices`` aligned slices, each candidate is
    timed on each slice (productively — outputs are written and kept,
    since the last write per slice is the final state of deterministic
    kernels), and each slice gets its measured best variant.  Adjacent
    slices with the same winner are merged.
    """
    if num_slices < 1:
        raise ProfilingError("num_slices must be >= 1")
    base = pool.wa_lcm
    slice_units = max(base, (workload_units // num_slices) // base * base)

    boundaries: List[int] = list(range(0, workload_units, slice_units))
    winners: List[str] = []
    for start in boundaries:
        units = WorkRange(start, min(start + slice_units, workload_units))
        best_name: Optional[str] = None
        best_cycles = float("inf")
        for variant in pool.variants:
            task = engine.submit(
                variant, args, units, priority=Priority.PROFILING, measure=True
            )
            engine.wait(task)
            assert task.measured is not None
            if task.measured.measured_cycles < best_cycles:
                best_cycles = task.measured.measured_cycles
                best_name = variant.name
        assert best_name is not None
        winners.append(best_name)

    segments: List[Tuple[WorkRange, str]] = []
    for index, start in enumerate(boundaries):
        end = min(start + slice_units, workload_units)
        if segments and segments[-1][1] == winners[index]:
            previous, name = segments[-1]
            segments[-1] = (WorkRange(previous.start, end), name)
        else:
            segments.append((WorkRange(start, end), winners[index]))
    return MixedPlan(segments=tuple(segments))


def execute_mixed(
    plan: MixedPlan,
    pool: VariantPool,
    engine: ExecutionEngine,
    args: Mapping[str, object],
) -> List[TaskHandle]:
    """Run a mixed plan: one batch launch per segment."""
    tasks = [
        engine.submit(
            pool.variant(name), args, units, priority=Priority.BATCH
        )
        for units, name in plan.segments
    ]
    engine.wait_all(tasks)
    return tasks
