"""Orchestration flows: synchronous and asynchronous DySel (paper §2.4).

Both flows submit every candidate's micro-profile at PROFILING priority on
its own stream (concurrent profiling, §3.3) and finish by processing the
remaining workload with the winner.  They differ in what happens in
between:

* **sync** (Fig 4a) — a device barrier waits for the *slowest* candidate;
  execution units sit idle meanwhile (Fig 5a), so a pathological candidate
  inflates overhead (§5.1's sgemm case: 8% sync vs <5% async).
* **async** (Fig 4b) — eager execution starts immediately with the
  suggested initial default, dispatched in chunks at EAGER priority so
  profiling keeps precedence; each poll of profiling status costs host
  query latency, and the current best is updated as candidates finish
  (the ¹–» steps of Fig 4b).  On the GPU the query latency exceeds the
  micro-profile time, so few or zero eager chunks dispatch and async
  degenerates to sync — the §5.1 observation, reproduced mechanically.

Both flows are *hardened* against variant faults (:mod:`repro.faults`):
when the engine carries a fault injector, every submission runs behind
transient retries with capped backoff, waits carry hang deadlines, and a
candidate that crashes / corrupts / hangs is dropped from selection with
its productive slice queued for repair by a surviving variant.  When no
injector is installed the pre-hardening code paths run bit-for-bit
unchanged — clean launches pay nothing for the machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from ..compiler.variants import VariantPool
from ..config import ReproConfig
from ..device.engine import ExecutionEngine, Priority, TaskHandle
from ..device.stream import Stream
from ..errors import (
    ProfilingError,
    ProfilingFaultError,
    TransientDeviceFault,
    VariantFault,
)
from ..faults.plan import FaultRecord
from ..kernel.kernel import WorkRange
from ..kernel.launch import LaunchConfig
from ..modes import OrchestrationFlow
from ..obs.events import EventKind
from .productive import ProfilingPlan
from .selection import SelectionRecord, VariantMeasurement

#: Host cycles charged for comparing candidate times and updating the
#: selection (an atomic min plus bookkeeping).
SELECTION_COMPARE_CYCLES = 200.0

#: Eager chunks kept in flight during asynchronous profiling.  Small so a
#: selection update takes effect quickly; large enough to keep vacant
#: execution units fed between polls.
MAX_OUTSTANDING_EAGER_CHUNKS = 2


@dataclass
class OrchestrationResult:
    """Timing and selection outcome of one orchestrated launch."""

    record: SelectionRecord
    start_cycles: float
    profiling_done_cycles: float
    end_cycles: float
    eager_chunks: int = 0
    eager_units: int = 0
    #: Variant faults handled (and survived) during this launch.
    faults: Tuple[FaultRecord, ...] = ()
    #: Workload units re-run by a survivor after a productive-slice fault.
    repaired_units: int = 0

    @property
    def elapsed_cycles(self) -> float:
        """Wall time of the whole launch (profiling + remainder)."""
        return self.end_cycles - self.start_cycles

    @property
    def profiling_latency_cycles(self) -> float:
        """Time until the selection was final."""
        return self.profiling_done_cycles - self.start_cycles


def _note_fault(
    engine: ExecutionEngine,
    faults: List[FaultRecord],
    kernel: str,
    variant: str,
    kind: str,
    stage: str,
    attempts: int = 1,
    message: str = "",
) -> None:
    """Record one handled fault and emit its ``FAULT_INJECT`` event."""
    faults.append(
        FaultRecord(
            kernel=kernel,
            variant=variant,
            kind=kind,
            stage=stage,
            at_cycles=engine.now,
            attempts=attempts,
            message=message,
        )
    )
    if engine.tracer.enabled:
        engine.tracer.instant(
            EventKind.FAULT_INJECT,
            variant,
            engine.now,
            fault_kind=kind,
            stage=stage,
            attempts=attempts,
            message=message,
        )


def _note_fault_exc(
    engine: ExecutionEngine,
    faults: List[FaultRecord],
    kernel: str,
    exc: VariantFault,
    stage: str,
) -> None:
    """Record a raised :class:`VariantFault` (see :func:`_note_fault`)."""
    _note_fault(
        engine,
        faults,
        kernel,
        exc.variant,
        exc.kind or type(exc).__name__,
        stage,
        attempts=getattr(exc, "attempts", 1),
        message=str(exc),
    )


def _retry_transients(
    engine: ExecutionEngine,
    config: ReproConfig,
    variant_name: str,
    stage: str,
    submit: Callable[[], TaskHandle],
) -> TaskHandle:
    """Run ``submit`` with capped exponential backoff on transient faults.

    Retries up to ``config.faults.max_retries`` times, charging the
    backoff as host time between attempts (the host really sits in a
    retry loop).  A transient that outlives the retry budget re-raises
    with its attempt count attached; other faults propagate untouched.
    """
    attempts = 1
    while True:
        try:
            return submit()
        except TransientDeviceFault as exc:
            if attempts > config.faults.max_retries:
                exc.attempts = attempts  # type: ignore[attr-defined]
                raise
            backoff = config.faults.backoff_cycles(attempts)
            if engine.tracer.enabled:
                engine.tracer.instant(
                    EventKind.FAULT_RETRY,
                    variant_name,
                    engine.now,
                    stage=stage,
                    attempt=attempts,
                    backoff_cycles=backoff,
                )
            engine.host_compute(backoff)
            attempts += 1


def _submit_profiling(
    engine: ExecutionEngine,
    plan: ProfilingPlan,
    config: Optional[ReproConfig] = None,
    faults: Optional[List[FaultRecord]] = None,
    repairs: Optional[List[WorkRange]] = None,
    kernel: str = "",
) -> Dict[str, TaskHandle]:
    """Launch every candidate's micro-profile on its own stream.

    With fault bookkeeping supplied (hardened callers), a candidate whose
    submission faults permanently is skipped: its fault is recorded, and
    a productive slice it owned is queued for repair.  Returned handles
    may include hung tasks — callers must use deadline waits.
    """
    handles: Dict[str, TaskHandle] = {}
    for task in plan.tasks:
        stream = Stream(engine, f"profile.{task.variant.name}")

        def submit(task=task, stream=stream) -> TaskHandle:
            return stream.submit(
                task.variant,
                task.args,
                task.units,
                priority=Priority.PROFILING,
                measure=True,
            )

        if faults is None or config is None:
            handles[task.variant.name] = submit()
            continue
        try:
            handles[task.variant.name] = _retry_transients(
                engine, config, task.variant.name, "profile", submit
            )
        except VariantFault as exc:
            _note_fault_exc(engine, faults, kernel, exc, "profile")
            if task.productive and repairs is not None:
                repairs.append(task.units)
    return handles


def _run_batch_with_fallback(
    engine: ExecutionEngine,
    pool: VariantPool,
    candidates: List[str],
    args,
    units: WorkRange,
    config: ReproConfig,
    faults: List[FaultRecord],
    stage: str,
    priority: Priority = Priority.BATCH,
    stream: Optional[str] = None,
) -> Optional[str]:
    """Run a unit range to completion on the first candidate that can.

    The hardened batch primitive: each candidate gets transient retries
    and a hang deadline; a candidate that faults permanently hands the
    *whole* range to the next one (a corrupt attempt's garbage is simply
    overwritten by the successor).  Returns the completing variant's
    name; raises :class:`ProfilingFaultError` when every candidate
    fails — the caller decides whether that degrades or aborts the
    launch.
    """
    if units.empty:
        return None
    tracer = engine.tracer
    for name in candidates:
        variant = pool.variant(name)

        def submit(variant=variant) -> TaskHandle:
            return engine.submit(
                variant, args, units, priority=priority, stream=stream
            )

        try:
            task = _retry_transients(engine, config, name, stage, submit)
        except VariantFault as exc:
            _note_fault_exc(engine, faults, pool.name, exc, stage)
            continue
        deadline = engine.now + config.faults.hang_deadline_cycles
        if engine.wait_deadline(task, deadline):
            if tracer.enabled:
                tracer.task_span(EventKind.REMAINDER_BATCH, name, task)
            return name
        engine.cancel(task)
        _note_fault(
            engine,
            faults,
            pool.name,
            name,
            "hang",
            stage,
            message=f"task exceeded the {stage} hang deadline",
        )
    raise ProfilingFaultError(
        f"kernel {pool.name!r}: no candidate could complete the {stage} "
        f"range {units} (tried {candidates})",
        faults=tuple(faults),
    )


def _measurement(
    plan: ProfilingPlan, name: str, handle: TaskHandle
) -> VariantMeasurement:
    """Build a measurement from one finished profiling task."""
    if handle.measured is None:
        raise ProfilingError(
            f"profiling task for {name!r} finished without a measurement"
        )
    task = plan.task_for(name)
    return VariantMeasurement(
        variant=name,
        measured_cycles=handle.measured.measured_cycles,
        profiled_units=len(task.units),
        productive=task.productive,
    )


def run_sync(
    engine: ExecutionEngine,
    pool: VariantPool,
    plan: ProfilingPlan,
    launch: LaunchConfig,
    config: ReproConfig,
) -> OrchestrationResult:
    """Synchronous flow: profile, barrier, select, batch the remainder.

    With a fault injector installed the flow hardens: faulted candidates
    drop out of selection, their productive slices are repaired by a
    survivor, and hung candidates are cancelled at the hang deadline.
    Zero survivors raises :class:`ProfilingFaultError` (sandboxes
    released first) so the runtime can degrade the launch.
    """
    start = engine.now
    tracer = engine.tracer
    hardened = engine.injector is not None
    record = SelectionRecord(
        kernel=pool.name,
        mode=plan.mode,
        flow=OrchestrationFlow.SYNC,
        variant_order=pool.variant_names,
    )
    faults: List[FaultRecord] = []
    repairs: List[WorkRange] = []
    if not hardened:
        handles = _submit_profiling(engine, plan)
        engine.wait_all(list(handles.values()))
    else:
        handles = _submit_profiling(
            engine, plan, config, faults, repairs, kernel=pool.name
        )
        deadline = engine.now + config.faults.hang_deadline_cycles
        for name in list(handles):
            if engine.wait_deadline(handles[name], deadline):
                continue
            engine.cancel(handles.pop(name))
            _note_fault(
                engine,
                faults,
                pool.name,
                name,
                "hang",
                "profile",
                message="micro-profile exceeded the hang deadline",
            )
            task = plan.task_for(name)
            if task.productive:
                repairs.append(task.units)
        if not handles:
            plan.allocator.release_all()
            raise ProfilingFaultError(
                f"kernel {pool.name!r}: every profiling candidate faulted "
                "in the synchronous flow",
                faults=tuple(faults),
            )
    for name, handle in handles.items():
        engine.host_compute(SELECTION_COMPARE_CYCLES)
        measurement = _measurement(plan, name, handle)
        record.observe(measurement)
        if tracer.enabled:
            tracer.task_span(
                EventKind.PROFILE_SPAN,
                name,
                handle,
                productive=measurement.productive,
                measured_cycles=measurement.measured_cycles,
            )
            tracer.instant(
                EventKind.SELECTION_UPDATE,
                name,
                engine.now,
                selected=record.selected,
                measured_cycles=measurement.measured_cycles,
            )
    assert record.selected is not None
    plan.finalize(record.selected, launch)
    profiling_done = engine.now

    winner = pool.variant(record.selected)
    if not hardened:
        if not plan.remainder.empty:
            remainder_task = engine.submit(
                winner, launch.args, plan.remainder, priority=Priority.BATCH
            )
            engine.wait(remainder_task)
            if tracer.enabled:
                tracer.task_span(
                    EventKind.REMAINDER_BATCH, winner.name, remainder_task
                )
        return OrchestrationResult(
            record=record,
            start_cycles=start,
            profiling_done_cycles=profiling_done,
            end_cycles=engine.now,
        )

    faulty = {fault.variant for fault in faults}
    candidates = [record.selected] + [
        name
        for name in pool.variant_names
        if name != record.selected and name not in faulty
    ]
    repaired_units = 0
    for units in repairs:
        _run_batch_with_fallback(
            engine, pool, candidates, launch.args, units, config, faults,
            stage="repair",
        )
        repaired_units += len(units)
    if not plan.remainder.empty:
        _run_batch_with_fallback(
            engine, pool, candidates, launch.args, plan.remainder, config,
            faults, stage="remainder",
        )
    return OrchestrationResult(
        record=record,
        start_cycles=start,
        profiling_done_cycles=profiling_done,
        end_cycles=engine.now,
        faults=tuple(faults),
        repaired_units=repaired_units,
    )


def run_async(
    engine: ExecutionEngine,
    pool: VariantPool,
    plan: ProfilingPlan,
    launch: LaunchConfig,
    config: ReproConfig,
    initial_variant: Optional[str] = None,
) -> OrchestrationResult:
    """Asynchronous flow: eager chunks with the current best meanwhile.

    ``initial_variant`` overrides the pool's suggested default — the knob
    the evaluation varies between "best initial selection" and "worst
    initial selection".
    """
    if not plan.mode.supports_async:
        raise ProfilingError(
            f"profiling mode {plan.mode.value!r} cannot run asynchronously: "
            "the final output space is unknown until profiling completes "
            "(paper Table 1, rule DYSEL-ASYNC-001); the launch gate should "
            "have demoted or refused this flow"
        )
    start = engine.now
    tracer = engine.tracer
    hardened = engine.injector is not None
    record = SelectionRecord(
        kernel=pool.name,
        mode=plan.mode,
        flow=OrchestrationFlow.ASYNC,
        variant_order=pool.variant_names,
    )
    faults: List[FaultRecord] = []
    repairs: List[WorkRange] = []
    if not hardened:
        handles = _submit_profiling(engine, plan)
    else:
        handles = _submit_profiling(
            engine, plan, config, faults, repairs, kernel=pool.name
        )
        if not handles:
            plan.allocator.release_all()
            raise ProfilingFaultError(
                f"kernel {pool.name!r}: every profiling candidate faulted "
                "at submission in the asynchronous flow",
                faults=tuple(faults),
            )
    #: Variants that faulted this launch; barred from eager dispatch.
    blocklist: Set[str] = {fault.variant for fault in faults}

    current_best = initial_variant or pool.initial_default
    assert current_best is not None
    pool.variant(current_best)  # validate the name early

    base = pool.wa_lcm
    chunk_units = max(
        base,
        (
            config.eager_chunk_units
            * engine.device.spec.compute_units
            * base
        ),
    )

    deadline = (
        engine.now + config.faults.hang_deadline_cycles
        if hardened
        else float("inf")
    )
    remaining = plan.remainder
    eager_chunks = 0
    eager_units = 0
    eager_tasks: List[tuple] = []
    outstanding: List[TaskHandle] = []
    pending: List[str] = [name for name in handles]
    while pending:
        if engine.now > deadline:
            # Whatever is still pending is hung (or starved behind a
            # hang): cancel it, queue productive slices for repair, and
            # select from the candidates that did finish.
            for name in pending:
                engine.cancel(handles[name])
                _note_fault(
                    engine,
                    faults,
                    pool.name,
                    name,
                    "hang",
                    "profile",
                    message="micro-profile exceeded the hang deadline",
                )
                blocklist.add(name)
                task = plan.task_for(name)
                if task.productive:
                    repairs.append(task.units)
            pending = []
            break
        finished_now: List[str] = []
        for name in pending:
            if engine.poll(handles[name]):
                finished_now.append(name)
        for name in finished_now:
            pending.remove(name)
            engine.host_compute(SELECTION_COMPARE_CYCLES)
            measurement = _measurement(plan, name, handles[name])
            record.observe(measurement)
            assert record.selected is not None
            current_best = record.selected
            if tracer.enabled:
                tracer.task_span(
                    EventKind.PROFILE_SPAN,
                    name,
                    handles[name],
                    productive=measurement.productive,
                    measured_cycles=measurement.measured_cycles,
                )
                tracer.instant(
                    EventKind.SELECTION_UPDATE,
                    name,
                    engine.now,
                    selected=record.selected,
                    measured_cycles=measurement.measured_cycles,
                )
        # Eager dispatch is paced: keep a small number of chunks in
        # flight so the workload can switch to a better variant as soon
        # as profiling finds one (paper §2.4's "careful workload
        # management").  Completion of eager chunks is piggybacked on the
        # profiling polls already paid for above.
        outstanding = [
            task
            for task in outstanding
            if not (task.finished and task.last_end <= engine.now)
        ]
        eager_best = current_best
        if eager_best in blocklist:
            eager_best = next(
                (n for n in pool.variant_names if n not in blocklist), None
            )
        if (
            pending
            and eager_best is not None
            and not remaining.empty
            and len(outstanding) < MAX_OUTSTANDING_EAGER_CHUNKS
        ):
            chunk, rest = remaining.take(chunk_units)
            eager_variant = pool.variant(eager_best)

            def submit_eager(
                eager_variant=eager_variant, chunk=chunk
            ) -> TaskHandle:
                return engine.submit(
                    eager_variant,
                    launch.args,
                    chunk,
                    priority=Priority.EAGER,
                )

            if not hardened:
                task = submit_eager()
            else:
                try:
                    task = _retry_transients(
                        engine, config, eager_best, "eager", submit_eager
                    )
                except VariantFault as exc:
                    # Chunk untouched (or overwritten later): leave it at
                    # the head of ``remaining`` for another variant.
                    _note_fault_exc(engine, faults, pool.name, exc, "eager")
                    blocklist.add(eager_best)
                    continue
            remaining = rest
            outstanding.append(task)
            eager_tasks.append((eager_chunks, eager_best, task))
            eager_chunks += 1
            eager_units += len(chunk)

    if record.selected is None:
        plan.allocator.release_all()
        raise ProfilingFaultError(
            f"kernel {pool.name!r}: every profiling candidate faulted in "
            "the asynchronous flow",
            faults=tuple(faults),
        )
    plan.finalize(record.selected, launch)
    profiling_done = engine.now

    remainder_task = None
    if not hardened:
        if not remaining.empty:
            remainder_task = engine.submit(
                pool.variant(record.selected),
                launch.args,
                remaining,
                priority=Priority.BATCH,
            )
            engine.wait(remainder_task)
    else:
        candidates = [record.selected] + [
            name
            for name in pool.variant_names
            if name != record.selected and name not in blocklist
        ]
        if not remaining.empty:
            _run_batch_with_fallback(
                engine, pool, candidates, launch.args, remaining, config,
                faults, stage="remainder",
            )
    engine.barrier()
    repaired_units = 0
    if hardened:
        # A hung eager chunk survives the barrier (it was never
        # scheduled): cancel it and repair its range, which the winner
        # re-runs below.
        for index, variant_name, task in list(eager_tasks):
            if task.finished:
                continue
            engine.cancel(task)
            _note_fault(
                engine,
                faults,
                pool.name,
                variant_name,
                "hang",
                "eager",
                message=f"eager chunk {index} never completed",
            )
            blocklist.add(variant_name)
            eager_tasks = [t for t in eager_tasks if t[2] is not task]
            eager_chunks -= 1
            eager_units -= len(task.units)
            repairs.append(task.units)
        candidates = [record.selected] + [
            name
            for name in pool.variant_names
            if name != record.selected and name not in blocklist
        ]
        for units in repairs:
            _run_batch_with_fallback(
                engine, pool, candidates, launch.args, units, config,
                faults, stage="repair",
            )
            repaired_units += len(units)
    if tracer.enabled:
        # Eager chunks finish out of order with profiling polls; after
        # the barrier every handle is final, so their spans are exact.
        for index, variant_name, task in eager_tasks:
            tracer.task_span(
                EventKind.EAGER_CHUNK,
                variant_name,
                task,
                chunk_index=index,
            )
        if remainder_task is not None:
            tracer.task_span(
                EventKind.REMAINDER_BATCH,
                record.selected,
                remainder_task,
            )
    return OrchestrationResult(
        record=record,
        start_cycles=start,
        profiling_done_cycles=profiling_done,
        end_cycles=engine.now,
        eager_chunks=eager_chunks,
        eager_units=eager_units,
        faults=tuple(faults),
        repaired_units=repaired_units,
    )
