"""Orchestration flows: synchronous and asynchronous DySel (paper §2.4).

Both flows submit every candidate's micro-profile at PROFILING priority on
its own stream (concurrent profiling, §3.3) and finish by processing the
remaining workload with the winner.  They differ in what happens in
between:

* **sync** (Fig 4a) — a device barrier waits for the *slowest* candidate;
  execution units sit idle meanwhile (Fig 5a), so a pathological candidate
  inflates overhead (§5.1's sgemm case: 8% sync vs <5% async).
* **async** (Fig 4b) — eager execution starts immediately with the
  suggested initial default, dispatched in chunks at EAGER priority so
  profiling keeps precedence; each poll of profiling status costs host
  query latency, and the current best is updated as candidates finish
  (the ¹–» steps of Fig 4b).  On the GPU the query latency exceeds the
  micro-profile time, so few or zero eager chunks dispatch and async
  degenerates to sync — the §5.1 observation, reproduced mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..compiler.analyses.safe_point import lcm_of
from ..compiler.variants import VariantPool
from ..config import ReproConfig
from ..device.engine import ExecutionEngine, Priority, TaskHandle
from ..device.stream import Stream
from ..errors import ProfilingError
from ..kernel.launch import LaunchConfig
from ..modes import OrchestrationFlow
from ..obs.events import EventKind
from .productive import ProfilingPlan
from .selection import SelectionRecord, VariantMeasurement

#: Host cycles charged for comparing candidate times and updating the
#: selection (an atomic min plus bookkeeping).
SELECTION_COMPARE_CYCLES = 200.0

#: Eager chunks kept in flight during asynchronous profiling.  Small so a
#: selection update takes effect quickly; large enough to keep vacant
#: execution units fed between polls.
MAX_OUTSTANDING_EAGER_CHUNKS = 2


@dataclass
class OrchestrationResult:
    """Timing and selection outcome of one orchestrated launch."""

    record: SelectionRecord
    start_cycles: float
    profiling_done_cycles: float
    end_cycles: float
    eager_chunks: int = 0
    eager_units: int = 0

    @property
    def elapsed_cycles(self) -> float:
        """Wall time of the whole launch (profiling + remainder)."""
        return self.end_cycles - self.start_cycles

    @property
    def profiling_latency_cycles(self) -> float:
        """Time until the selection was final."""
        return self.profiling_done_cycles - self.start_cycles


def _submit_profiling(
    engine: ExecutionEngine, plan: ProfilingPlan
) -> Dict[str, TaskHandle]:
    """Launch every candidate's micro-profile on its own stream."""
    handles: Dict[str, TaskHandle] = {}
    for task in plan.tasks:
        stream = Stream(engine, f"profile.{task.variant.name}")
        handles[task.variant.name] = stream.submit(
            task.variant,
            task.args,
            task.units,
            priority=Priority.PROFILING,
            measure=True,
        )
    return handles


def _measurement(
    plan: ProfilingPlan, name: str, handle: TaskHandle
) -> VariantMeasurement:
    """Build a measurement from one finished profiling task."""
    if handle.measured is None:
        raise ProfilingError(
            f"profiling task for {name!r} finished without a measurement"
        )
    task = plan.task_for(name)
    return VariantMeasurement(
        variant=name,
        measured_cycles=handle.measured.measured_cycles,
        profiled_units=len(task.units),
        productive=task.productive,
    )


def run_sync(
    engine: ExecutionEngine,
    pool: VariantPool,
    plan: ProfilingPlan,
    launch: LaunchConfig,
    config: ReproConfig,
) -> OrchestrationResult:
    """Synchronous flow: profile, barrier, select, batch the remainder."""
    start = engine.now
    tracer = engine.tracer
    record = SelectionRecord(
        kernel=pool.name,
        mode=plan.mode,
        flow=OrchestrationFlow.SYNC,
        variant_order=pool.variant_names,
    )
    handles = _submit_profiling(engine, plan)
    engine.wait_all(list(handles.values()))
    for name, handle in handles.items():
        engine.host_compute(SELECTION_COMPARE_CYCLES)
        measurement = _measurement(plan, name, handle)
        record.observe(measurement)
        if tracer.enabled:
            tracer.task_span(
                EventKind.PROFILE_SPAN,
                name,
                handle,
                productive=measurement.productive,
                measured_cycles=measurement.measured_cycles,
            )
            tracer.instant(
                EventKind.SELECTION_UPDATE,
                name,
                engine.now,
                selected=record.selected,
                measured_cycles=measurement.measured_cycles,
            )
    assert record.selected is not None
    plan.finalize(record.selected, launch)
    profiling_done = engine.now

    winner = pool.variant(record.selected)
    if not plan.remainder.empty:
        remainder_task = engine.submit(
            winner, launch.args, plan.remainder, priority=Priority.BATCH
        )
        engine.wait(remainder_task)
        if tracer.enabled:
            tracer.task_span(
                EventKind.REMAINDER_BATCH, winner.name, remainder_task
            )
    return OrchestrationResult(
        record=record,
        start_cycles=start,
        profiling_done_cycles=profiling_done,
        end_cycles=engine.now,
    )


def run_async(
    engine: ExecutionEngine,
    pool: VariantPool,
    plan: ProfilingPlan,
    launch: LaunchConfig,
    config: ReproConfig,
    initial_variant: Optional[str] = None,
) -> OrchestrationResult:
    """Asynchronous flow: eager chunks with the current best meanwhile.

    ``initial_variant`` overrides the pool's suggested default — the knob
    the evaluation varies between "best initial selection" and "worst
    initial selection".
    """
    if not plan.mode.supports_async:
        raise ProfilingError(
            f"profiling mode {plan.mode.value!r} cannot run asynchronously: "
            "the final output space is unknown until profiling completes "
            "(paper Table 1, rule DYSEL-ASYNC-001); the launch gate should "
            "have demoted or refused this flow"
        )
    start = engine.now
    tracer = engine.tracer
    record = SelectionRecord(
        kernel=pool.name,
        mode=plan.mode,
        flow=OrchestrationFlow.ASYNC,
        variant_order=pool.variant_names,
    )
    handles = _submit_profiling(engine, plan)

    current_best = initial_variant or pool.initial_default
    assert current_best is not None
    pool.variant(current_best)  # validate the name early

    base = lcm_of([variant.wa_factor for variant in pool.variants])
    chunk_units = max(
        base,
        (
            config.eager_chunk_units
            * engine.device.spec.compute_units
            * base
        ),
    )

    remaining = plan.remainder
    eager_chunks = 0
    eager_units = 0
    eager_tasks: List[tuple] = []
    outstanding: List[TaskHandle] = []
    pending: List[str] = [name for name in handles]
    while pending:
        finished_now: List[str] = []
        for name in pending:
            if engine.poll(handles[name]):
                finished_now.append(name)
        for name in finished_now:
            pending.remove(name)
            engine.host_compute(SELECTION_COMPARE_CYCLES)
            measurement = _measurement(plan, name, handles[name])
            record.observe(measurement)
            assert record.selected is not None
            current_best = record.selected
            if tracer.enabled:
                tracer.task_span(
                    EventKind.PROFILE_SPAN,
                    name,
                    handles[name],
                    productive=measurement.productive,
                    measured_cycles=measurement.measured_cycles,
                )
                tracer.instant(
                    EventKind.SELECTION_UPDATE,
                    name,
                    engine.now,
                    selected=record.selected,
                    measured_cycles=measurement.measured_cycles,
                )
        # Eager dispatch is paced: keep a small number of chunks in
        # flight so the workload can switch to a better variant as soon
        # as profiling finds one (paper §2.4's "careful workload
        # management").  Completion of eager chunks is piggybacked on the
        # profiling polls already paid for above.
        outstanding = [
            task
            for task in outstanding
            if not (task.finished and task.last_end <= engine.now)
        ]
        if (
            pending
            and not remaining.empty
            and len(outstanding) < MAX_OUTSTANDING_EAGER_CHUNKS
        ):
            chunk, remaining = remaining.take(chunk_units)
            task = engine.submit(
                pool.variant(current_best),
                launch.args,
                chunk,
                priority=Priority.EAGER,
            )
            outstanding.append(task)
            eager_tasks.append((eager_chunks, current_best, task))
            eager_chunks += 1
            eager_units += len(chunk)

    assert record.selected is not None
    plan.finalize(record.selected, launch)
    profiling_done = engine.now

    remainder_task = None
    if not remaining.empty:
        remainder_task = engine.submit(
            pool.variant(record.selected),
            launch.args,
            remaining,
            priority=Priority.BATCH,
        )
        engine.wait(remainder_task)
    engine.barrier()
    if tracer.enabled:
        # Eager chunks finish out of order with profiling polls; after
        # the barrier every handle is final, so their spans are exact.
        for index, variant_name, task in eager_tasks:
            tracer.task_span(
                EventKind.EAGER_CHUNK,
                variant_name,
                task,
                chunk_index=index,
            )
        if remainder_task is not None:
            tracer.task_span(
                EventKind.REMAINDER_BATCH,
                record.selected,
                remainder_task,
            )
    return OrchestrationResult(
        record=record,
        start_cycles=start,
        profiling_done_cycles=profiling_done,
        end_cycles=engine.now,
        eager_chunks=eager_chunks,
        eager_units=eager_units,
    )
