"""Selection records and the cross-launch selection cache.

Micro-profiling yields one measured interval per candidate; the selection
logic simply keeps the minimum (the paper's CPU runtime updates the
current best with an atomic min, §3.2; the GPU code does it with
``atomicMin`` on cycle counts, Fig 7).  A :class:`SelectionRecord`
preserves the full comparison for reporting.

Iterative applications (stencil in PDE solvers, spmv in CG) launch the
same kernel repeatedly without changing the workload shape; the
*profiling activation flag* lets them profile only the first iteration
(paper §3.1).  :class:`SelectionCache` stores the chosen variant per
kernel signature so later launches reuse it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..errors import ProfilingError
from ..modes import OrchestrationFlow, ProfilingMode


@dataclass(frozen=True)
class VariantMeasurement:
    """One candidate's micro-profiling observation."""

    variant: str
    measured_cycles: float
    profiled_units: int
    productive: bool

    @property
    def cycles_per_unit(self) -> float:
        """Throughput-normalized measurement (equal units by safe point
        analysis, so ordering matches raw cycles; exposed for reports)."""
        if self.profiled_units <= 0:
            return float("inf")
        return self.measured_cycles / self.profiled_units


#: Default bound on how many measurements one record retains.  A pool has
#: at most a handful of variants, so the bound never binds for one-shot
#: launches; it exists for long-running serving processes that fold many
#: re-profiles into one record and must not grow memory per launch.
DEFAULT_HISTORY_LIMIT = 64


@dataclass
class SelectionRecord:
    """Outcome of one micro-profiled launch."""

    kernel: str
    mode: ProfilingMode
    flow: OrchestrationFlow
    measurements: Tuple[VariantMeasurement, ...] = ()
    selected: Optional[str] = None
    #: Variant names in pool registration order, used to break ties.  An
    #: empty tuple (legacy callers) falls back to first-observed-wins.
    variant_order: Tuple[str, ...] = ()
    #: Ring-buffer capacity for ``measurements``: observing beyond this
    #: bound drops the oldest entries (the best-backing one is pinned).
    history_limit: int = DEFAULT_HISTORY_LIMIT

    def observe(self, measurement: VariantMeasurement) -> None:
        """Fold in one candidate's measurement, keeping the running best.

        Mirrors the atomic-min update of the reference implementation:
        the first observation seeds the best; later ones replace it only
        when strictly faster.  Exact ties are broken by *registration
        order* (earliest-registered variant wins), not observation order:
        in the asynchronous flow, which candidate's poll completes first
        is scheduling-dependent, and the quantized timer makes exact ties
        common — a first-observed-wins rule would make the selection
        nondeterministic across otherwise identical runs.

        History is ring-buffered at ``history_limit`` entries: once the
        bound is reached the oldest measurements are dropped first, except
        the one backing the current selection, which is always retained so
        :meth:`best_measurement` keeps working.  Long-running serving
        processes re-profile the same kernel indefinitely; without the cap
        every launch would grow this record.
        """
        self.measurements = self.measurements + (measurement,)
        if self.selected is None:
            self.selected = measurement.variant
        else:
            current = self.best_measurement()
            if measurement.measured_cycles < current.measured_cycles:
                self.selected = measurement.variant
            elif measurement.measured_cycles == current.measured_cycles and (
                self._order_index(measurement.variant)
                < self._order_index(current.variant)
            ):
                self.selected = measurement.variant
        self._trim_history()

    def _trim_history(self) -> None:
        """Enforce ``history_limit``, pinning the best-backing entry."""
        limit = max(1, self.history_limit)
        if len(self.measurements) <= limit:
            return
        keep = self.best_measurement()
        kept: list = []
        overflow = len(self.measurements) - limit
        for measurement in self.measurements:
            if overflow > 0 and measurement is not keep:
                overflow -= 1
                continue
            kept.append(measurement)
        self.measurements = tuple(kept)

    def _order_index(self, variant: str) -> int:
        """Registration rank of a variant (unknown names rank last)."""
        try:
            return self.variant_order.index(variant)
        except ValueError:
            return len(self.variant_order)

    def best_measurement(self) -> VariantMeasurement:
        """The measurement backing the current selection."""
        if self.selected is None:
            raise ProfilingError(
                f"kernel {self.kernel!r}: no measurements observed"
            )
        for measurement in self.measurements:
            if measurement.variant == self.selected:
                return measurement
        raise ProfilingError(
            f"kernel {self.kernel!r}: selection {self.selected!r} has no "
            "measurement"
        )

    def ranking(self) -> Tuple[VariantMeasurement, ...]:
        """Measurements sorted fastest first."""
        return tuple(
            sorted(self.measurements, key=lambda m: m.measured_cycles)
        )


@dataclass
class SelectionCache:
    """Chosen variant per kernel signature, across launches."""

    _records: Dict[str, SelectionRecord] = field(default_factory=dict)

    def record(self, record: SelectionRecord) -> None:
        """Store (or overwrite) the selection for a kernel."""
        if record.selected is None:
            raise ProfilingError(
                f"kernel {record.kernel!r}: cannot cache an empty selection"
            )
        self._records[record.kernel] = record

    def lookup(self, kernel: str) -> Optional[SelectionRecord]:
        """The cached selection, or None if this kernel never profiled."""
        return self._records.get(kernel)

    def invalidate(self, kernel: str) -> None:
        """Forget a cached selection (workload shape changed)."""
        self._records.pop(kernel, None)

    def __contains__(self, kernel: str) -> bool:
        return kernel in self._records
