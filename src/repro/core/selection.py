"""Selection records and the cross-launch selection cache.

Micro-profiling yields one measured interval per candidate; the selection
logic simply keeps the minimum (the paper's CPU runtime updates the
current best with an atomic min, §3.2; the GPU code does it with
``atomicMin`` on cycle counts, Fig 7).  A :class:`SelectionRecord`
preserves the full comparison for reporting.

Iterative applications (stencil in PDE solvers, spmv in CG) launch the
same kernel repeatedly without changing the workload shape; the
*profiling activation flag* lets them profile only the first iteration
(paper §3.1).  :class:`SelectionCache` stores the chosen variant per
kernel signature so later launches reuse it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..errors import ProfilingError
from ..modes import OrchestrationFlow, ProfilingMode


@dataclass(frozen=True)
class VariantMeasurement:
    """One candidate's micro-profiling observation."""

    variant: str
    measured_cycles: float
    profiled_units: int
    productive: bool

    @property
    def cycles_per_unit(self) -> float:
        """Throughput-normalized measurement (equal units by safe point
        analysis, so ordering matches raw cycles; exposed for reports)."""
        if self.profiled_units <= 0:
            return float("inf")
        return self.measured_cycles / self.profiled_units


@dataclass
class SelectionRecord:
    """Outcome of one micro-profiled launch."""

    kernel: str
    mode: ProfilingMode
    flow: OrchestrationFlow
    measurements: Tuple[VariantMeasurement, ...] = ()
    selected: Optional[str] = None
    #: Variant names in pool registration order, used to break ties.  An
    #: empty tuple (legacy callers) falls back to first-observed-wins.
    variant_order: Tuple[str, ...] = ()

    def observe(self, measurement: VariantMeasurement) -> None:
        """Fold in one candidate's measurement, keeping the running best.

        Mirrors the atomic-min update of the reference implementation:
        the first observation seeds the best; later ones replace it only
        when strictly faster.  Exact ties are broken by *registration
        order* (earliest-registered variant wins), not observation order:
        in the asynchronous flow, which candidate's poll completes first
        is scheduling-dependent, and the quantized timer makes exact ties
        common — a first-observed-wins rule would make the selection
        nondeterministic across otherwise identical runs.
        """
        self.measurements = self.measurements + (measurement,)
        if self.selected is None:
            self.selected = measurement.variant
            return
        current = self.best_measurement()
        if measurement.measured_cycles < current.measured_cycles:
            self.selected = measurement.variant
        elif measurement.measured_cycles == current.measured_cycles and (
            self._order_index(measurement.variant)
            < self._order_index(current.variant)
        ):
            self.selected = measurement.variant

    def _order_index(self, variant: str) -> int:
        """Registration rank of a variant (unknown names rank last)."""
        try:
            return self.variant_order.index(variant)
        except ValueError:
            return len(self.variant_order)

    def best_measurement(self) -> VariantMeasurement:
        """The measurement backing the current selection."""
        if self.selected is None:
            raise ProfilingError(
                f"kernel {self.kernel!r}: no measurements observed"
            )
        for measurement in self.measurements:
            if measurement.variant == self.selected:
                return measurement
        raise ProfilingError(
            f"kernel {self.kernel!r}: selection {self.selected!r} has no "
            "measurement"
        )

    def ranking(self) -> Tuple[VariantMeasurement, ...]:
        """Measurements sorted fastest first."""
        return tuple(
            sorted(self.measurements, key=lambda m: m.measured_cycles)
        )


@dataclass
class SelectionCache:
    """Chosen variant per kernel signature, across launches."""

    _records: Dict[str, SelectionRecord] = field(default_factory=dict)

    def record(self, record: SelectionRecord) -> None:
        """Store (or overwrite) the selection for a kernel."""
        if record.selected is None:
            raise ProfilingError(
                f"kernel {record.kernel!r}: cannot cache an empty selection"
            )
        self._records[record.kernel] = record

    def lookup(self, kernel: str) -> Optional[SelectionRecord]:
        """The cached selection, or None if this kernel never profiled."""
        return self._records.get(kernel)

    def invalidate(self, kernel: str) -> None:
        """Forget a cached selection (workload shape changed)."""
        self._records.pop(kernel, None)

    def __contains__(self, kernel: str) -> bool:
        return kernel in self._records
