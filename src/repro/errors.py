"""Exception hierarchy for the DySel reproduction.

All library errors derive from :class:`ReproError` so callers can catch a
single base class at API boundaries.  Subsystems raise the most specific
subclass available; error messages name the offending object (kernel
signature, buffer, device) to make failures diagnosable from the message
alone.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """Invalid global or per-run configuration value."""


class KernelError(ReproError):
    """Base class for kernel-model errors."""


class SignatureError(KernelError):
    """Kernel arguments do not match the declared signature."""


class NDRangeError(KernelError):
    """Invalid NDRange / work-group decomposition."""


class BufferError_(KernelError):
    """Invalid buffer construction or access.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`BufferError`.
    """


class IRError(KernelError):
    """Malformed kernel IR (loop nest, access descriptor, ...)."""


class DeviceError(ReproError):
    """Base class for simulated-device errors."""


class StreamError(DeviceError):
    """Invalid stream operation (double-destroy, sync on dead stream...)."""


class EngineError(DeviceError):
    """Discrete-event engine invariant violation."""


class CompilerError(ReproError):
    """Base class for compiler-analysis and transform errors."""


class AnalysisError(CompilerError):
    """A static analysis was given IR it cannot reason about."""


class TransformError(CompilerError):
    """A code transform could not be applied to the given variant."""


class DySelError(ReproError):
    """Base class for DySel-runtime errors."""


class RegistrationError(DySelError):
    """Invalid kernel-pool registration (duplicate variant, bad factor...)."""


class LaunchError(DySelError):
    """Invalid kernel launch (unknown signature, empty pool, bad mode)."""


class VerificationError(LaunchError):
    """A kernel pool failed static verification (``repro.analyze``).

    Raised by the launch gate when ``ReproConfig.verify == "strict"`` and
    the requested (mode, flow) combination is illegal for the pool, and by
    the pass manager for pools that cannot be profiled at all.  Carries
    the structured diagnostics that justify the refusal so callers (and
    the CLI) can render rule ids and fix hints, not just a message.
    """

    def __init__(self, message: str, diagnostics: tuple = ()) -> None:
        super().__init__(message)
        #: The blocking :class:`repro.analyze.Diagnostic` objects.
        self.diagnostics = tuple(diagnostics)


class ProfilingError(DySelError):
    """Micro-profiling failed or was configured inconsistently."""


class VariantFault(DySelError):
    """A variant (or the device running it) misbehaved during execution.

    Raised by a fault injector (:mod:`repro.faults`) at functional
    execution time, and caught by the runtime's hardening layer: the
    faulty candidate is excluded from selection, its sandbox/private
    output is discarded, any productive slice it owned is re-run by a
    surviving variant, and repeat offenders are quarantined.

    ``variant``/``kernel`` name the offender; ``kind`` is the injected
    :class:`repro.faults.FaultKind` value string.
    """

    def __init__(self, message: str, variant: str = "", kernel: str = "",
                 kind: str = "") -> None:
        super().__init__(message)
        self.variant = variant
        self.kernel = kernel
        self.kind = kind


class VariantCrashFault(VariantFault):
    """The variant aborted before writing any output (kernel crash)."""


class VariantCorruptionFault(VariantFault):
    """The variant wrote garbage into its output slice."""


class VariantHangFault(VariantFault):
    """The variant never completed; detected by a deadline timeout."""


class TransientDeviceFault(VariantFault):
    """A transient device failure; retrying the submission may succeed."""


class ProfilingFaultError(ProfilingError):
    """Every profiling candidate faulted; no selection could be made.

    Raised by the orchestration flows when zero candidates survive
    micro-profiling.  The runtime catches it and degrades the launch to
    a profiling-off run of the best non-quarantined variant (or raises
    :class:`LaunchAbortedError` when none remains).  Carries the
    :class:`repro.faults.FaultRecord` objects describing what happened.
    """

    def __init__(self, message: str, faults: tuple = ()) -> None:
        super().__init__(message)
        #: The :class:`repro.faults.FaultRecord` objects of this launch.
        self.faults = tuple(faults)


class LaunchAbortedError(LaunchError):
    """A launch could not run on any variant (all quarantined/faulted).

    The structured terminal failure of the degradation ladder
    (``docs/faults.md``): profiling fell back to the pool default, the
    default fell back to the remaining candidates, and every candidate
    is either quarantined or faulted within this launch.  Carries the
    kernel name and the per-variant disposition so callers can render
    *why* nothing was runnable.
    """

    def __init__(
        self,
        message: str,
        kernel: str = "",
        quarantined: tuple = (),
        faulted: tuple = (),
    ) -> None:
        super().__init__(message)
        self.kernel = kernel
        #: Variant names quarantined before/during the launch.
        self.quarantined = tuple(quarantined)
        #: Variant names that faulted within this launch.
        self.faulted = tuple(faulted)


class SandboxError(DySelError):
    """Sandbox / private-output management error."""


class ServeError(DySelError):
    """Base class for launch-scheduler / serving-layer errors."""


class StoreError(ServeError):
    """Persistent selection-store failure (I/O, format, schema)."""


class StoreSchemaError(StoreError):
    """A persisted selection store was written by an incompatible schema.

    Raised on load when the on-disk ``schema_version`` does not match
    :data:`repro.serve.store.SCHEMA_VERSION` (nor a migratable older
    version); the store is rejected wholesale rather than partially
    interpreted, so a serving fleet never trusts selections whose key
    derivation rules it cannot reproduce.

    ``versions`` maps each offending file (or shard) to the
    ``schema_version`` it declared, so callers and operators can see
    exactly which files disagree — a sharded store with *mixed* shard
    versions is rejected with every shard's version listed rather than
    partially loaded (:mod:`repro.serve.shards`).
    """

    def __init__(self, message: str, versions: object = None) -> None:
        super().__init__(message)
        #: Mapping of file path → declared schema version (may be empty).
        self.versions = dict(versions) if versions else {}


class DriftError(DySelError):
    """Drift-detection configuration or state error.

    Raised for invalid :class:`repro.drift.DriftConfig` parameters,
    non-positive/non-finite observations, and malformed persisted drift
    payloads (:mod:`repro.drift`).
    """


class PredictError(DySelError):
    """Selection-predictor configuration or state error.

    Raised for invalid :class:`repro.predict.PredictConfig` parameters,
    fitting a model on zero examples, and malformed persisted predictor
    payloads (:mod:`repro.predict`).
    """


class AdmissionRejected(ServeError):
    """The admission queue was full; the request was refused, not queued.

    Structured so clients can implement load-shedding policies: the
    tenant that was refused, the queue depth observed, and the
    configured bound (:class:`repro.serve.QoSConfig.max_queue_depth`).
    """

    def __init__(
        self, message: str, tenant: str, queue_depth: int, limit: int
    ) -> None:
        super().__init__(message)
        #: Tenant whose request was refused.
        self.tenant = tenant
        #: Waiting requests at refusal time.
        self.queue_depth = queue_depth
        #: The configured queue bound that was hit.
        self.limit = limit


class TrafficError(ReproError):
    """Invalid traffic-generator configuration or schedule payload.

    Raised for non-positive rates/horizons, malformed size
    distributions, and schedule files whose schema or fields cannot be
    interpreted (:mod:`repro.traffic`).
    """


class WorkloadError(ReproError):
    """Benchmark workload construction or validation error."""


class HarnessError(ReproError):
    """Experiment-harness configuration or execution error."""
