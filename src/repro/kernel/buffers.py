"""Device buffers: typed views over numpy arrays.

A :class:`Buffer` is the unit of data a kernel reads or writes.  It wraps a
numpy array and records which simulated *memory space* it lives in — the
data-placement optimization the paper evaluates in Case Study II moves
buffers between these spaces (global, scratchpad, texture, constant), which
changes access cost on the GPU model but never changes functional results.

Buffers also support the sandbox/private-output mechanics of partial
productive profiling (paper §2.2): :meth:`Buffer.sandbox_copy` creates a
throwaway clone for non-committing profiling runs, and
:meth:`Buffer.swap_contents` installs a private output as the final one.
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple

import numpy as np

from ..errors import BufferError_


class MemorySpace(enum.Enum):
    """Simulated memory spaces a buffer can be placed in.

    These mirror the placement targets of PORPLE [7] and Jang et al. [15]:
    GPU global memory (DRAM through L2), scratchpad (shared memory),
    texture (read-only cache path), and constant memory.  On the CPU model
    every space is lowered to the uniform cache hierarchy — which is exactly
    why scratchpad tiling hurts on CPUs in Fig 10a (copy cost, no latency
    gain).
    """

    GLOBAL = "global"
    SCRATCHPAD = "scratchpad"
    TEXTURE = "texture"
    CONSTANT = "constant"


class Buffer:
    """A named, typed device buffer backed by a numpy array.

    Parameters
    ----------
    name:
        Human-readable name used in error messages and access descriptors.
    data:
        The backing numpy array.  The buffer takes ownership of the array;
        callers should not mutate it except through kernel execution.
    space:
        The simulated memory space the buffer is placed in.
    writable:
        Whether kernels may write this buffer.  Placement into TEXTURE or
        CONSTANT space requires ``writable=False``, matching hardware.
    """

    def __init__(
        self,
        name: str,
        data: np.ndarray,
        space: MemorySpace = MemorySpace.GLOBAL,
        writable: bool = True,
    ) -> None:
        if not isinstance(data, np.ndarray):
            raise BufferError_(
                f"buffer {name!r} requires a numpy array, got {type(data).__name__}"
            )
        if space in (MemorySpace.TEXTURE, MemorySpace.CONSTANT) and writable:
            raise BufferError_(
                f"buffer {name!r} in {space.value} space must be read-only"
            )
        self.name = name
        self.data = data
        self.space = space
        self.writable = writable

    @property
    def nbytes(self) -> int:
        """Size of the backing storage in bytes."""
        return int(self.data.nbytes)

    @property
    def shape(self) -> Tuple[int, ...]:
        """Shape of the backing array."""
        return self.data.shape

    @property
    def dtype(self) -> np.dtype:
        """Element dtype of the backing array."""
        return self.data.dtype

    def replaced(
        self,
        space: Optional[MemorySpace] = None,
        writable: Optional[bool] = None,
    ) -> "Buffer":
        """Return a buffer sharing this data but with placement changed.

        Data placement transforms use this: the numpy contents are shared
        (placement never changes functional behaviour), only the simulated
        space differs.
        """
        return Buffer(
            self.name,
            self.data,
            space=self.space if space is None else space,
            writable=self.writable if writable is None else writable,
        )

    def sandbox_copy(self, label: str = "sandbox") -> "Buffer":
        """Return a deep copy for sandboxed profiling (hybrid mode).

        The copy is writable and placed in the same space; writes to it are
        discarded after profiling.
        """
        if not self.writable:
            raise BufferError_(
                f"cannot sandbox read-only buffer {self.name!r}; sandboxes "
                "exist to absorb writes"
            )
        return Buffer(
            f"{self.name}.{label}",
            self.data.copy(),
            space=self.space,
            writable=True,
        )

    def swap_contents(self, other: "Buffer") -> None:
        """Install ``other``'s contents as this buffer's contents.

        Swap-based partial-productive profiling keeps one private output per
        profiled variant; the winner's private output becomes the final
        output (paper Fig 3c).  Shapes and dtypes must match.
        """
        if other.data.shape != self.data.shape:
            raise BufferError_(
                f"cannot swap {other.name!r} (shape {other.data.shape}) into "
                f"{self.name!r} (shape {self.data.shape})"
            )
        if other.data.dtype != self.data.dtype:
            raise BufferError_(
                f"cannot swap {other.name!r} (dtype {other.data.dtype}) into "
                f"{self.name!r} (dtype {self.data.dtype})"
            )
        if not self.writable:
            raise BufferError_(f"cannot swap into read-only buffer {self.name!r}")
        self.data[...] = other.data

    def __repr__(self) -> str:
        return (
            f"Buffer({self.name!r}, shape={self.data.shape}, "
            f"dtype={self.data.dtype}, space={self.space.value}, "
            f"writable={self.writable})"
        )
