"""Kernel signatures: the contract all variants of a kernel share.

DySel's registration API (paper Fig 6a) keys the kernel pool by *kernel
signature*: every variant registered under one signature must consume the
same arguments and produce the same outputs, so the runtime can substitute
one for another freely.  :class:`KernelSignature` captures that contract and
validates concrete argument dictionaries against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from ..errors import SignatureError
from .buffers import Buffer


@dataclass(frozen=True)
class ArgSpec:
    """Declaration of one kernel argument.

    Parameters
    ----------
    name:
        Argument name; keys the argument dictionary at launch.
    is_buffer:
        True for device buffers, False for scalars.
    is_output:
        True if kernels write this argument.  Only buffers can be outputs.
        Output arguments are what sandboxing and swapping operate on
        (``sandbox_index`` in the paper's registration API identifies them).
    """

    name: str
    is_buffer: bool = True
    is_output: bool = False

    def __post_init__(self) -> None:
        if self.is_output and not self.is_buffer:
            raise SignatureError(
                f"argument {self.name!r}: scalars cannot be outputs"
            )


@dataclass(frozen=True)
class KernelSignature:
    """Named kernel contract shared by all variants in a pool."""

    name: str
    args: Tuple[ArgSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise SignatureError("kernel signature name must be non-empty")
        seen: set = set()
        for spec in self.args:
            if spec.name in seen:
                raise SignatureError(
                    f"kernel {self.name!r}: duplicate argument {spec.name!r}"
                )
            seen.add(spec.name)

    @property
    def output_names(self) -> Tuple[str, ...]:
        """Names of output buffer arguments, in declaration order."""
        return tuple(a.name for a in self.args if a.is_output)

    @property
    def buffer_names(self) -> Tuple[str, ...]:
        """Names of all buffer arguments, in declaration order."""
        return tuple(a.name for a in self.args if a.is_buffer)

    def arg(self, name: str) -> ArgSpec:
        """Look up one argument spec by name."""
        for spec in self.args:
            if spec.name == name:
                return spec
        raise SignatureError(f"kernel {self.name!r} has no argument {name!r}")

    def validate(self, args: Mapping[str, object]) -> Dict[str, object]:
        """Validate a concrete argument mapping against this signature.

        Checks that every declared argument is present, buffers are
        :class:`Buffer` instances, output buffers are writable, and no
        undeclared arguments are passed.  Returns a plain dict copy.
        """
        unknown = set(args) - {a.name for a in self.args}
        if unknown:
            raise SignatureError(
                f"kernel {self.name!r}: unknown arguments {sorted(unknown)}"
            )
        validated: Dict[str, object] = {}
        for spec in self.args:
            if spec.name not in args:
                raise SignatureError(
                    f"kernel {self.name!r}: missing argument {spec.name!r}"
                )
            value = args[spec.name]
            if spec.is_buffer:
                if not isinstance(value, Buffer):
                    raise SignatureError(
                        f"kernel {self.name!r}: argument {spec.name!r} must be "
                        f"a Buffer, got {type(value).__name__}"
                    )
                if spec.is_output and not value.writable:
                    raise SignatureError(
                        f"kernel {self.name!r}: output {spec.name!r} is bound "
                        f"to read-only buffer {value.name!r}"
                    )
            validated[spec.name] = value
        return validated
