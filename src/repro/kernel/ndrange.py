"""NDRange and work-group decomposition.

Kernel-based data-parallel models over-decompose the workload into many
independent work-groups (paper §2.1).  DySel exploits exactly this property:
work-groups are the granularity of micro-profiling, and a launch's
work-groups can be partitioned into profiled slices plus a remainder.

We model an NDRange as up to three dimensions of work-groups.  Work-groups
are identified by a *linear* index in ``[0, total)``; helpers convert to and
from 3-D coordinates in row-major order (x fastest), matching how OpenCL
flattens ``get_group_id``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from ..errors import NDRangeError


@dataclass(frozen=True)
class NDRange:
    """A grid of work-groups, each of ``local_size`` work-items.

    Parameters
    ----------
    groups:
        Number of work-groups along (x, y, z).  Trailing dimensions may be 1.
    local_size:
        Work-items per work-group along (x, y, z).
    """

    groups: Tuple[int, int, int]
    local_size: Tuple[int, int, int] = (1, 1, 1)

    def __post_init__(self) -> None:
        if len(self.groups) != 3 or len(self.local_size) != 3:
            raise NDRangeError(
                "groups and local_size must be 3-tuples, got "
                f"{self.groups!r} and {self.local_size!r}"
            )
        if any(g < 1 for g in self.groups):
            raise NDRangeError(f"all group counts must be >= 1, got {self.groups}")
        if any(l < 1 for l in self.local_size):
            raise NDRangeError(
                f"all local sizes must be >= 1, got {self.local_size}"
            )

    @classmethod
    def linear(cls, num_groups: int, work_group_size: int = 1) -> "NDRange":
        """Build a 1-D NDRange of ``num_groups`` work-groups."""
        return cls(groups=(num_groups, 1, 1), local_size=(work_group_size, 1, 1))

    @classmethod
    def grid2d(
        cls,
        groups_x: int,
        groups_y: int,
        local_x: int = 1,
        local_y: int = 1,
    ) -> "NDRange":
        """Build a 2-D NDRange."""
        return cls(groups=(groups_x, groups_y, 1), local_size=(local_x, local_y, 1))

    @property
    def total_groups(self) -> int:
        """Total number of work-groups in the grid."""
        gx, gy, gz = self.groups
        return gx * gy * gz

    @property
    def work_group_size(self) -> int:
        """Work-items per work-group."""
        lx, ly, lz = self.local_size
        return lx * ly * lz

    @property
    def total_work_items(self) -> int:
        """Total work-items across the whole NDRange."""
        return self.total_groups * self.work_group_size

    def group_coords(self, linear_id: int) -> Tuple[int, int, int]:
        """Convert a linear work-group id to (x, y, z) coordinates."""
        if not 0 <= linear_id < self.total_groups:
            raise NDRangeError(
                f"work-group id {linear_id} out of range "
                f"[0, {self.total_groups})"
            )
        gx, gy, _gz = self.groups
        x = linear_id % gx
        y = (linear_id // gx) % gy
        z = linear_id // (gx * gy)
        return (x, y, z)

    def linear_id(self, x: int, y: int = 0, z: int = 0) -> int:
        """Convert (x, y, z) work-group coordinates to a linear id."""
        gx, gy, gz = self.groups
        if not (0 <= x < gx and 0 <= y < gy and 0 <= z < gz):
            raise NDRangeError(
                f"work-group coords ({x}, {y}, {z}) out of grid {self.groups}"
            )
        return x + gx * (y + gy * z)

    def iter_group_ids(self) -> Iterator[int]:
        """Iterate all linear work-group ids in dispatch order."""
        return iter(range(self.total_groups))

    def with_groups(self, num_groups: int) -> "NDRange":
        """Return a linearized copy covering ``num_groups`` work-groups.

        Used when a variant repacks work (coarsening/tiling) and therefore
        launches a different number of work-groups over the same workload.
        """
        return NDRange.linear(num_groups, self.work_group_size)
