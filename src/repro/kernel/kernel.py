"""Kernel variants: IR plus a real functional implementation.

A :class:`KernelVariant` is one compiled implementation of a kernel.  It
pairs the declarative IR (what analyses and the cost model see) with an
*executor* — a numpy function that actually computes the variant's share of
the output.  Because executors really write the output buffers, DySel's
productive profiling is testable end-to-end: profiled slices must land in
the final output bit-exactly, sandboxed slices must not.

Work is measured in **workload units**: the finest-grained decomposition of
a launch (e.g. one output tile of sgemm, one row-block of spmv).  A variant
packs ``wa_factor`` units into each of its work-groups — the *work
assignment factor* of the paper's registration API (Fig 6a), produced by
coarsening/tiling transforms.  Safe point analysis normalizes profiling
slices across variants using these factors (paper §3.4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Tuple

import numpy as np

from ..errors import KernelError, NDRangeError
from .ir import KernelIR
from .signature import KernelSignature

#: Executor signature: (args, unit_start, unit_end) -> None.  Computes the
#: output contribution of workload units [unit_start, unit_end), writing
#: into the output buffers found in ``args``.
Executor = Callable[[Mapping[str, object], int, int], None]


@dataclass(frozen=True)
class WorkRange:
    """A half-open range [start, end) of workload units."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise NDRangeError(
                f"invalid WorkRange [{self.start}, {self.end})"
            )

    def __len__(self) -> int:
        return self.end - self.start

    @property
    def empty(self) -> bool:
        """True when the range covers no units."""
        return self.end == self.start

    def take(self, count: int) -> Tuple["WorkRange", "WorkRange"]:
        """Split into (first ``count`` units, remainder).

        ``count`` is clamped to the available length.
        """
        cut = min(self.start + max(count, 0), self.end)
        return WorkRange(self.start, cut), WorkRange(cut, self.end)

    def intersect(self, other: "WorkRange") -> "WorkRange":
        """Intersection with another range (possibly empty)."""
        start = max(self.start, other.start)
        end = max(start, min(self.end, other.end))
        return WorkRange(start, end)

    def __repr__(self) -> str:
        return f"WorkRange({self.start}, {self.end})"


@dataclass(frozen=True)
class KernelVariant:
    """One implementation of a kernel, registered into a DySel pool.

    Parameters
    ----------
    name:
        Variant name, unique within its pool (e.g. ``"vector,BFO"``).
    ir:
        Declarative IR used by analyses and the device cost model.
    executor:
        Real numpy implementation over workload-unit ranges.
    wa_factor:
        Work assignment factor: workload units packed per work-group.
        Coarsened/tiled variants have larger factors (Fig 6a).
    work_group_size:
        Work-items per work-group (affects SIMD/warp efficiency).
    description:
        Human-readable provenance ("scratchpad-tiled 16x16 + 4x coarsened").
    """

    name: str
    ir: KernelIR
    executor: Executor
    wa_factor: int = 1
    work_group_size: int = 64
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise KernelError("variant name must be non-empty")
        if self.wa_factor < 1:
            raise KernelError(
                f"variant {self.name!r}: wa_factor must be >= 1, "
                f"got {self.wa_factor}"
            )
        if self.work_group_size < 1:
            raise KernelError(
                f"variant {self.name!r}: work_group_size must be >= 1, "
                f"got {self.work_group_size}"
            )

    # ------------------------------------------------------------------
    # Unit / work-group geometry
    # ------------------------------------------------------------------

    def num_groups(self, workload_units: int) -> int:
        """Work-groups this variant launches to cover ``workload_units``."""
        if workload_units < 0:
            raise KernelError(
                f"workload_units must be >= 0, got {workload_units}"
            )
        return math.ceil(workload_units / self.wa_factor)

    def units_for_groups(
        self, group_start: int, group_end: int, workload_units: int
    ) -> WorkRange:
        """Workload units covered by variant work-groups [start, end)."""
        start = min(group_start * self.wa_factor, workload_units)
        end = min(group_end * self.wa_factor, workload_units)
        return WorkRange(start, end)

    def groups_for_units(self, units: WorkRange) -> Tuple[int, int]:
        """Variant work-group range covering a unit range.

        The unit range must be aligned to ``wa_factor`` (except at the tail
        of the workload); productive profiling always hands out aligned
        ranges, which safe point analysis guarantees by construction.
        """
        if units.start % self.wa_factor != 0:
            raise KernelError(
                f"variant {self.name!r}: unit range {units} is not aligned "
                f"to wa_factor {self.wa_factor}"
            )
        group_start = units.start // self.wa_factor
        group_end = math.ceil(units.end / self.wa_factor)
        return group_start, group_end

    def group_ids_for_units(self, units: WorkRange) -> np.ndarray:
        """Variant-local work-group ids covering a unit range (for costing)."""
        group_start, group_end = self.groups_for_units(units)
        return np.arange(group_start, group_end, dtype=np.int64)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(self, args: Mapping[str, object], units: WorkRange) -> None:
        """Run the variant over a unit range, writing real output."""
        if units.empty:
            return
        self.executor(args, units.start, units.end)


@dataclass(frozen=True)
class KernelSpec:
    """The kernel contract a pool of variants implements.

    Carries the shared signature plus an optional *reference executor* used
    by tests and examples to validate that every variant computes the same
    function (the substitutability contract DySel's registration API
    assumes).
    """

    signature: KernelSignature
    reference: Optional[Executor] = None
    #: Which output arguments sandboxing / swapping applies to, by name.
    #: Mirrors ``sandbox_index`` in the paper's registration API; defaults
    #: to every declared output.
    sandbox_outputs: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        declared = set(self.signature.output_names)
        for name in self.sandbox_outputs:
            if name not in declared:
                raise KernelError(
                    f"kernel {self.signature.name!r}: sandbox output "
                    f"{name!r} is not a declared output "
                    f"(outputs: {sorted(declared)})"
                )

    @property
    def effective_sandbox_outputs(self) -> Tuple[str, ...]:
        """Outputs subject to sandbox/swap handling."""
        if self.sandbox_outputs:
            return self.sandbox_outputs
        return self.signature.output_names
