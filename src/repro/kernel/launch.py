"""Launch configuration: one kernel invocation's workload binding.

A :class:`LaunchConfig` binds concrete arguments and a workload-unit count
to a kernel signature.  It is what `DySelLaunchKernel` (paper Fig 6b)
receives in addition to the profiling flag and mode, and what the launch
census (Fig 2) records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from ..errors import LaunchError
from .buffers import Buffer
from .signature import KernelSignature


@dataclass
class LaunchConfig:
    """Concrete binding for one kernel launch.

    Parameters
    ----------
    signature:
        The kernel contract being launched.
    args:
        Argument mapping, validated against the signature.
    workload_units:
        Total workload units this launch covers (base-variant work-group
        count; variants with larger ``wa_factor`` launch proportionally
        fewer work-groups over the same units).
    """

    signature: KernelSignature
    args: Dict[str, object]
    workload_units: int

    def __post_init__(self) -> None:
        if self.workload_units < 0:
            raise LaunchError(
                f"workload_units must be >= 0, got {self.workload_units}"
            )
        self.args = self.signature.validate(self.args)

    @classmethod
    def create(
        cls,
        signature: KernelSignature,
        args: Mapping[str, object],
        workload_units: int,
    ) -> "LaunchConfig":
        """Validate and build a launch configuration."""
        return cls(
            signature=signature, args=dict(args), workload_units=workload_units
        )

    def output_buffers(self) -> Dict[str, Buffer]:
        """The output buffers of this launch, by argument name."""
        outputs: Dict[str, Buffer] = {}
        for name in self.signature.output_names:
            value = self.args[name]
            assert isinstance(value, Buffer)
            outputs[name] = value
        return outputs

    def with_args(self, overrides: Mapping[str, object]) -> "LaunchConfig":
        """Return a copy with some arguments rebound (sandboxing helper)."""
        new_args = dict(self.args)
        new_args.update(overrides)
        return LaunchConfig.create(self.signature, new_args, self.workload_units)
