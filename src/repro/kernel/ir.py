"""Declarative kernel IR: what the compiler and cost model reason about.

Real DySel sits on top of an OpenCL/CUDA compiler that sees full kernel
source.  Our substitute is a compact IR capturing exactly the facts the
paper's machinery consumes:

* **loop structure** — work-item loops vs in-kernel loops and their bounds
  (static or data-dependent), which drives *uniform workload analysis*
  (paper §3.4) and the locality-centric scheduling baseline [17];
* **memory access descriptors** — per-buffer patterns (coalesced, strided,
  gather, broadcast) and volumes, which drive the mechanistic device cost
  model and the PORPLE/Jang data-placement baselines [7, 15];
* **atomics and output-range facts** — which drive *side effect analysis*
  and the choice of productive profiling mode (paper §2.3);
* **transform state** — vector width, tiling/coarsening factors, scratchpad
  usage, unrolling, prefetching — so compile-time transforms are visible to
  the cost model the same way generated code is visible to hardware.

Loop bounds and access volumes may be *data dependent*: they are evaluated
lazily against the actual launch arguments, vectorized over work-group ids.
This is what lets input sparsity flip the best variant at runtime (Case
Study IV) while remaining invisible to static analyses — exactly the
information asymmetry DySel exploits.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Callable, Mapping, Optional, Tuple

import numpy as np

from ..errors import IRError

#: Signature of a data-dependent evaluator: (args, unit_ids) -> value
#: per work-group.  ``unit_ids`` is an int64 array of workload-unit ids; the result must be a float array of the same length.
Evaluator = Callable[[Mapping[str, object], np.ndarray], np.ndarray]


class AccessPattern(enum.Enum):
    """How consecutive work-items in a work-group touch a buffer.

    The pattern determines memory cost on each device model:

    * ``COALESCED`` — adjacent work-items touch adjacent elements.  Ideal on
      GPU (one transaction per warp); on CPU this is a unit-stride stream
      *across* the vector lanes.
    * ``UNIT_STRIDE`` — each work-item streams sequentially through memory
      (unit stride *within* a work-item across loop trips).  Ideal on CPU;
      on GPU this is a strided (uncoalesced) pattern across a warp.
    * ``STRIDED`` — constant non-unit stride; cost grows with stride until a
      cache line per element is wasted.
    * ``GATHER`` — data-dependent indices (e.g. ``x[col[j]]`` in spmv);
      modelled as random within a working set.
    * ``BROADCAST`` — all work-items read the same address (e.g. kmeans
      centroids); served by caches / constant memory at near-zero cost.
    """

    COALESCED = "coalesced"
    UNIT_STRIDE = "unit_stride"
    STRIDED = "strided"
    GATHER = "gather"
    BROADCAST = "broadcast"


#: Sentinel stride marking a data-dependent (gather) index in
#: ``MemoryAccess.strides_by_loop``.
GATHER_STRIDE = -1


class AtomicKind(enum.Enum):
    """Atomicity of a memory access (side effect analysis input)."""

    NONE = "none"
    LOCAL = "local"  # work-group-local; never forces swap-based profiling
    GLOBAL = "global"  # forces swap-based profiling (paper §3.4)


@dataclass(frozen=True)
class LoopBound:
    """Trip count of one loop, possibly data dependent.

    ``static_trips`` gives the count when it is a compile-time constant.
    ``evaluator`` gives the count per workload unit when it depends on runtime
    data (CSR row lengths, ...); static analyses cannot see through it —
    only that it exists — which makes uniform workload analysis
    conservative, as the paper notes for uniform CSR matrices.
    """

    static_trips: Optional[int] = None
    evaluator: Optional[Evaluator] = None
    description: str = ""

    def __post_init__(self) -> None:
        if (self.static_trips is None) == (self.evaluator is None):
            raise IRError(
                "LoopBound needs exactly one of static_trips or evaluator; "
                f"got static_trips={self.static_trips!r}, "
                f"evaluator={'set' if self.evaluator else 'None'}"
            )
        if self.static_trips is not None and self.static_trips < 0:
            raise IRError(f"static_trips must be >= 0, got {self.static_trips}")

    @property
    def is_data_dependent(self) -> bool:
        """True when the trip count is only known at runtime."""
        return self.evaluator is not None

    def trips(
        self, args: Mapping[str, object], unit_ids: np.ndarray
    ) -> np.ndarray:
        """Evaluate trip counts for the given workload units (vectorized)."""
        if self.static_trips is not None:
            return np.full(len(unit_ids), float(self.static_trips))
        assert self.evaluator is not None
        trips = np.asarray(self.evaluator(args, unit_ids), dtype=float)
        if trips.shape != unit_ids.shape:
            raise IRError(
                f"loop-bound evaluator returned shape {trips.shape}, "
                f"expected {unit_ids.shape} ({self.description or 'bound'})"
            )
        return trips


@dataclass(frozen=True)
class Loop:
    """One loop in the kernel's (linearized) loop nest.

    ``is_work_item_loop`` distinguishes the implicit loops over work-items
    (materialized when lowering OpenCL to CPU code, cf. MCUDA/pocl) from the
    explicit in-kernel loops the programmer wrote.  The locality-centric
    scheduling baseline permutes exactly these two classes of loops.
    """

    name: str
    bound: LoopBound
    is_work_item_loop: bool = False
    has_early_exit: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise IRError("loop name must be non-empty")


@dataclass(frozen=True)
class MemoryAccess:
    """One static memory access site.

    Parameters
    ----------
    buffer:
        Kernel-argument name of the buffer touched.
    is_write:
        Direction; writes to overlapping ranges are what side effect
        analysis looks for.
    pattern:
        Access pattern across work-items (see :class:`AccessPattern`).
    bytes_per_trip:
        Bytes moved per execution of this site, *aggregated over the
        workload unit* (i.e. already multiplied by the work-items that
        process one unit where the site executes per work-item).
    loop:
        Name of the innermost loop containing this site, or None when the
        site executes once per work-group.  The site's execution count is
        the product of trip counts of that loop and all enclosing loops.
    stride_bytes:
        Element stride for ``STRIDED`` patterns (ignored otherwise).
    atomic:
        Atomicity (side effect analysis input).
    working_set_hint:
        Optional name of a buffer whose size bounds the gather working set
        (e.g. the dense vector in spmv); lets the cache model estimate
        gather hit rates.
    """

    buffer: str
    is_write: bool
    pattern: AccessPattern
    bytes_per_trip: float
    loop: Optional[str] = None
    #: Optional explicit execution scope: the set of loops whose trip
    #: counts multiply into this site's execution count.  Order
    #: independent, so loop interchange preserves counts (an accumulator
    #: hoisted out of the reduction loop stays hoisted under any order).
    #: When None, the scope is the prefix of the nest up to ``loop``.
    scope: Optional[Tuple[str, ...]] = None
    stride_bytes: int = 0
    atomic: AtomicKind = AtomicKind.NONE
    working_set_hint: Optional[str] = None
    #: Optional evaluator of the *dynamic* element stride in bytes between
    #: consecutive work-items' touches: (args, unit_ids) -> stride per
    #: unit.  Lets coalescing quality depend on the data (CSR row lengths:
    #: a 1-nnz-per-row matrix makes the "uncoalesced" scalar kernel
    #: perfectly coalesced).  When None, the static pattern governs.
    stride_evaluator: Optional[Evaluator] = None
    #: Optional evaluator of the access's *per-unit* working-set footprint
    #: in bytes: (args, unit_ids) -> bytes touched by one unit.  When set,
    #: it overrides the buffer-size working set for cache-level selection
    #: and gather hit-rate estimation — this is how input locality (e.g.
    #: the diagonal matrix's 1-nnz rows) reaches the cost model.
    footprint_hint: Optional[Evaluator] = None
    #: Optional per-loop byte strides of the access's index expression:
    #: how far the address moves per step of each loop variable.  Used by
    #: the schedule transform and the locality-centric heuristic to derive
    #: the pattern a given loop order produces.  Use GATHER_STRIDE for a
    #: data-dependent index.
    strides_by_loop: Optional[Tuple[Tuple[str, int], ...]] = None

    def __post_init__(self) -> None:
        if self.bytes_per_trip < 0:
            raise IRError(
                f"bytes_per_trip must be >= 0, got {self.bytes_per_trip} "
                f"for access to {self.buffer!r}"
            )
        if self.pattern is AccessPattern.STRIDED and self.stride_bytes <= 0:
            raise IRError(
                f"STRIDED access to {self.buffer!r} requires stride_bytes > 0"
            )


@dataclass(frozen=True)
class KernelIR:
    """Complete IR for one kernel variant.

    ``loops`` is the loop nest from outermost to innermost.  Accesses and
    arithmetic are attributed to loops by name.  All *per-trip* quantities
    are per work-group aggregates.

    Transform state fields describe what compile-time transforms were
    applied; they change the cost model's view exactly like generated code
    changes hardware behaviour, and some also change profiling requirements
    (coarsening/tiling change ``wa_factor`` on the variant, global atomics
    force swap-based profiling).
    """

    loops: Tuple[Loop, ...] = ()
    accesses: Tuple[MemoryAccess, ...] = ()
    #: Arithmetic per innermost-loop trip, per work-group (flop count).
    flops_per_trip: float = 0.0
    #: Fixed per-work-group arithmetic outside all loops.
    flops_fixed: float = 0.0
    #: SIMD width the variant was vectorized to (1 = scalar).
    vector_width: int = 1
    #: Fraction [0, 1] of dynamic control divergence across adjacent
    #: work-items; drives SIMD masking / warp-divergence penalties.
    divergence: float = 0.0
    #: Scratchpad bytes allocated per work-group (tiling / vector spmv).
    scratchpad_bytes: int = 0
    #: Whether the kernel synchronizes work-items with barriers.
    uses_barrier: bool = False
    #: Loop-unroll factor applied to the innermost loop (1 = none).
    unroll_factor: int = 1
    #: Whether software prefetching was applied.
    prefetch: bool = False
    #: Side-effect facts about output ranges (beyond atomics).
    output_ranges_overlap: bool = False
    output_range_varies: bool = False
    #: Data placement decisions: (buffer argument name, MemorySpace value).
    #: Applied at cost-evaluation time by re-binding the buffer's space;
    #: functional results never depend on placement.
    placements: Tuple[Tuple[str, str], ...] = ()
    #: Work-items (threads) per work-group; GPU compute-efficiency rules
    #: use it to model lane underutilization.
    work_group_threads: int = 64
    #: Free-form provenance notes ("tiled 16x16", "BFO schedule", ...).
    notes: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        names = [loop.name for loop in self.loops]
        if len(names) != len(set(names)):
            raise IRError(f"duplicate loop names in IR: {names}")
        known = set(names)
        for access in self.accesses:
            if access.loop is not None and access.loop not in known:
                raise IRError(
                    f"access to {access.buffer!r} references unknown loop "
                    f"{access.loop!r} (known: {sorted(known)})"
                )
        if self.vector_width < 1:
            raise IRError(f"vector_width must be >= 1, got {self.vector_width}")
        if self.unroll_factor < 1:
            raise IRError(f"unroll_factor must be >= 1, got {self.unroll_factor}")
        if not 0.0 <= self.divergence <= 1.0:
            raise IRError(f"divergence must be in [0, 1], got {self.divergence}")
        if self.scratchpad_bytes < 0:
            raise IRError(
                f"scratchpad_bytes must be >= 0, got {self.scratchpad_bytes}"
            )
        if self.work_group_threads < 1:
            raise IRError(
                f"work_group_threads must be >= 1, got {self.work_group_threads}"
            )
        for access in self.accesses:
            if access.strides_by_loop is not None:
                for loop_name, _stride in access.strides_by_loop:
                    if loop_name not in known:
                        raise IRError(
                            f"access to {access.buffer!r}: strides_by_loop "
                            f"references unknown loop {loop_name!r}"
                        )
            if access.scope is not None:
                for loop_name in access.scope:
                    if loop_name not in known:
                        raise IRError(
                            f"access to {access.buffer!r}: scope references "
                            f"unknown loop {loop_name!r}"
                        )

    # ------------------------------------------------------------------
    # Structure queries (used by analyses and the cost model)
    # ------------------------------------------------------------------

    def loop_named(self, name: str) -> Loop:
        """Look up a loop by name."""
        for loop in self.loops:
            if loop.name == name:
                return loop
        raise IRError(f"IR has no loop named {name!r}")

    def loop_depth(self, name: str) -> int:
        """Index of a loop within the nest (0 = outermost)."""
        for depth, loop in enumerate(self.loops):
            if loop.name == name:
                return depth
        raise IRError(f"IR has no loop named {name!r}")

    def enclosing_loops(self, name: Optional[str]) -> Tuple[Loop, ...]:
        """Loops enclosing (and including) the named loop.

        ``None`` means "outside all loops" and yields an empty tuple.
        """
        if name is None:
            return ()
        depth = self.loop_depth(name)
        return self.loops[: depth + 1]

    @property
    def in_kernel_loops(self) -> Tuple[Loop, ...]:
        """Explicit (non-work-item) loops."""
        return tuple(l for l in self.loops if not l.is_work_item_loop)

    @property
    def work_item_loops(self) -> Tuple[Loop, ...]:
        """Implicit work-item loops (CPU lowering)."""
        return tuple(l for l in self.loops if l.is_work_item_loop)

    @property
    def has_global_atomics(self) -> bool:
        """True when any access site uses a global atomic."""
        return any(a.atomic is AtomicKind.GLOBAL for a in self.accesses)

    @property
    def written_buffers(self) -> Tuple[str, ...]:
        """Buffer arguments this variant writes (its static write set).

        Order follows first write site; used by the pool verifier to check
        write sets against declared signature outputs and sandbox indices.
        """
        seen = []
        for access in self.accesses:
            if access.is_write and access.buffer not in seen:
                seen.append(access.buffer)
        return tuple(seen)

    @property
    def global_atomic_buffers(self) -> Tuple[str, ...]:
        """Buffers touched through global atomics (side-effect facts)."""
        seen = []
        for access in self.accesses:
            if access.atomic is AtomicKind.GLOBAL and access.buffer not in seen:
                seen.append(access.buffer)
        return tuple(seen)

    @property
    def has_data_dependent_bounds(self) -> bool:
        """True when any loop bound is only known at runtime."""
        return any(l.bound.is_data_dependent for l in self.loops)

    @property
    def has_early_exit(self) -> bool:
        """True when any loop may exit early."""
        return any(l.has_early_exit for l in self.loops)

    # ------------------------------------------------------------------
    # Quantitative evaluation (vectorized over work-groups)
    # ------------------------------------------------------------------

    def site_trips(
        self,
        site_loop: Optional[str],
        args: Mapping[str, object],
        unit_ids: np.ndarray,
    ) -> np.ndarray:
        """Execution count of a site attached to ``site_loop``, per unit.

        The count is the product of trip counts of the loop and all loops
        enclosing it; a site outside all loops executes once.
        """
        counts = np.ones(len(unit_ids))
        for loop in self.enclosing_loops(site_loop):
            counts = counts * loop.bound.trips(args, unit_ids)
        return counts

    def access_trips(
        self,
        access: "MemoryAccess",
        args: Mapping[str, object],
        unit_ids: np.ndarray,
    ) -> np.ndarray:
        """Execution count of an access site, per workload unit.

        An explicit ``scope`` multiplies exactly the named loops' trips
        (order independent); otherwise falls back to the nest prefix up to
        ``access.loop``.
        """
        if access.scope is None:
            return self.site_trips(access.loop, args, unit_ids)
        counts = np.ones(len(unit_ids))
        for name in access.scope:
            counts = counts * self.loop_named(name).bound.trips(args, unit_ids)
        return counts

    def innermost_trips(
        self, args: Mapping[str, object], unit_ids: np.ndarray
    ) -> np.ndarray:
        """Total innermost-loop executions per workload unit.

        This is what ``flops_per_trip`` multiplies.  With an empty nest the
        kernel body runs once per unit.
        """
        if not self.loops:
            return np.ones(len(unit_ids))
        return self.site_trips(self.loops[-1].name, args, unit_ids)

    def total_flops(
        self, args: Mapping[str, object], unit_ids: np.ndarray
    ) -> np.ndarray:
        """Arithmetic work per workload unit."""
        return (
            self.flops_fixed
            + self.flops_per_trip * self.innermost_trips(args, unit_ids)
        )

    def with_(self, **changes: object) -> "KernelIR":
        """Return a modified copy (transform helper)."""
        return replace(self, **changes)

    def with_note(self, note: str) -> "KernelIR":
        """Return a copy with a provenance note appended."""
        return replace(self, notes=self.notes + (note,))
