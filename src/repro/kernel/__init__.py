"""Kernel-based data-parallel programming model.

This subpackage models the programming abstractions that OpenCL / CUDA
provide and that DySel builds on: an NDRange decomposed into independent
work-groups (:mod:`~repro.kernel.ndrange`), typed device buffers
(:mod:`~repro.kernel.buffers`), a declarative kernel IR describing loop
nests and memory access patterns (:mod:`~repro.kernel.ir`), and kernel
variants that pair the IR with a real (numpy) functional implementation
(:mod:`~repro.kernel.kernel`).
"""

from .buffers import Buffer, MemorySpace
from .ir import (
    GATHER_STRIDE,
    AccessPattern,
    AtomicKind,
    KernelIR,
    Loop,
    LoopBound,
    MemoryAccess,
)
from .kernel import KernelSpec, KernelVariant, WorkRange
from .launch import LaunchConfig
from .ndrange import NDRange
from .signature import ArgSpec, KernelSignature

__all__ = [
    "GATHER_STRIDE",
    "AccessPattern",
    "ArgSpec",
    "AtomicKind",
    "Buffer",
    "KernelIR",
    "KernelSignature",
    "KernelSpec",
    "KernelVariant",
    "LaunchConfig",
    "Loop",
    "LoopBound",
    "MemoryAccess",
    "MemorySpace",
    "NDRange",
    "WorkRange",
]
