"""Exporters and audits for recorded trace events.

Three renderings of the same event list:

* :func:`chrome_trace` — the Chrome trace-event format (a JSON object
  with a ``traceEvents`` array of ``B``/``E`` duration pairs and ``i``
  instants), loadable in ``chrome://tracing`` and Perfetto.  One device
  cycle maps to one microsecond of trace time, so zooming reads directly
  in cycles.  Spans are packed onto non-overlapping lanes (one lane per
  profiled variant, as many eager lanes as chunks ever overlap), which
  keeps every lane's begin/end events properly nested.
* :func:`text_timeline` — a fixed-width ASCII timeline for terminals and
  logs; the Fig 4 sync-vs-async pictures, rendered from data.
* :func:`summarize` — counters: profiling-overhead fraction, eager-chunk
  utilization, cache hit rate, gate/plan demotions.

:func:`reconcile` is the audit the CLI and tests run: it checks that a
trace is internally consistent and that traced cycles and workload units
sum-reconcile with what the launch reported (``LaunchResult``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .events import EventKind, TraceEvent

#: Relative slack for float comparisons between event timestamps and
#: engine clock readings.
_REL_EPS = 1e-9
_ABS_EPS = 1e-6


def _close(a: float, b: float) -> bool:
    """Float equality with relative + absolute slack."""
    scale = max(abs(a), abs(b), 1.0)
    return abs(a - b) <= _ABS_EPS + _REL_EPS * scale


# ----------------------------------------------------------------------
# Lane layout (shared by the Chrome exporter and the text timeline)
# ----------------------------------------------------------------------


def _lane_group(event: TraceEvent) -> str:
    """Which lane family an event belongs to."""
    if event.kind is EventKind.PROFILE_SPAN:
        return f"profile {event.name}"
    if event.kind is EventKind.EAGER_CHUNK:
        return "eager"
    if event.kind is EventKind.REMAINDER_BATCH:
        return "batch"
    return "host"


def assign_lanes(events: Sequence[TraceEvent]) -> List[Tuple[TraceEvent, str]]:
    """Pack events onto named lanes so spans on one lane never overlap.

    Greedy interval partitioning per lane family: a span goes to the
    first lane of its family whose previous span has ended.  Instants all
    share their family's first lane (they cannot overlap anything).
    """
    ordered = sorted(
        events, key=lambda e: (e.start_cycles, e.end_cycles or e.start_cycles)
    )
    #: Per family: list of (lane name, busy-until).
    lanes: Dict[str, List[Tuple[str, float]]] = {}
    placed: List[Tuple[TraceEvent, str]] = []
    for event in ordered:
        family = _lane_group(event)
        family_lanes = lanes.setdefault(family, [])
        if not event.is_span:
            if not family_lanes:
                family_lanes.append((family, float("-inf")))
            placed.append((event, family_lanes[0][0]))
            continue
        assert event.end_cycles is not None
        for i, (name, busy_until) in enumerate(family_lanes):
            if event.start_cycles >= busy_until - _ABS_EPS:
                family_lanes[i] = (name, event.end_cycles)
                placed.append((event, name))
                break
        else:
            suffix = f" #{len(family_lanes)}" if family_lanes else ""
            name = f"{family}{suffix}"
            family_lanes.append((name, event.end_cycles))
            placed.append((event, name))
    return placed


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------


def _json_safe(value: object) -> object:
    """Coerce an event-args value to something JSON-serializable."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, Mapping):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return repr(value)


def chrome_trace(
    events: Sequence[TraceEvent], process_name: str = "dysel"
) -> Dict[str, object]:
    """Render events as a Chrome trace-event JSON object.

    Timestamps are device cycles, emitted as microseconds (the format's
    native unit) so one trace-viewer microsecond is one cycle.
    """
    placed = assign_lanes(events)
    lane_ids: Dict[str, int] = {}
    trace_events: List[Dict[str, object]] = []
    pid = 1
    for event, lane in placed:
        if lane not in lane_ids:
            lane_ids[lane] = len(lane_ids)
            trace_events.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": lane_ids[lane],
                    "name": "thread_name",
                    "args": {"name": lane},
                }
            )
        tid = lane_ids[lane]
        common = {
            "name": f"{event.kind.value}:{event.name}",
            "cat": event.kind.value,
            "pid": pid,
            "tid": tid,
        }
        args = {k: _json_safe(v) for k, v in event.args.items()}
        if event.is_span:
            assert event.end_cycles is not None
            trace_events.append(
                {**common, "ph": "B", "ts": event.start_cycles, "args": args}
            )
            trace_events.append(
                {**common, "ph": "E", "ts": event.end_cycles}
            )
        else:
            trace_events.append(
                {
                    **common,
                    "ph": "i",
                    "ts": event.start_cycles,
                    "s": "t",
                    "args": args,
                }
            )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "process": process_name,
            "time_unit": "device cycles (1 cycle = 1 us of trace time)",
            "event_count": len(events),
        },
    }


def write_chrome_trace(
    events: Sequence[TraceEvent], path: str, process_name: str = "dysel"
) -> None:
    """Serialize :func:`chrome_trace` output to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(events, process_name), handle, indent=1)
        handle.write("\n")


def load_chrome_trace(path: str) -> List[TraceEvent]:
    """Rebuild :class:`TraceEvent` objects from a written Chrome trace.

    The inverse of :func:`write_chrome_trace`, good enough to re-run
    :func:`reconcile` and :func:`summarize` on a trace file after the
    process that recorded it is gone (``python -m repro.obs reconcile``).
    ``B``/``E`` pairs are re-joined per lane (the exporter keeps each
    lane's spans non-overlapping, so a per-lane stack suffices); events
    come back sorted by start time with window boundaries ordered so
    launch windows re-pair exactly.
    """
    from .events import TraceError

    try:
        with open(path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except OSError as exc:
        raise TraceError(f"cannot read trace {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise TraceError(f"trace {path!r} is not valid JSON: {exc}") from exc
    raw_events = doc.get("traceEvents") if isinstance(doc, dict) else None
    if not isinstance(raw_events, list):
        raise TraceError(
            f"trace {path!r} has no 'traceEvents' array; not a Chrome "
            "trace written by repro.obs"
        )

    def parse(record: Mapping[str, object]) -> Tuple[EventKind, str]:
        cat = str(record.get("cat", ""))
        try:
            kind = EventKind(cat)
        except ValueError:
            raise TraceError(
                f"trace {path!r} contains unknown event kind {cat!r}"
            ) from None
        name = str(record.get("name", ""))
        prefix = f"{kind.value}:"
        if name.startswith(prefix):
            name = name[len(prefix):]
        return kind, name

    events: List[TraceEvent] = []
    open_spans: Dict[Tuple[object, object], List[Dict[str, object]]] = {}
    for record in raw_events:
        if not isinstance(record, dict):
            raise TraceError(f"trace {path!r}: event {record!r} not an object")
        phase = record.get("ph")
        if phase == "M":
            continue
        lane = (record.get("pid"), record.get("tid"))
        if phase == "i":
            kind, name = parse(record)
            events.append(
                TraceEvent(
                    kind,
                    name,
                    float(record.get("ts", 0.0)),  # type: ignore[arg-type]
                    args=record.get("args", {}),  # type: ignore[arg-type]
                )
            )
        elif phase == "B":
            open_spans.setdefault(lane, []).append(record)
        elif phase == "E":
            stack = open_spans.get(lane)
            if not stack:
                raise TraceError(
                    f"trace {path!r}: 'E' event at ts="
                    f"{record.get('ts')} closes nothing on lane {lane}"
                )
            begin = stack.pop()
            kind, name = parse(begin)
            events.append(
                TraceEvent(
                    kind,
                    name,
                    float(begin.get("ts", 0.0)),  # type: ignore[arg-type]
                    float(record.get("ts", 0.0)),  # type: ignore[arg-type]
                    args=begin.get("args", {}),  # type: ignore[arg-type]
                )
            )
        else:
            raise TraceError(
                f"trace {path!r}: unsupported phase {phase!r}"
            )
    for lane, stack in open_spans.items():
        if stack:
            raise TraceError(
                f"trace {path!r}: {len(stack)} unclosed span(s) on lane "
                f"{lane}"
            )

    def order(event: TraceEvent) -> Tuple[float, int]:
        # At equal timestamps a LAUNCH_END closes the earlier window
        # before the next LAUNCH_BEGIN opens, and a window's spans sort
        # inside its boundaries — the ordering reconcile() pairs by.
        if event.kind is EventKind.LAUNCH_END:
            rank = 0
        elif event.kind is EventKind.LAUNCH_BEGIN:
            rank = 1
        else:
            rank = 2
        return (event.start_cycles, rank)

    events.sort(key=order)
    return events


# ----------------------------------------------------------------------
# Text timeline
# ----------------------------------------------------------------------


def text_timeline(events: Sequence[TraceEvent], width: int = 72) -> str:
    """Fixed-width ASCII rendering: one row per lane, time left to right.

    Spans draw as ``[====]`` bars, instants as ``|`` ticks; the scale
    line maps columns back to cycles.
    """
    if not events:
        return "(no events)"
    placed = assign_lanes(events)
    t0 = min(e.start_cycles for e, _ in placed)
    t1 = max(e.end_cycles or e.start_cycles for e, _ in placed)
    span = max(t1 - t0, 1.0)

    def col(t: float) -> int:
        return min(width - 1, int((t - t0) / span * (width - 1)))

    lanes: Dict[str, List[str]] = {}
    order: List[str] = []
    for event, lane in placed:
        if lane not in lanes:
            lanes[lane] = [" "] * width
            order.append(lane)
        row = lanes[lane]
        if event.is_span:
            assert event.end_cycles is not None
            lo, hi = col(event.start_cycles), col(event.end_cycles)
            row[lo] = "["
            for i in range(lo + 1, hi):
                row[i] = "="
            row[hi] = "]" if hi > lo else row[lo]
        else:
            i = col(event.start_cycles)
            row[i] = "|" if row[i] == " " else row[i]

    label_width = max(len(name) for name in order)
    lines = [
        f"{name.ljust(label_width)} {''.join(lanes[name])}" for name in order
    ]
    lines.append(
        f"{''.ljust(label_width)} {t0:.0f} cycles {'·' * max(0, width - 30)} "
        f"{t1:.0f}"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Counters summary
# ----------------------------------------------------------------------


@dataclass
class TraceSummary:
    """Aggregate counters over one trace."""

    launches: int = 0
    profiled_launches: int = 0
    total_elapsed_cycles: float = 0.0
    profiling_latency_cycles: float = 0.0
    profile_spans: int = 0
    eager_chunks: int = 0
    eager_units: int = 0
    remainder_units: int = 0
    workload_units: int = 0
    cache_hits: int = 0
    cache_invalidations: int = 0
    gate_demotions: int = 0
    plan_demotions: int = 0
    selection_updates: int = 0
    host_polls: int = 0
    serve_enqueued: int = 0
    serve_admitted: int = 0
    lease_grants: int = 0
    lease_steals: int = 0
    store_hits: int = 0
    store_evictions: int = 0
    predictions: int = 0
    prediction_fallbacks: int = 0
    placements: int = 0
    split_launches: int = 0
    admissions: int = 0
    admission_rejects: int = 0
    deadline_misses: int = 0
    profile_deferrals: int = 0
    drift_suspects: int = 0
    drift_confirmations: int = 0
    reselections: int = 0
    dominance_prunes: int = 0
    faults_injected: int = 0
    fault_retries: int = 0
    quarantines: int = 0
    degraded_launches: int = 0
    cancelled_tasks: int = 0
    events_by_kind: Dict[str, int] = field(default_factory=dict)

    @property
    def profiling_overhead_fraction(self) -> float:
        """Fraction of launch wall time spent before selection was final."""
        if self.total_elapsed_cycles <= 0:
            return 0.0
        return self.profiling_latency_cycles / self.total_elapsed_cycles

    @property
    def eager_utilization(self) -> float:
        """Share of the traced workload processed by eager chunks."""
        if self.workload_units <= 0:
            return 0.0
        return self.eager_units / self.workload_units

    @property
    def cache_hit_rate(self) -> float:
        """Cache hits per launch."""
        if self.launches <= 0:
            return 0.0
        return self.cache_hits / self.launches

    def format(self) -> str:
        """Human-readable multi-line report."""
        lines = [
            f"launches: {self.launches} "
            f"({self.profiled_launches} profiled)",
            f"elapsed: {self.total_elapsed_cycles:.0f} cycles, "
            f"profiling latency: {self.profiling_latency_cycles:.0f} cycles "
            f"({100 * self.profiling_overhead_fraction:.2f}% of wall)",
            f"profile spans: {self.profile_spans}, "
            f"selection updates: {self.selection_updates}",
            f"eager: {self.eager_chunks} chunk(s), {self.eager_units} "
            f"unit(s) ({100 * self.eager_utilization:.2f}% of workload)",
            f"cache: {self.cache_hits} hit(s), "
            f"{self.cache_invalidations} invalidation(s), hit rate "
            f"{100 * self.cache_hit_rate:.1f}%",
            f"demotions: {self.gate_demotions} gate, "
            f"{self.plan_demotions} plan",
            f"host polls: {self.host_polls}",
        ]
        if self.faults_injected or self.quarantines or self.degraded_launches:
            lines.append(
                f"faults: {self.faults_injected} handled, "
                f"{self.fault_retries} retried, "
                f"{self.cancelled_tasks} task(s) cancelled; "
                f"{self.quarantines} quarantine(s), "
                f"{self.degraded_launches} degraded launch(es)"
            )
        if self.serve_enqueued or self.serve_admitted:
            lines.append(
                f"serving: {self.serve_enqueued} enqueued, "
                f"{self.serve_admitted} admitted; leases: "
                f"{self.lease_grants} granted, {self.lease_steals} stolen; "
                f"store: {self.store_hits} hit(s), "
                f"{self.store_evictions} eviction(s)"
            )
        if (
            self.drift_suspects
            or self.drift_confirmations
            or self.reselections
        ):
            lines.append(
                f"drift: {self.drift_suspects} suspect(s), "
                f"{self.drift_confirmations} confirmed, "
                f"{self.reselections} reselection(s)"
            )
        if self.placements or self.split_launches:
            lines.append(
                f"fleet: {self.placements} placement decision(s), "
                f"{self.split_launches} split launch(es)"
            )
        if self.dominance_prunes:
            lines.append(
                f"dominance: {self.dominance_prunes} pool prune(s) "
                "(statically dominated variants skipped profiling)"
            )
        if (
            self.admissions
            or self.admission_rejects
            or self.deadline_misses
            or self.profile_deferrals
        ):
            lines.append(
                f"qos: {self.admissions} admission(s), "
                f"{self.admission_rejects} reject(s), "
                f"{self.deadline_misses} deadline miss(es), "
                f"{self.profile_deferrals} profile(s) deferred"
            )
        return "\n".join(lines)


def summarize(events: Sequence[TraceEvent]) -> TraceSummary:
    """Fold a trace into :class:`TraceSummary` counters."""
    summary = TraceSummary()
    for event in events:
        kind = event.kind
        summary.events_by_kind[kind.value] = (
            summary.events_by_kind.get(kind.value, 0) + 1
        )
        if kind is EventKind.LAUNCH_BEGIN:
            summary.launches += 1
            summary.workload_units += int(
                event.args.get("workload_units", 0)  # type: ignore[arg-type]
            )
        elif kind is EventKind.LAUNCH_END:
            summary.total_elapsed_cycles += float(
                event.args.get("elapsed_cycles", 0.0)  # type: ignore[arg-type]
            )
            summary.profiling_latency_cycles += float(
                event.args.get("profiling_latency_cycles", 0.0)  # type: ignore[arg-type]
            )
            if event.args.get("profiled"):
                summary.profiled_launches += 1
        elif kind is EventKind.PROFILE_SPAN:
            summary.profile_spans += 1
        elif kind is EventKind.EAGER_CHUNK:
            summary.eager_chunks += 1
            summary.eager_units += int(event.args.get("units", 0))  # type: ignore[arg-type]
        elif kind is EventKind.REMAINDER_BATCH:
            summary.remainder_units += int(event.args.get("units", 0))  # type: ignore[arg-type]
        elif kind is EventKind.CACHE_HIT:
            summary.cache_hits += 1
        elif kind is EventKind.CACHE_INVALIDATE:
            summary.cache_invalidations += 1
        elif kind is EventKind.GATE_DECISION:
            if event.args.get("demoted"):
                summary.gate_demotions += 1
        elif kind is EventKind.PLAN_DEMOTION:
            summary.plan_demotions += 1
        elif kind is EventKind.SELECTION_UPDATE:
            summary.selection_updates += 1
        elif kind is EventKind.HOST_POLL:
            summary.host_polls += 1
        elif kind is EventKind.SERVE_ENQUEUE:
            summary.serve_enqueued += 1
        elif kind is EventKind.SERVE_ADMIT:
            summary.serve_admitted += 1
        elif kind is EventKind.PROFILE_LEASE_GRANT:
            summary.lease_grants += 1
        elif kind is EventKind.PROFILE_LEASE_STEAL:
            summary.lease_steals += 1
        elif kind is EventKind.STORE_HIT:
            summary.store_hits += 1
        elif kind is EventKind.STORE_EVICT:
            summary.store_evictions += 1
        elif kind is EventKind.PREDICTION:
            summary.predictions += 1
        elif kind is EventKind.PREDICTION_FALLBACK:
            summary.prediction_fallbacks += 1
        elif kind is EventKind.PLACEMENT:
            summary.placements += 1
        elif kind is EventKind.SPLIT_LAUNCH:
            summary.split_launches += 1
        elif kind is EventKind.DRIFT_SUSPECT:
            summary.drift_suspects += 1
        elif kind is EventKind.DRIFT_CONFIRMED:
            summary.drift_confirmations += 1
        elif kind is EventKind.RESELECTION:
            summary.reselections += 1
        elif kind is EventKind.DOMINANCE_PRUNE:
            summary.dominance_prunes += 1
        elif kind is EventKind.ADMISSION:
            if event.args.get("admitted", True):
                summary.admissions += 1
            else:
                summary.admission_rejects += 1
        elif kind is EventKind.DEADLINE_MISS:
            summary.deadline_misses += 1
        elif kind is EventKind.PROFILE_DEFERRED:
            summary.profile_deferrals += 1
        elif kind is EventKind.FAULT_INJECT:
            summary.faults_injected += 1
        elif kind is EventKind.FAULT_RETRY:
            summary.fault_retries += 1
        elif kind is EventKind.VARIANT_QUARANTINE:
            summary.quarantines += 1
        elif kind is EventKind.LAUNCH_DEGRADED:
            summary.degraded_launches += 1
        elif kind is EventKind.TASK_CANCEL:
            summary.cancelled_tasks += 1
    return summary


# ----------------------------------------------------------------------
# Reconciliation audit
# ----------------------------------------------------------------------


def _launch_windows(
    events: Sequence[TraceEvent],
) -> Tuple[List[Tuple[TraceEvent, TraceEvent]], List[str]]:
    """Pair LAUNCH_BEGIN/LAUNCH_END events, reporting mismatches."""
    problems: List[str] = []
    windows: List[Tuple[TraceEvent, TraceEvent]] = []
    open_begin: Optional[TraceEvent] = None
    for event in events:
        if event.kind is EventKind.LAUNCH_BEGIN:
            if open_begin is not None:
                problems.append(
                    f"launch {open_begin.name!r} at "
                    f"{open_begin.start_cycles:.0f} has no LAUNCH_END before "
                    "the next launch begins"
                )
            open_begin = event
        elif event.kind is EventKind.LAUNCH_END:
            if open_begin is None:
                problems.append(
                    f"LAUNCH_END for {event.name!r} at "
                    f"{event.start_cycles:.0f} has no matching LAUNCH_BEGIN"
                )
                continue
            windows.append((open_begin, event))
            open_begin = None
    if open_begin is not None:
        problems.append(
            f"launch {open_begin.name!r} at {open_begin.start_cycles:.0f} "
            "never ended"
        )
    return windows, problems


def reconcile(
    events: Sequence[TraceEvent],
    elapsed_cycles: Optional[float] = None,
    workload_units: Optional[int] = None,
) -> List[str]:
    """Audit a trace for internal and external consistency.

    Checks, per launch window (a LAUNCH_BEGIN/LAUNCH_END pair):

    1. begin/end events pair up, and the window length matches the
       ``elapsed_cycles`` the runtime reported in ``LAUNCH_END.args``;
    2. every profile/eager/remainder span lies inside its window;
    3. workload units sum-reconcile: productive profiling units + eager
       units + remainder units == the launch's ``workload_units``
       (fully-productive claims every profiled slice, the partial modes
       claim one — paper Table 1).

    With ``elapsed_cycles``/``workload_units`` given (e.g. from a
    :class:`~repro.core.runtime.LaunchResult`), the *last* window is also
    checked against those external numbers.  Returns a list of problem
    strings; empty means the trace reconciles.
    """
    windows, problems = _launch_windows(events)
    spans = [
        e
        for e in events
        if e.kind
        in (
            EventKind.PROFILE_SPAN,
            EventKind.EAGER_CHUNK,
            EventKind.REMAINDER_BATCH,
        )
    ]
    for begin, end in windows:
        label = f"launch {begin.name!r} @{begin.start_cycles:.0f}"
        window_elapsed = end.start_cycles - begin.start_cycles
        reported = float(end.args.get("elapsed_cycles", window_elapsed))  # type: ignore[arg-type]
        if not _close(window_elapsed, reported):
            problems.append(
                f"{label}: window spans {window_elapsed:.3f} cycles but "
                f"LAUNCH_END reports elapsed_cycles={reported:.3f}"
            )
        inside = [
            s
            for s in spans
            if begin.start_cycles - _ABS_EPS
            <= s.start_cycles
            <= end.start_cycles + _ABS_EPS
        ]
        for s in inside:
            assert s.end_cycles is not None
            if s.end_cycles > end.start_cycles + _ABS_EPS + _REL_EPS * max(
                abs(s.end_cycles), 1.0
            ):
                problems.append(
                    f"{label}: {s.kind.value} {s.name!r} ends at "
                    f"{s.end_cycles:.3f}, after the launch end "
                    f"{end.start_cycles:.3f}"
                )

        units = begin.args.get("workload_units")
        if units is None:
            continue
        units = int(units)  # type: ignore[arg-type]
        profile_spans = [s for s in inside if s.kind is EventKind.PROFILE_SPAN]
        mode = end.args.get("mode")
        if mode == "fully":
            claimed = sum(int(s.args.get("units", 0)) for s in profile_spans)  # type: ignore[arg-type]
        elif mode == "swap" and profile_spans:
            # Swap: all candidates share one slice privately; the winner's
            # copy is swapped in, so exactly one span's units commit.
            claimed = int(profile_spans[0].args.get("units", 0))  # type: ignore[arg-type]
        elif profile_spans:
            # Hybrid: only the productive candidate's slice commits.  If
            # it faulted (no productive span), the slice was re-run as a
            # repair batch and is accounted under REMAINDER_BATCH.  Spans
            # without a ``productive`` marker (hand-built or pre-fault
            # traces) count as productive, preserving the legacy rule of
            # claiming the first shared slice.
            productive = [
                s
                for s in profile_spans
                if bool(s.args.get("productive", True))
            ]
            claimed = (
                int(productive[0].args.get("units", 0))  # type: ignore[arg-type]
                if productive
                else 0
            )
        else:
            claimed = 0
        eager = sum(
            int(s.args.get("units", 0))  # type: ignore[arg-type]
            for s in inside
            if s.kind is EventKind.EAGER_CHUNK
        )
        remainder = sum(
            int(s.args.get("units", 0))  # type: ignore[arg-type]
            for s in inside
            if s.kind is EventKind.REMAINDER_BATCH
        )
        total = claimed + eager + remainder
        if total != units:
            problems.append(
                f"{label}: unit accounting mismatch — profiling claimed "
                f"{claimed} + eager {eager} + remainder {remainder} = "
                f"{total}, launch had {units}"
            )

    if windows and elapsed_cycles is not None:
        begin, end = windows[-1]
        window_elapsed = end.start_cycles - begin.start_cycles
        if not _close(window_elapsed, elapsed_cycles):
            problems.append(
                f"last launch window spans {window_elapsed:.3f} cycles but "
                f"the LaunchResult reports {elapsed_cycles:.3f}"
            )
    if windows and workload_units is not None:
        begin, _ = windows[-1]
        traced_units = begin.args.get("workload_units")
        if traced_units is not None and int(traced_units) != workload_units:  # type: ignore[arg-type]
            problems.append(
                f"last launch traced workload_units={traced_units} but the "
                f"LaunchResult covered {workload_units}"
            )
    return problems
