"""Runtime observability: structured launch events, tracing, exporters.

The paper's central claim is a *timeline* claim — micro-profiling overlaps
productive work so its overhead stays under ~5% (§2.4, §5.1) — yet
aggregate numbers like :class:`~repro.core.runtime.LaunchResult` cannot
show *where* cycles went inside one launch.  This package records what
actually happened on the engine timeline:

* :mod:`repro.obs.events` — the event vocabulary (``LaunchBegin``,
  ``GateDecision``, per-variant ``ProfileSpan``, ``SelectionUpdate``,
  ``EagerChunk``, ``RemainderBatch``, ``CacheHit``/``CacheInvalidate``,
  plus engine-level submit/poll/wait events);
* :mod:`repro.obs.tracer` — the :class:`Tracer` interface, a recording
  implementation, and the zero-overhead no-op default every hot path is
  wired to when ``ReproConfig.trace`` is off;
* :mod:`repro.obs.export` — exporters: Chrome trace-event JSON (loadable
  in ``chrome://tracing`` / Perfetto), a plain-text timeline, a counters
  summary, and the :func:`~repro.obs.export.reconcile` audit that checks
  traced cycles against a launch's ``elapsed_cycles``;
* ``python -m repro.obs`` — trace any example pool end to end and write
  ``trace.json`` (see :mod:`repro.obs.cli`).
"""

from .events import SPAN_KINDS, EventKind, TraceEvent
from .export import (
    TraceSummary,
    chrome_trace,
    load_chrome_trace,
    reconcile,
    summarize,
    text_timeline,
    write_chrome_trace,
)
from .tracer import NULL_TRACER, NullTracer, RecordingTracer, Tracer, make_tracer

__all__ = [
    "EventKind",
    "SPAN_KINDS",
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "RecordingTracer",
    "NULL_TRACER",
    "make_tracer",
    "TraceSummary",
    "chrome_trace",
    "load_chrome_trace",
    "write_chrome_trace",
    "text_timeline",
    "summarize",
    "reconcile",
]
