"""``python -m repro.obs`` — trace a launch, export a Chrome trace."""

from .cli import main

main()
