"""Tracer interface: how instrumented code reports events.

Hot paths (``ExecutionEngine.submit``/``poll``, the orchestration loops)
are traced through a :class:`Tracer` attribute that defaults to the
module-level :data:`NULL_TRACER`.  Call sites guard event construction
with ``if tracer.enabled:`` so the disabled configuration pays one
attribute load and one branch — nothing is allocated, formatted, or
stored (the <2% tier-1 wall-time budget of ISSUE 2).

:class:`RecordingTracer` appends events to an in-memory list; exporters
(:mod:`repro.obs.export`) turn that list into Chrome trace JSON, a text
timeline, or a counters summary.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from .events import EventKind, TraceEvent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine traces us)
    from ..config import ReproConfig
    from ..device.engine import TaskHandle


class Tracer:
    """No-op base tracer; also the interface recording tracers implement.

    ``enabled`` is a class attribute (not a property) so the hot-path
    guard is a plain attribute load.
    """

    enabled: bool = False

    def emit(self, event: TraceEvent) -> None:
        """Record one event (no-op here)."""

    def instant(
        self, kind: EventKind, name: str, at: float, **args: object
    ) -> None:
        """Record an instant event at host/device time ``at``."""

    def span(
        self,
        kind: EventKind,
        name: str,
        start: float,
        end: float,
        **args: object,
    ) -> None:
        """Record a span event covering ``[start, end]``."""

    def task_span(
        self, kind: EventKind, name: str, task: "TaskHandle", **args: object
    ) -> None:
        """Record a finished task's execution span.

        The span runs from the task's first work-group start to its last
        work-group end — the same interval the in-kernel clock
        instrumentation measures (engine docstring).
        """

    @property
    def events(self) -> Tuple[TraceEvent, ...]:
        """Everything recorded so far (empty for the no-op tracer)."""
        return ()


class NullTracer(Tracer):
    """The zero-overhead default: drops everything."""


class RecordingTracer(Tracer):
    """Collects events in memory, in emission order."""

    enabled = True

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        """Record one pre-built event."""
        self._events.append(event)

    def instant(
        self, kind: EventKind, name: str, at: float, **args: object
    ) -> None:
        """Record a zero-duration event at one clock reading."""
        self._events.append(
            TraceEvent(kind=kind, name=name, start_cycles=at, args=args)
        )

    def span(
        self,
        kind: EventKind,
        name: str,
        start: float,
        end: float,
        **args: object,
    ) -> None:
        """Record an event spanning ``[start, end]`` cycles."""
        self._events.append(
            TraceEvent(
                kind=kind,
                name=name,
                start_cycles=start,
                end_cycles=end,
                args=args,
            )
        )

    def task_span(
        self, kind: EventKind, name: str, task: "TaskHandle", **args: object
    ) -> None:
        """Record a span covering one engine task's execution window."""
        self.span(
            kind,
            name,
            task.first_start,
            task.last_end,
            units=len(task.units),
            start_unit=task.units.start,
            end_unit=task.units.end,
            work_groups=task.total_work_groups,
            **args,
        )

    @property
    def events(self) -> Tuple[TraceEvent, ...]:
        """Everything recorded so far, in emission order."""
        return tuple(self._events)

    def clear(self) -> None:
        """Drop everything recorded so far."""
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)


#: Shared no-op instance; safe because it holds no state.
NULL_TRACER = NullTracer()


def make_tracer(config: Optional["ReproConfig"]) -> Tracer:
    """The tracer a runtime/engine should use under ``config``.

    Recording when ``config.trace`` is set, the shared no-op otherwise.
    """
    if config is not None and config.trace:
        return RecordingTracer()
    return NULL_TRACER
