"""Command line interface: ``python -m repro.obs``.

Traces one example pool end to end: builds the pool's device, launches it
through :class:`~repro.core.runtime.DySelRuntime` with tracing enabled,
audits the recorded events against the launch result
(:func:`~repro.obs.export.reconcile`), and writes a Chrome trace-event
JSON file loadable in ``chrome://tracing`` / Perfetto.

Exit status:

* ``0`` — traced, reconciled, and exported;
* ``1`` — the trace failed reconciliation (a runtime bug: traced cycles
  or workload units do not add up to what the launch reported);
* ``2`` — usage error (unknown pool, oversized ``--units``, ...).
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import Optional, Sequence

from ..analyze.catalog import example_entries
from ..config import ReproConfig
from ..core.runtime import DySelRuntime
from ..errors import ReproError
from ..modes import OrchestrationFlow, ProfilingMode
from .export import (
    load_chrome_trace,
    reconcile,
    summarize,
    text_timeline,
    write_chrome_trace,
)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument schema."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Trace a DySel launch and export a Chrome trace.",
    )
    parser.add_argument(
        "--pool",
        metavar="SUBSTRING",
        help="trace the first example pool whose label contains SUBSTRING",
    )
    parser.add_argument(
        "--units",
        type=int,
        metavar="N",
        help="workload units to launch (default: the example's own size)",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=1,
        metavar="K",
        help="launches to trace; iterations after the first reuse the "
        "cached selection (profiling activation flag, paper §3.1)",
    )
    parser.add_argument(
        "--mode",
        choices=[m.value for m in ProfilingMode],
        help="profiling mode override (default: compiler recommendation)",
    )
    parser.add_argument(
        "--flow",
        choices=[f.value for f in OrchestrationFlow],
        default=OrchestrationFlow.ASYNC.value,
        help="orchestration flow (default: async, the paper's default)",
    )
    parser.add_argument(
        "--no-profiling",
        action="store_true",
        help="launch with the profiling activation flag off",
    )
    parser.add_argument(
        "--out",
        default="trace.json",
        metavar="PATH",
        help="Chrome trace output path (default: trace.json)",
    )
    parser.add_argument(
        "--text",
        action="store_true",
        help="also print an ASCII timeline of the trace",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list traceable pool labels and exit",
    )
    return parser


def run_reconcile(argv: Sequence[str]) -> int:
    """``python -m repro.obs reconcile TRACE.json [--text]``.

    Re-audits a previously written Chrome trace: loads the events back
    (:func:`~repro.obs.export.load_chrome_trace`), prints the summary,
    and runs the same :func:`~repro.obs.export.reconcile` checks the
    live tracing path runs — so CI can assert a benchmark's saved trace
    is internally consistent without re-running the benchmark.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs reconcile",
        description="Audit a written Chrome trace for consistency.",
    )
    parser.add_argument("trace", help="trace JSON written by repro.obs")
    parser.add_argument(
        "--text",
        action="store_true",
        help="also print an ASCII timeline of the trace",
    )
    args = parser.parse_args(argv)
    try:
        events = load_chrome_trace(args.trace)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"== {args.trace}: {len(events)} event(s) ==")
    print(summarize(events).format())
    if args.text:
        print()
        print(text_timeline(events))
    problems = reconcile(events)
    if problems:
        print(f"FAIL: trace does not reconcile ({len(problems)} problem(s))")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print("OK: trace reconciles")
    return 0


def run(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit status."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "reconcile":
        return run_reconcile(argv[1:])
    args = build_parser().parse_args(argv)
    config = dataclasses.replace(ReproConfig(), trace=True)
    entries = example_entries(config)
    if args.list:
        for label, entry in entries:
            print(
                f"{label}  ({entry.case.pool.name}, "
                f"{len(entry.case.pool.variants)} variants, "
                f"{entry.case.workload_units} units, {entry.device_kind})"
            )
        return 0
    if not args.pool:
        print("--pool SUBSTRING is required (see --list)", file=sys.stderr)
        return 2
    matches = [
        (label, entry) for label, entry in entries if args.pool in label
    ]
    if not matches:
        print(f"no pool label contains {args.pool!r}", file=sys.stderr)
        return 2
    label, entry = matches[0]
    if len(matches) > 1:
        others = ", ".join(m[0] for m in matches[1:])
        print(f"note: {args.pool!r} also matches {others}; tracing {label}")
    case = entry.case

    units = args.units if args.units is not None else case.workload_units
    if units < 1:
        print(f"--units must be >= 1, got {units}", file=sys.stderr)
        return 2
    if units > case.workload_units:
        print(
            f"--units {units} exceeds the example's buffers "
            f"({case.workload_units} units)",
            file=sys.stderr,
        )
        return 2

    device = entry.make_device(config)
    runtime = DySelRuntime(device, config)
    runtime.register_pool(case.pool)
    launch_args = case.fresh_args()
    mode = ProfilingMode(args.mode) if args.mode else None
    flow = OrchestrationFlow(args.flow)
    result = None
    for iteration in range(max(1, args.iterations)):
        profiling = not args.no_profiling and iteration == 0
        result = runtime.launch_kernel(
            case.pool.name,
            launch_args,
            units,
            profiling=profiling,
            mode=mode,
            flow=flow,
        )
    assert result is not None

    events = runtime.tracer.events
    print(f"== {label} on {device.spec.name} ==")
    print(
        f"selected {result.selected!r} "
        f"({'profiled' if result.profiled else 'not profiled'}); "
        f"{result.reason}"
    )
    print(summarize(events).format())
    if args.text:
        print()
        print(text_timeline(events))

    problems = reconcile(
        events,
        elapsed_cycles=result.elapsed_cycles,
        workload_units=units,
    )
    write_chrome_trace(events, args.out, process_name=label)
    print(f"\nwrote {len(events)} event(s) to {args.out}")
    if problems:
        print(f"FAIL: trace does not reconcile ({len(problems)} problem(s))")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print("OK: trace reconciles with the launch result")
    return 0


def main() -> None:
    """Console entry (exits the process)."""
    raise SystemExit(run())
