"""The trace-event vocabulary of the DySel runtime.

Every event carries device-clock timestamps (cycles, the unit the whole
simulator speaks).  Span events cover an interval on the timeline
(``ProfileSpan``, ``EagerChunk``, ``RemainderBatch``, host waits);
instant events mark a point (``LaunchBegin``, ``SelectionUpdate``,
cache traffic).  ``args`` holds kind-specific structured payload — the
exporters pass it through verbatim, so anything JSON-representable a
call site records is visible in ``chrome://tracing``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..errors import ReproError


class TraceError(ReproError):
    """Malformed trace event or inconsistent trace stream."""


class EventKind(enum.Enum):
    """What one :class:`TraceEvent` describes.

    Launch-level (emitted by :class:`~repro.core.runtime.DySelRuntime`):

    * ``LAUNCH_BEGIN`` / ``LAUNCH_END`` — instants bracketing one
      ``launch_kernel`` call; ``LAUNCH_END.args`` carries the outcome.
    * ``GATE_DECISION`` — the verifier gate resolved the requested
      (mode, flow), possibly demoting it.
    * ``PLAN_DEMOTION`` — an infeasible profiling plan was demoted
      (fully → hybrid, or profiling switched off) instead of raising.
    * ``CACHE_HIT`` / ``CACHE_INVALIDATE`` — selection-cache traffic.

    Orchestration-level (emitted by :mod:`repro.core.orchestrator`):

    * ``PROFILE_SPAN`` — one candidate's micro-profile, first work-group
      start to last work-group end.
    * ``SELECTION_UPDATE`` — the running best changed hands (or was
      seeded) after observing one measurement.
    * ``EAGER_CHUNK`` — one asynchronous eager chunk's execution span.
    * ``REMAINDER_BATCH`` — the remaining workload's batch span (also
      used for the whole-workload batch of profiling-off launches).

    Engine-level (emitted by :class:`~repro.device.engine.ExecutionEngine`):

    * ``TASK_SUBMIT`` — a kernel launch hit the driver.
    * ``HOST_POLL`` — one completion query (costs host query latency).
    * ``HOST_WAIT`` — the host blocked on a task / set of tasks.
    * ``BARRIER`` — a device-wide synchronize.
    * ``TASK_CANCEL`` — the host abandoned a task (hang cleanup).

    Fault-handling (emitted by the hardened runtime and orchestration
    flows; see :mod:`repro.faults` and ``docs/faults.md``):

    * ``FAULT_INJECT`` — a variant fault was observed and handled;
      ``args`` carries the fault kind, execution stage, and attempts.
    * ``FAULT_RETRY`` — a transient fault is being retried after backoff.
    * ``VARIANT_QUARANTINE`` — a variant crossed the fault threshold and
      was quarantined (barred from selection until parole).
    * ``LAUNCH_DEGRADED`` — profiling lost every candidate and the
      launch fell back to a profiling-off run.

    Serving-level (emitted by :class:`~repro.serve.scheduler.LaunchScheduler`
    on its own scheduler timeline, where "time" is a monotonically
    increasing admission sequence number, not device cycles):

    * ``SERVE_ENQUEUE`` — a request entered the scheduler.
    * ``SERVE_ADMIT`` — the request was admitted onto a device (it holds
      a stream lease from that device's pool).
    * ``PROFILE_LEASE_GRANT`` — this request won the right to micro-profile
      its (pool, device-kind, workload-class); concurrent requests for the
      same class run eagerly with the current best instead.
    * ``PROFILE_LEASE_STEAL`` — a lease that outlived its timeout (holder
      stalled or died) was reassigned to a new request.
    * ``STORE_HIT`` — a persisted selection served this request without
      profiling.
    * ``STORE_EVICT`` — a persisted selection was dropped (TTL expiry or
      registry invalidation).
    * ``PREDICTION`` — a cold workload class skipped its micro-profile:
      the selection predictor (:mod:`repro.predict`) chose the variant
      with confidence above threshold; ``args`` carries the class,
      variant, and confidence.  An instant, so predicted traces still
      reconcile cleanly.
    * ``PREDICTION_FALLBACK`` — the predictor was armed but this cold
      class paid the micro-profile anyway (untrained model, confidence
      below threshold, or the predicted variant rejected by a policy
      gate); ``args`` carries the reason and the confidence when one
      was computed.

    Drift-adaptation (emitted by whoever drives the
    :mod:`repro.drift` feedback loop — the scheduler on its sequence
    timeline, a standalone runtime on device cycles).  All three are
    instants, so a drifting trace still reconciles cleanly:

    * ``DRIFT_SUSPECT`` — a workload class's throughput crossed the
      Page–Hinkley threshold once; awaiting confirmation.
    * ``DRIFT_CONFIRMED`` — hysteresis confirmed the change; the stale
      selection was demoted and a re-profile is armed.
    * ``RESELECTION`` — a drift-armed re-profile published a fresh
      winner, closing the episode; ``args`` carries the stale and new
      variants.

    Fleet placement (emitted by :class:`~repro.serve.scheduler.LaunchScheduler`
    on its scheduler timeline when the fleet mixes device kinds; both are
    instants, so heterogeneous traces still reconcile cleanly):

    * ``PLACEMENT`` — the scheduler resolved the *device-kind* dimension
      of the selection tuple for one request; ``args`` carries the chosen
      kind, the placement reason (pinned / single kind / dynamic load /
      store-measured / static cost-bound), and the projected cost per
      candidate kind.
    * ``SPLIT_LAUNCH`` — one large launch was split into per-device
      work ranges and stitched back together; ``args`` carries the part
      ranges, the devices they ran on, and the unit partition.

    Serve QoS (emitted by :class:`~repro.serve.scheduler.LaunchScheduler`
    on its scheduler timeline when a :class:`~repro.serve.QoSConfig` is
    installed; all three are instants, so QoS traces still reconcile
    cleanly):

    * ``ADMISSION`` — the admission controller resolved one request:
      ``args`` carries the tenant, priority, queue depth, and whether it
      was admitted (``admitted=False`` rows are refusals that raised
      :class:`~repro.errors.AdmissionRejected`).
    * ``DEADLINE_MISS`` — a served request's fleet-cycle latency
      exceeded its deadline budget; ``args`` carries the tenant, the
      budget, and the observed latency.
    * ``PROFILE_DEFERRED`` — profiling backpressure postponed a
      micro-profile (or drift re-profile) lease for a cold class under
      overload; ``args`` carries the class, the queue pressure, and
      what was deferred.

    Static-analysis (emitted by the runtime when
    ``ReproConfig.analyze.dominance`` is on; an instant, so traces
    with pruning enabled still reconcile cleanly):

    * ``DOMINANCE_PRUNE`` — the static cost-bound analysis excluded
      variants from the micro-profiling candidate set; ``args`` carries
      the pruned and surviving variant names and the safety margin.
      Pruned variants stay in the correctness pool (quarantine,
      differential testing, and pinning still see them).
    """

    LAUNCH_BEGIN = "launch_begin"
    LAUNCH_END = "launch_end"
    GATE_DECISION = "gate_decision"
    PLAN_DEMOTION = "plan_demotion"
    CACHE_HIT = "cache_hit"
    CACHE_INVALIDATE = "cache_invalidate"
    PROFILE_SPAN = "profile_span"
    SELECTION_UPDATE = "selection_update"
    EAGER_CHUNK = "eager_chunk"
    REMAINDER_BATCH = "remainder_batch"
    TASK_SUBMIT = "task_submit"
    HOST_POLL = "host_poll"
    HOST_WAIT = "host_wait"
    BARRIER = "barrier"
    TASK_CANCEL = "task_cancel"
    FAULT_INJECT = "fault_inject"
    FAULT_RETRY = "fault_retry"
    VARIANT_QUARANTINE = "variant_quarantine"
    LAUNCH_DEGRADED = "launch_degraded"
    SERVE_ENQUEUE = "serve_enqueue"
    SERVE_ADMIT = "serve_admit"
    PROFILE_LEASE_GRANT = "profile_lease_grant"
    PROFILE_LEASE_STEAL = "profile_lease_steal"
    STORE_HIT = "store_hit"
    STORE_EVICT = "store_evict"
    PREDICTION = "prediction"
    PREDICTION_FALLBACK = "prediction_fallback"
    PLACEMENT = "placement"
    SPLIT_LAUNCH = "split_launch"
    DRIFT_SUSPECT = "drift_suspect"
    DRIFT_CONFIRMED = "drift_confirmed"
    RESELECTION = "reselection"
    DOMINANCE_PRUNE = "dominance_prune"
    ADMISSION = "admission"
    DEADLINE_MISS = "deadline_miss"
    PROFILE_DEFERRED = "profile_deferred"


#: Kinds that are always spans (the rest are instants).
SPAN_KINDS = frozenset(
    {
        EventKind.PROFILE_SPAN,
        EventKind.EAGER_CHUNK,
        EventKind.REMAINDER_BATCH,
        EventKind.HOST_WAIT,
        EventKind.BARRIER,
    }
)


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped observation of the runtime.

    ``name`` identifies the subject (kernel signature for launch-level
    events, variant name for profiling/execution spans).  A ``None``
    ``end_cycles`` marks an instant event.
    """

    kind: EventKind
    name: str
    start_cycles: float
    end_cycles: Optional[float] = None
    args: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.end_cycles is not None and self.end_cycles < self.start_cycles:
            raise TraceError(
                f"{self.kind.value} event {self.name!r} ends before it "
                f"starts ({self.end_cycles} < {self.start_cycles})"
            )

    @property
    def is_span(self) -> bool:
        """Whether this event covers an interval (vs. an instant)."""
        return self.end_cycles is not None

    @property
    def duration_cycles(self) -> float:
        """Span length in cycles (0 for instants)."""
        if self.end_cycles is None:
            return 0.0
        return self.end_cycles - self.start_cycles
