"""kmeans: cluster-assignment kernel (Rodinia).

Appears in Fig 8 (LC scheduling on CPU, 3 candidate schedules).  Each
work-item assigns one point to its nearest centroid; the loop nest over a
unit is (wi_p, c, d) — points, clusters, features.  Rodinia's kmeans is
iterative (assign, update, repeat), so DySel profiles the first iteration
only.

The 3 schedules match the paper's count for kmeans: the reduction over
``d`` cannot be hoisted outside the cluster loop it feeds, leaving
(wi_p, c, d), (c, wi_p, d) and (c, d, wi_p) as the legal interchange
family.  The last one strides through the feature matrix point-by-point —
the worst order (paper's ~2.95× bar).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Tuple

import numpy as np

from ..compiler.transforms.schedule import reorder_loops
from ..compiler.transforms.vectorize import auto_vectorize
from ..compiler.variants import VariantPool
from ..config import DEFAULT_CONFIG, ReproConfig
from ..kernel.buffers import Buffer
from ..kernel.ir import (
    AccessPattern,
    KernelIR,
    Loop,
    LoopBound,
    MemoryAccess,
)
from ..kernel.kernel import KernelSpec, KernelVariant
from ..kernel.signature import ArgSpec, KernelSignature
from .base import BenchmarkCase

#: Points per workload unit.
POINTS_PER_UNIT = 16
#: Feature dimensionality and cluster count (Rodinia-scale defaults).
FEATURES = 32
CLUSTERS = 8
#: Default point count.
DEFAULT_POINTS = 65536

#: The legal loop orders (see module docstring).
LEGAL_ORDERS: Tuple[Tuple[str, ...], ...] = (
    ("wi_p", "c", "d"),
    ("c", "wi_p", "d"),
    ("c", "d", "wi_p"),
)


def kmeans_signature() -> KernelSignature:
    """The kernel contract every kmeans variant implements."""
    return KernelSignature(
        "kmeans_assign",
        (
            ArgSpec("features"),
            ArgSpec("centroids"),
            ArgSpec("assign", is_output=True),
        ),
    )


def _executor(args: Mapping[str, object], unit_start: int, unit_end: int) -> None:
    """Assign each point in the unit range to its nearest centroid."""
    features = args["features"].data  # type: ignore[union-attr]
    centroids = args["centroids"].data  # type: ignore[union-attr]
    assign = args["assign"].data  # type: ignore[union-attr]
    p0 = unit_start * POINTS_PER_UNIT
    p1 = min(unit_end * POINTS_PER_UNIT, features.shape[0])
    if p0 >= p1:
        return
    block = features[p0:p1]
    # Squared euclidean distances via the expansion trick.
    cross = block @ centroids.T
    c_norm = np.sum(centroids * centroids, axis=1)
    distances = c_norm[None, :] - 2.0 * cross
    assign[p0:p1] = np.argmin(distances, axis=1).astype(np.int32)


def base_variant() -> KernelVariant:
    """Rodinia's assignment kernel: one work-item per point."""
    row_bytes = 4 * FEATURES
    block_bytes = float(POINTS_PER_UNIT * row_bytes)
    table_bytes = float(CLUSTERS * row_bytes)

    def block_footprint(args, unit_ids: np.ndarray) -> np.ndarray:
        return np.full(unit_ids.shape, block_bytes)

    def table_footprint(args, unit_ids: np.ndarray) -> np.ndarray:
        return np.full(unit_ids.shape, table_bytes)

    loops = (
        Loop("wi_p", LoopBound(static_trips=POINTS_PER_UNIT), is_work_item_loop=True),
        Loop("c", LoopBound(static_trips=CLUSTERS)),
        Loop("d", LoopBound(static_trips=FEATURES)),
    )
    accesses = (
        MemoryAccess(
            "features",
            False,
            AccessPattern.UNIT_STRIDE,
            4.0,
            loop="d",
            scope=("wi_p", "c", "d"),
            strides_by_loop=(("wi_p", row_bytes), ("c", 0), ("d", 4)),
            footprint_hint=block_footprint,
        ),
        MemoryAccess(
            "centroids",
            False,
            AccessPattern.BROADCAST,
            4.0,
            loop="d",
            scope=("wi_p", "c", "d"),
            strides_by_loop=(("wi_p", 0), ("c", row_bytes), ("d", 4)),
            footprint_hint=table_footprint,
        ),
        MemoryAccess(
            "assign",
            True,
            AccessPattern.UNIT_STRIDE,
            4.0,
            loop="wi_p",
            scope=("wi_p",),
            strides_by_loop=(("wi_p", 4), ("c", 0), ("d", 0)),
        ),
    )
    ir = KernelIR(
        loops=loops,
        accesses=accesses,
        flops_per_trip=3.0,
        divergence=0.0,
        work_group_threads=64,
        notes=("kmeans assignment (one work-item per point)",),
    )
    return KernelVariant(
        name="assign",
        ir=ir,
        executor=_executor,
        wa_factor=1,
        work_group_size=64,
        description="nearest-centroid assignment",
    )


def make_args_factory(
    points: int = DEFAULT_POINTS, config: ReproConfig = DEFAULT_CONFIG
) -> Callable[[], Dict[str, object]]:
    """Argument factory with fixed random points/centroids."""
    rng = config.rng("kmeans", points)
    features = rng.standard_normal((points, FEATURES)).astype(np.float32)
    centroids = rng.standard_normal((CLUSTERS, FEATURES)).astype(np.float32)

    def make_args() -> Dict[str, object]:
        return {
            "features": Buffer("features", features, writable=False),
            "centroids": Buffer("centroids", centroids, writable=False),
            "assign": Buffer("assign", np.full(points, -1, dtype=np.int32)),
        }

    return make_args


def make_checker(points: int = DEFAULT_POINTS, config: ReproConfig = DEFAULT_CONFIG):
    """Output validator against a vectorized argmin reference."""
    rng = config.rng("kmeans", points)
    features = rng.standard_normal((points, FEATURES)).astype(np.float32)
    centroids = rng.standard_normal((CLUSTERS, FEATURES)).astype(np.float32)
    cross = features @ centroids.T
    c_norm = np.sum(centroids * centroids, axis=1)
    expected = np.argmin(c_norm[None, :] - 2.0 * cross, axis=1)

    def check(args: Mapping[str, object]) -> bool:
        assign = args["assign"].data  # type: ignore[union-attr]
        return bool(np.array_equal(assign, expected))

    return check


def workload_units(points: int = DEFAULT_POINTS) -> int:
    """Point blocks of one launch."""
    return (points + POINTS_PER_UNIT - 1) // POINTS_PER_UNIT


def schedule_family(points: int = DEFAULT_POINTS) -> List:
    """(order, variant) pairs for the 3 legal schedules."""
    base = base_variant()
    family = []
    for order in LEGAL_ORDERS:
        label = ">".join(order)
        family.append(
            (order, auto_vectorize(reorder_loops(base, order, label=label)))
        )
    return family


def schedule_case(
    points: int = DEFAULT_POINTS,
    config: ReproConfig = DEFAULT_CONFIG,
    iterations: int = 1,
) -> BenchmarkCase:
    """Fig 8: the 3 legal loop orders on the CPU."""
    variants = tuple(variant for _, variant in schedule_family(points))
    pool = VariantPool(
        spec=KernelSpec(signature=kmeans_signature()),
        variants=variants,
    )
    return BenchmarkCase(
        name="kmeans/cpu/schedules",
        pool=pool,
        make_args=make_args_factory(points, config),
        workload_units=workload_units(points),
        iterations=iterations,
        check=make_checker(points, config),
        notes="Case Study I: LC scheduling, CPU",
    )
