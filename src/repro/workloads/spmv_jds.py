"""spmv-jds: sparse matrix-vector multiply on JDS (Parboil).

The jagged-diagonal format stores the j-th nonzeros of all (length-sorted)
rows contiguously, so walking rows at a fixed diagonal is unit-stride —
the layout GPUs coalesce and CPU vectorizers stream.  It appears in:

* **Fig 1** — Intel vectorizer width choice: the kernel exercises control
  divergence (rows drop out of long diagonals), so the heuristic goes
  8-wide while narrower code wins by ~1.24×.
* **Fig 8** — LC scheduling on CPU: 2 schedules (diagonal-major "DFO" vs
  row-major "BFO").
* **Fig 10** — mixed optimizations: four GPU versions crossing
  {unroll+prefetch} × {texture placement of x}; texture-only is best on
  Kepler and unroll+prefetch is redundant on top of it (DySel picks the
  second-best at 0.8% cost, the paper's one imperfect selection).  The two
  CPU versions are the base kernel and a port of the GPU-optimized one,
  whose layout assumptions collapse on the cache hierarchy.

The **workload unit** is a block of 32 sorted rows.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Mapping

import numpy as np

from ..compiler.transforms.placement import place
from ..compiler.transforms.prefetch import add_prefetch
from ..compiler.transforms.schedule import reorder_loops
from ..compiler.transforms.unroll import unroll
from ..compiler.transforms.vectorize import auto_vectorize, vectorize
from ..compiler.variants import VariantPool
from ..config import DEFAULT_CONFIG, ReproConfig
from ..kernel.buffers import Buffer, MemorySpace
from ..kernel.ir import (
    GATHER_STRIDE,
    AccessPattern,
    KernelIR,
    Loop,
    LoopBound,
    MemoryAccess,
)
from ..kernel.kernel import KernelSpec, KernelVariant
from ..kernel.signature import ArgSpec, KernelSignature
from .base import BenchmarkCase
from .matrices import JdsMatrix, csr_to_jds, random_csr

#: Rows per workload unit.
ROWS_PER_UNIT = 32
#: Default matrix dimension (random 1% CSR converted to JDS).
DEFAULT_SIZE = 4096


def jds_signature() -> KernelSignature:
    """The kernel contract every spmv-jds variant implements."""
    return KernelSignature(
        "spmv_jds",
        (
            ArgSpec("matrix", is_buffer=False),
            ArgSpec("data"),
            ArgSpec("col"),
            ArgSpec("x"),
            ArgSpec("y", is_output=True),
        ),
    )


def _executor(args: Mapping[str, object], unit_start: int, unit_end: int) -> None:
    """y[original rows] = A[sorted rows in range] · x."""
    matrix: JdsMatrix = args["matrix"]  # type: ignore[assignment]
    data = args["data"].data  # type: ignore[union-attr]
    col = args["col"].data  # type: ignore[union-attr]
    x = args["x"].data  # type: ignore[union-attr]
    y = args["y"].data  # type: ignore[union-attr]
    r0 = unit_start * ROWS_PER_UNIT
    r1 = min(unit_end * ROWS_PER_UNIT, matrix.rows)
    if r0 >= r1:
        return
    accum = np.zeros(r1 - r0, dtype=np.float32)
    max_nnz = int(matrix.row_nnz[r0]) if r0 < len(matrix.row_nnz) else 0
    for j in range(max_nnz):
        rows_in_diag = int(matrix.diag_rows[j])
        if rows_in_diag <= r0:
            break
        hi = min(rows_in_diag, r1)
        lo_off = int(matrix.diag_ptr[j])
        seg = slice(lo_off + r0, lo_off + hi)
        accum[: hi - r0] += (data[seg] * x[col[seg]]).astype(np.float32)
    y[matrix.perm[r0:r1]] = accum


def _diag_trips(args: Mapping[str, object], unit_ids: np.ndarray) -> np.ndarray:
    """Mean diagonals (nonzeros) per row of each unit's rows."""
    matrix: JdsMatrix = args["matrix"]  # type: ignore[assignment]
    rows = matrix.rows
    sums = np.zeros(len(unit_ids))
    for index, unit in enumerate(np.asarray(unit_ids)):
        lo = int(unit) * ROWS_PER_UNIT
        hi = min(lo + ROWS_PER_UNIT, rows)
        sums[index] = float(np.mean(matrix.row_nnz[lo:hi])) if hi > lo else 0.0
    return np.maximum(sums, 1.0)


def _nnz_footprint(args: Mapping[str, object], unit_ids: np.ndarray) -> np.ndarray:
    """Bytes of data/col a unit touches."""
    matrix: JdsMatrix = args["matrix"]  # type: ignore[assignment]
    return 4.0 * ROWS_PER_UNIT * _diag_trips(args, unit_ids)


def base_variant(device_kind: str) -> KernelVariant:
    """Parboil's base JDS kernel: one work-item per (sorted) row.

    The canonical order is (jd, wi_r): walk diagonals outermost, rows
    innermost — the layout's intended streaming order, coalesced on GPU
    and unit-stride on CPU.
    """
    loops = (
        Loop(
            "jd",
            LoopBound(evaluator=_diag_trips, description="jagged diagonals"),
        ),
        Loop("wi_r", LoopBound(static_trips=ROWS_PER_UNIT), is_work_item_loop=True),
    )
    stream = (
        AccessPattern.COALESCED
        if device_kind == "gpu"
        else AccessPattern.UNIT_STRIDE
    )
    accesses = (
        MemoryAccess(
            "data",
            False,
            stream,
            4.0,
            loop="wi_r",
            scope=("jd", "wi_r"),
            strides_by_loop=(("jd", GATHER_STRIDE), ("wi_r", 4)),
            footprint_hint=_nnz_footprint,
        ),
        MemoryAccess(
            "col",
            False,
            stream,
            4.0,
            loop="wi_r",
            scope=("jd", "wi_r"),
            strides_by_loop=(("jd", GATHER_STRIDE), ("wi_r", 4)),
            footprint_hint=_nnz_footprint,
        ),
        MemoryAccess(
            "x",
            False,
            AccessPattern.GATHER,
            4.0,
            loop="wi_r",
            scope=("jd", "wi_r"),
            strides_by_loop=(("jd", GATHER_STRIDE), ("wi_r", GATHER_STRIDE)),
            working_set_hint="x",
        ),
        MemoryAccess(
            "y",
            True,
            stream,
            4.0,
            loop="wi_r",
            scope=("wi_r",),
            strides_by_loop=(("jd", 0), ("wi_r", 4)),
        ),
    )
    ir = KernelIR(
        loops=loops,
        accesses=accesses,
        flops_per_trip=2.0,
        # Rows drop out of long diagonals: divergence among work-items.
        divergence=0.3,
        work_group_threads=ROWS_PER_UNIT,
        notes=("base JDS spmv (one work-item per sorted row)",),
    )
    return KernelVariant(
        name="base",
        ir=ir,
        executor=_executor,
        wa_factor=1,
        work_group_size=ROWS_PER_UNIT,
        description="diagonal-major JDS walk",
    )


_MATRIX_CACHE: Dict[int, JdsMatrix] = {}


def get_matrix(size: int, config: ReproConfig = DEFAULT_CONFIG) -> JdsMatrix:
    """Random 1% CSR converted to JDS, cached per size."""
    if size not in _MATRIX_CACHE:
        _MATRIX_CACHE[size] = csr_to_jds(random_csr(size, size, 0.01, config))
    return _MATRIX_CACHE[size]


def make_args_factory(
    matrix: JdsMatrix, config: ReproConfig = DEFAULT_CONFIG
) -> Callable[[], Dict[str, object]]:
    """Argument factory binding a JDS matrix and a fresh output vector."""
    rng = config.rng("spmv_jds_x", matrix.label)
    x_data = rng.standard_normal(matrix.shape[1]).astype(np.float32)

    def make_args() -> Dict[str, object]:
        return {
            "matrix": matrix,
            "data": Buffer("data", matrix.data, writable=False),
            "col": Buffer("col", matrix.indices, writable=False),
            "x": Buffer("x", x_data, writable=False),
            "y": Buffer("y", np.zeros(matrix.rows, dtype=np.float32)),
        }

    return make_args


def make_checker(matrix: JdsMatrix, config: ReproConfig = DEFAULT_CONFIG):
    """Output validator against the JDS reference multiply."""
    rng = config.rng("spmv_jds_x", matrix.label)
    x_data = rng.standard_normal(matrix.shape[1]).astype(np.float32)
    expected = matrix.multiply(x_data)

    def check(args: Mapping[str, object]) -> bool:
        y = args["y"].data  # type: ignore[union-attr]
        return bool(np.allclose(y, expected, rtol=1e-4, atol=1e-4))

    return check


def workload_units(matrix: JdsMatrix) -> int:
    """Row blocks of one launch."""
    return (matrix.rows + ROWS_PER_UNIT - 1) // ROWS_PER_UNIT


def vectorization_case(
    size: int = DEFAULT_SIZE, config: ReproConfig = DEFAULT_CONFIG
) -> BenchmarkCase:
    """Fig 1: scalar / 4-way / 8-way on the CPU (divergent kernel)."""
    matrix = get_matrix(size, config)
    base = base_variant("cpu")
    variants = tuple(vectorize(base, width) for width in (1, 4, 8))
    pool = VariantPool(
        spec=KernelSpec(signature=jds_signature()),
        variants=variants,
    )
    return BenchmarkCase(
        name="spmv-jds/cpu/vectorization",
        pool=pool,
        make_args=make_args_factory(matrix, config),
        workload_units=workload_units(matrix),
        check=make_checker(matrix, config),
        notes="Fig 1: Intel vectorizer width study",
    )


def schedule_family(size: int = DEFAULT_SIZE, config: ReproConfig = DEFAULT_CONFIG):
    """The 2 schedules (diagonal-major vs row-major) for LC."""
    base = base_variant("cpu")
    return [
        (
            ("jd", "wi_r"),
            auto_vectorize(reorder_loops(base, ("jd", "wi_r"), label="BFO")),
        ),
        (
            ("wi_r", "jd"),
            auto_vectorize(reorder_loops(base, ("wi_r", "jd"), label="DFO")),
        ),
    ]


def schedule_case(
    size: int = DEFAULT_SIZE,
    config: ReproConfig = DEFAULT_CONFIG,
    iterations: int = 1,
) -> BenchmarkCase:
    """Fig 8: the 2 schedules on the CPU."""
    matrix = get_matrix(size, config)
    variants = tuple(variant for _, variant in schedule_family(size, config))
    pool = VariantPool(
        spec=KernelSpec(signature=jds_signature()),
        variants=variants,
    )
    return BenchmarkCase(
        name="spmv-jds/cpu/schedules",
        pool=pool,
        make_args=make_args_factory(matrix, config),
        workload_units=workload_units(matrix),
        iterations=iterations,
        check=make_checker(matrix, config),
        notes="Case Study I: LC scheduling, CPU",
    )


def gpu_mixed_variants() -> List[KernelVariant]:
    """The four Parboil GPU versions: {u+p} × {texture} off the base."""
    base = base_variant("gpu")
    with_up = add_prefetch(unroll(base, 2, label="unroll2"), label="prefetch")
    with_tex = place(base, {"x": MemorySpace.TEXTURE}, label="texture")
    with_all = place(
        add_prefetch(unroll(base, 2, label="unroll2"), label="prefetch"),
        {"x": MemorySpace.TEXTURE},
        label="texture",
    )
    return [base, with_up, with_tex, with_all]


def cpu_mixed_variants() -> List[KernelVariant]:
    """The two CPU versions: base, and the GPU-optimized port.

    The port keeps the GPU version's warp-striped layout walk, which
    lowers to a strided traversal on the CPU, plus its scratchpad staging
    — the combination behind Fig 10a's large spmv-jds slowdown.
    """
    base = auto_vectorize(base_variant("cpu"))
    port = base_variant("cpu")
    accesses = []
    for access in port.ir.accesses:
        if access.buffer in ("data", "col"):
            accesses.append(
                dataclasses.replace(
                    access,
                    pattern=AccessPattern.STRIDED,
                    stride_bytes=128,
                )
            )
        else:
            accesses.append(access)
    port_ir = port.ir.with_(
        accesses=tuple(accesses),
        scratchpad_bytes=4 * ROWS_PER_UNIT * 4,
        uses_barrier=True,
    ).with_note("GPU-optimized port (warp-striped walk + scratchpad)")
    port = dataclasses.replace(port, name="gpu-port", ir=port_ir)
    return [base, port]


def mixed_case(
    device_kind: str,
    size: int = DEFAULT_SIZE,
    config: ReproConfig = DEFAULT_CONFIG,
    iterations: int = 1,
) -> BenchmarkCase:
    """Fig 10: Parboil's version pools (2 on CPU, 4 on GPU)."""
    matrix = get_matrix(size, config)
    if device_kind == "gpu":
        variants = tuple(gpu_mixed_variants())
    else:
        variants = tuple(cpu_mixed_variants())
    pool = VariantPool(
        spec=KernelSpec(signature=jds_signature()),
        variants=variants,
    )
    return BenchmarkCase(
        name=f"spmv-jds/{device_kind}/mixed",
        pool=pool,
        make_args=make_args_factory(matrix, config),
        workload_units=workload_units(matrix),
        iterations=iterations,
        check=make_checker(matrix, config),
        notes="Case Study III: mixed compile-time optimizations",
    )
