"""Sparse matrix substrate: CSR and JDS formats, evaluation inputs.

The evaluation's input-dependent experiments hinge on two matrices
(paper §4.1, §4.4):

* a **random** sparse matrix (SHOC's default: uniformly random nonzeros,
  ~1% density) whose rows hold many scattered nonzeros — in-kernel loops
  run long and the dense-vector gather has poor locality;
* a **diagonal** (banded) matrix with a single nonzero per row — in-kernel
  loops run once and the gather is perfectly local.

Besides CSR, spmv-jds uses the JDS (jagged diagonal) format Parboil's
benchmark employs: rows sorted by length and stored diagonal-major so
work-items can stream column slices.

Block statistics (per-block nnz sums/maxima, column spans) are what the
IR's data-dependent evaluators read; they are precomputed once per
(matrix, block size) and cached on the matrix object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from ..config import DEFAULT_CONFIG, ReproConfig
from ..errors import WorkloadError


@dataclass
class BlockStats:
    """Per-block row statistics driving data-dependent IR evaluators."""

    rows_per_block: int
    #: Total nonzeros per block.
    nnz_sum: np.ndarray
    #: Maximum row length per block.
    nnz_max: np.ndarray
    #: Mean row length per block.
    nnz_mean: np.ndarray
    #: Byte span of the dense-vector columns a block touches (gather
    #: locality: tiny for banded matrices, ~the whole vector for random).
    x_span_bytes: np.ndarray


@dataclass
class CsrMatrix:
    """Compressed-sparse-row matrix (float32 data, int32 indices)."""

    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    shape: Tuple[int, int]
    label: str = "csr"
    _stats: Dict[int, BlockStats] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        rows, _cols = self.shape
        if len(self.indptr) != rows + 1:
            raise WorkloadError(
                f"matrix {self.label!r}: indptr length {len(self.indptr)} "
                f"!= rows + 1 ({rows + 1})"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.indices):
            raise WorkloadError(f"matrix {self.label!r}: malformed indptr")
        if len(self.indices) != len(self.data):
            raise WorkloadError(
                f"matrix {self.label!r}: indices/data length mismatch"
            )

    @property
    def rows(self) -> int:
        """Number of rows."""
        return self.shape[0]

    @property
    def cols(self) -> int:
        """Number of columns."""
        return self.shape[1]

    @property
    def nnz(self) -> int:
        """Number of stored nonzeros."""
        return int(len(self.data))

    @property
    def row_nnz(self) -> np.ndarray:
        """Row lengths."""
        return np.diff(self.indptr)

    def multiply(self, x: np.ndarray) -> np.ndarray:
        """Reference y = A·x (float32)."""
        y = np.zeros(self.rows, dtype=np.float32)
        # Segmented reduction; float32 accumulation matches the kernels.
        products = self.data * x[self.indices]
        row_ids = np.repeat(
            np.arange(self.rows), self.row_nnz.astype(np.int64)
        )
        np.add.at(y, row_ids, products.astype(np.float32))
        return y

    def block_stats(self, rows_per_block: int) -> BlockStats:
        """Per-block statistics for ``rows_per_block``-row blocks (cached)."""
        if rows_per_block < 1:
            raise WorkloadError(
                f"rows_per_block must be >= 1, got {rows_per_block}"
            )
        cached = self._stats.get(rows_per_block)
        if cached is not None:
            return cached
        rows = self.rows
        num_blocks = (rows + rows_per_block - 1) // rows_per_block
        row_nnz = self.row_nnz.astype(np.int64)
        nnz_sum = np.zeros(num_blocks, dtype=np.int64)
        nnz_max = np.zeros(num_blocks, dtype=np.int64)
        x_span = np.zeros(num_blocks, dtype=np.int64)
        starts = np.arange(num_blocks) * rows_per_block
        boundaries = self.indptr[
            np.minimum(np.arange(num_blocks + 1) * rows_per_block, rows)
        ]
        nnz_sum = np.diff(boundaries)
        for block in range(num_blocks):
            lo = starts[block]
            hi = min(lo + rows_per_block, rows)
            lengths = row_nnz[lo:hi]
            nnz_max[block] = int(lengths.max()) if lengths.size else 0
            cols = self.indices[self.indptr[lo] : self.indptr[hi]]
            if cols.size:
                x_span[block] = (int(cols.max()) - int(cols.min()) + 1) * 4
        stats = BlockStats(
            rows_per_block=rows_per_block,
            nnz_sum=nnz_sum.astype(float),
            nnz_max=nnz_max.astype(float),
            nnz_mean=nnz_sum / max(1, rows_per_block),
            x_span_bytes=x_span.astype(float),
        )
        self._stats[rows_per_block] = stats
        return stats


@dataclass
class JdsMatrix:
    """Jagged-diagonal-storage matrix (Parboil's spmv-jds layout).

    Rows are sorted by decreasing length; the j-th nonzeros of all rows
    form one "jagged diagonal" stored contiguously, so consecutive rows'
    j-th elements are adjacent in memory.
    """

    #: Row permutation: jds row r corresponds to original row perm[r].
    perm: np.ndarray
    #: Start offset of each jagged diagonal in data/indices.
    diag_ptr: np.ndarray
    #: Rows participating in each diagonal (non-increasing).
    diag_rows: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    shape: Tuple[int, int]
    #: Sorted row lengths (per jds row).
    row_nnz: np.ndarray
    label: str = "jds"

    @property
    def rows(self) -> int:
        """Number of rows."""
        return self.shape[0]

    @property
    def max_row_nnz(self) -> int:
        """Longest row (number of jagged diagonals)."""
        return int(self.row_nnz[0]) if len(self.row_nnz) else 0

    def multiply(self, x: np.ndarray) -> np.ndarray:
        """Reference y = A·x in the original row order."""
        y_sorted = np.zeros(self.rows, dtype=np.float32)
        for j in range(len(self.diag_ptr) - 1):
            lo, hi = int(self.diag_ptr[j]), int(self.diag_ptr[j + 1])
            count = hi - lo
            y_sorted[:count] += (
                self.data[lo:hi] * x[self.indices[lo:hi]]
            ).astype(np.float32)
        y = np.zeros(self.rows, dtype=np.float32)
        y[self.perm] = y_sorted
        return y


def csr_to_jds(matrix: CsrMatrix) -> JdsMatrix:
    """Convert CSR to JDS (sort rows by length, store diagonal-major)."""
    row_nnz = matrix.row_nnz.astype(np.int64)
    perm = np.argsort(-row_nnz, kind="stable")
    sorted_nnz = row_nnz[perm]
    max_nnz = int(sorted_nnz[0]) if len(sorted_nnz) else 0

    diag_ptr = [0]
    data_parts = []
    index_parts = []
    diag_rows = []
    for j in range(max_nnz):
        participating = int(np.searchsorted(-sorted_nnz, -(j + 1), side="right"))
        diag_rows.append(participating)
        rows = perm[:participating]
        offsets = matrix.indptr[rows] + j
        data_parts.append(matrix.data[offsets])
        index_parts.append(matrix.indices[offsets])
        diag_ptr.append(diag_ptr[-1] + participating)
    return JdsMatrix(
        perm=perm,
        diag_ptr=np.asarray(diag_ptr, dtype=np.int64),
        diag_rows=np.asarray(diag_rows, dtype=np.int64),
        indices=(
            np.concatenate(index_parts)
            if index_parts
            else np.zeros(0, dtype=matrix.indices.dtype)
        ),
        data=(
            np.concatenate(data_parts)
            if data_parts
            else np.zeros(0, dtype=matrix.data.dtype)
        ),
        shape=matrix.shape,
        row_nnz=sorted_nnz,
        label=f"{matrix.label}-jds",
    )


def random_csr(
    rows: int = 4096,
    cols: int = 4096,
    density: float = 0.01,
    config: ReproConfig = DEFAULT_CONFIG,
) -> CsrMatrix:
    """SHOC-style random sparse matrix (default 1% density).

    The paper uses 16k×16k; the default here is 4k×4k to keep simulation
    fast — same regime (long rows, whole-vector gather working set).
    Experiments that need the paper's exact size pass ``rows=cols=16384``.
    """
    if not 0 < density <= 1:
        raise WorkloadError(f"density must be in (0, 1], got {density}")
    rng = config.rng("random_csr", rows, cols, density)
    per_row = rng.binomial(cols, density, size=rows).astype(np.int64)
    per_row = np.maximum(per_row, 1)
    indptr = np.zeros(rows + 1, dtype=np.int64)
    np.cumsum(per_row, out=indptr[1:])
    indices = np.empty(indptr[-1], dtype=np.int32)
    for r in range(rows):
        lo, hi = indptr[r], indptr[r + 1]
        indices[lo:hi] = np.sort(
            rng.choice(cols, size=hi - lo, replace=False)
        ).astype(np.int32)
    data = rng.standard_normal(indptr[-1]).astype(np.float32)
    return CsrMatrix(
        indptr=indptr,
        indices=indices,
        data=data,
        shape=(rows, cols),
        label=f"random{rows}x{cols}@{density}",
    )


def banded_random_csr(
    rows: int = 8192,
    density: float = 0.01,
    config: ReproConfig = DEFAULT_CONFIG,
) -> CsrMatrix:
    """Half random, half diagonal: a heterogeneous matrix.

    The top half has SHOC-random rows (many scattered nonzeros, the
    vector kernel's regime); the bottom half is a diagonal band (single
    nonzeros, the scalar kernel's regime).  No single pure variant is
    best everywhere — the input the paper's future-work *mixed execution*
    idea (§4.1) is about.
    """
    half = rows // 2
    top = random_csr(half, rows, density, config)
    indptr = np.concatenate(
        [top.indptr, top.indptr[-1] + np.arange(1, rows - half + 1)]
    ).astype(np.int64)
    indices = np.concatenate(
        [top.indices, np.arange(half, rows, dtype=np.int32)]
    )
    data = np.concatenate(
        [top.data, np.full(rows - half, 2.0, dtype=np.float32)]
    )
    return CsrMatrix(
        indptr=indptr,
        indices=indices,
        data=data,
        shape=(rows, rows),
        label=f"banded-random{rows}@{density}",
    )


def diagonal_csr(rows: int = 262144) -> CsrMatrix:
    """Diagonal matrix: one nonzero per row (the paper's 2M case).

    Defaults to 256k rows for simulation speed; the locality regime (one
    trip per row, perfectly banded gather) is size-independent.
    """
    indptr = np.arange(rows + 1, dtype=np.int64)
    indices = np.arange(rows, dtype=np.int32)
    data = np.full(rows, 2.0, dtype=np.float32)
    return CsrMatrix(
        indptr=indptr,
        indices=indices,
        data=data,
        shape=(rows, rows),
        label=f"diagonal{rows}",
    )
