"""particle filter: resampling search kernel (Rodinia).

The ``find_index`` step of Rodinia's particle filter: for each particle,
locate the first CDF entry exceeding its resampling threshold.  The search
loop's trip count is data dependent and exits early — the archetypal
irregular workload, profiled hybrid partial-productively (paper §4.2).

It appears in **Fig 9** (GPU data placement): four policies compete — two
from the PORPLE models, one from the Jang et al. rules, and Rodinia's
original all-global placement, which trails the best by ~1.17×.  Both
model-driven baselines get this one right; DySel confirms the choice with
at most 4% overhead.

The **workload unit** is a block of 64 particles; the paper's input size
is 32,000 particles.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Mapping

import numpy as np

from ..compiler.heuristics.jang import jang_placement
from ..compiler.heuristics.porple import GpuGeneration, porple_placement
from ..compiler.transforms.placement import place
from ..compiler.variants import VariantPool
from ..config import DEFAULT_CONFIG, ReproConfig
from ..kernel.buffers import Buffer
from ..kernel.ir import (
    GATHER_STRIDE,
    AccessPattern,
    KernelIR,
    Loop,
    LoopBound,
    MemoryAccess,
)
from ..kernel.kernel import KernelSpec, KernelVariant
from ..kernel.signature import ArgSpec, KernelSignature
from .base import BenchmarkCase

#: Particles per workload unit.
PARTICLES_PER_UNIT = 64
#: The paper's input size.
DEFAULT_PARTICLES = 32000


def pf_signature() -> KernelSignature:
    """The kernel contract every find_index variant implements."""
    return KernelSignature(
        "pf_find_index",
        (
            ArgSpec("cdf"),
            ArgSpec("u"),
            ArgSpec("index_out", is_output=True),
        ),
    )


def _executor(args: Mapping[str, object], unit_start: int, unit_end: int) -> None:
    """index_out[p] = first i with cdf[i] >= u[p]."""
    cdf = args["cdf"].data  # type: ignore[union-attr]
    u = args["u"].data  # type: ignore[union-attr]
    out = args["index_out"].data  # type: ignore[union-attr]
    p0 = unit_start * PARTICLES_PER_UNIT
    p1 = min(unit_end * PARTICLES_PER_UNIT, len(u))
    if p0 >= p1:
        return
    found = np.searchsorted(cdf, u[p0:p1], side="left")
    out[p0:p1] = np.minimum(found, len(cdf) - 1).astype(np.int32)


def _search_trips(args: Mapping[str, object], unit_ids: np.ndarray) -> np.ndarray:
    """Mean linear-search length per particle of each unit.

    The kernel scans the CDF linearly from the start and exits at the
    match — its cost is the mean matched index.  The thresholds ``u`` are
    stratified (sorted), so later units search further: genuinely
    non-uniform work across work-groups.
    """
    cdf = args["cdf"].data  # type: ignore[union-attr]
    u = args["u"].data  # type: ignore[union-attr]
    trips = np.zeros(len(unit_ids))
    positions = np.searchsorted(cdf, u)
    for index, unit in enumerate(np.asarray(unit_ids)):
        p0 = int(unit) * PARTICLES_PER_UNIT
        p1 = min(p0 + PARTICLES_PER_UNIT, len(u))
        trips[index] = float(np.mean(positions[p0:p1])) if p1 > p0 else 0.0
    return np.maximum(trips, 1.0)


def base_variant() -> KernelVariant:
    """Rodinia's find_index: one work-item per particle, linear search."""

    def search_footprint(args, unit_ids: np.ndarray) -> np.ndarray:
        return 4.0 * _search_trips(args, unit_ids)

    loops = (
        Loop(
            "wi_p",
            LoopBound(static_trips=PARTICLES_PER_UNIT),
            is_work_item_loop=True,
        ),
        Loop(
            "search",
            LoopBound(evaluator=_search_trips, description="CDF scan length"),
            has_early_exit=True,
        ),
    )
    accesses = (
        MemoryAccess(
            "cdf",
            False,
            AccessPattern.GATHER,
            4.0,
            loop="search",
            scope=("wi_p", "search"),
            strides_by_loop=(("wi_p", GATHER_STRIDE), ("search", 4)),
            working_set_hint="cdf",
            # The scan touches a prefix of the CDF; early particles stay
            # cache-resident, late ones span the whole array.
            footprint_hint=search_footprint,
        ),
        MemoryAccess(
            "u",
            False,
            AccessPattern.COALESCED,
            4.0,
            loop="wi_p",
            scope=("wi_p",),
            strides_by_loop=(("wi_p", 4), ("search", 0)),
        ),
        MemoryAccess(
            "index_out",
            True,
            AccessPattern.COALESCED,
            4.0,
            loop="wi_p",
            scope=("wi_p",),
            strides_by_loop=(("wi_p", 4), ("search", 0)),
        ),
    )
    ir = KernelIR(
        loops=loops,
        accesses=accesses,
        flops_per_trip=2.0,
        divergence=0.4,  # early exits desynchronize the warp
        work_group_threads=PARTICLES_PER_UNIT,
        notes=("find_index (linear CDF scan per particle)",),
    )
    return KernelVariant(
        name="find_index",
        ir=ir,
        executor=_executor,
        wa_factor=1,
        work_group_size=PARTICLES_PER_UNIT,
        description="resampling index search",
    )


def make_args_factory(
    particles: int = DEFAULT_PARTICLES, config: ReproConfig = DEFAULT_CONFIG
) -> Callable[[], Dict[str, object]]:
    """Argument factory with a fixed random weight CDF and thresholds."""
    rng = config.rng("particle_filter", particles)
    weights = rng.uniform(0.1, 1.0, size=particles).astype(np.float32)
    cdf = np.cumsum(weights / weights.sum()).astype(np.float32)
    # Stratified thresholds, as Rodinia's resampling draws them.
    u0 = rng.uniform(0.0, 1.0 / particles)
    u = (u0 + np.arange(particles) / particles).astype(np.float32)

    def make_args() -> Dict[str, object]:
        return {
            "cdf": Buffer("cdf", cdf, writable=False),
            "u": Buffer("u", u, writable=False),
            "index_out": Buffer(
                "index_out", np.full(particles, -1, dtype=np.int32)
            ),
        }

    return make_args


def make_checker(
    particles: int = DEFAULT_PARTICLES, config: ReproConfig = DEFAULT_CONFIG
):
    """Output validator against numpy searchsorted."""
    args = make_args_factory(particles, config)()
    cdf = args["cdf"].data  # type: ignore[union-attr]
    u = args["u"].data  # type: ignore[union-attr]
    expected = np.minimum(
        np.searchsorted(cdf, u, side="left"), len(cdf) - 1
    )

    def check(call_args: Mapping[str, object]) -> bool:
        out = call_args["index_out"].data  # type: ignore[union-attr]
        return bool(np.array_equal(out, expected))

    return check


def workload_units(particles: int = DEFAULT_PARTICLES) -> int:
    """Particle blocks of one launch."""
    return (particles + PARTICLES_PER_UNIT - 1) // PARTICLES_PER_UNIT


def placement_variants(
    particles: int = DEFAULT_PARTICLES, config: ReproConfig = DEFAULT_CONFIG
) -> List[KernelVariant]:
    """The four Fig 9 policies: Rodinia original + PORPLE ×2 + Jang."""
    base = base_variant()
    args = make_args_factory(particles, config)()
    buffers = {"cdf": args["cdf"], "u": args["u"]}
    variants = [dataclasses.replace(base, name=f"{base.name},rodinia")]
    for generation in (GpuGeneration.KEPLER, GpuGeneration.FERMI):
        policy = porple_placement(base.ir, buffers, generation)
        placements = {
            name: space
            for name, space in policy.items()
            if space.value != "global"
        }
        if placements:
            variants.append(
                place(base, placements, label=f"porple-{generation.value}")
            )
        else:
            variants.append(
                dataclasses.replace(
                    base, name=f"{base.name},porple-{generation.value}"
                )
            )
    jang_policy = jang_placement(base.ir, buffers)
    jang_placements = {
        name: space
        for name, space in jang_policy.items()
        if space.value != "global"
    }
    if jang_placements:
        variants.append(place(base, jang_placements, label="jang"))
    else:
        variants.append(dataclasses.replace(base, name=f"{base.name},jang"))
    return variants


def placement_case(
    particles: int = DEFAULT_PARTICLES,
    config: ReproConfig = DEFAULT_CONFIG,
    iterations: int = 1,
) -> BenchmarkCase:
    """Fig 9: data placement for particle filter on the GPU."""
    variants = tuple(placement_variants(particles, config))
    pool = VariantPool(
        spec=KernelSpec(signature=pf_signature()),
        variants=variants,
    )
    return BenchmarkCase(
        name="particle-filter/gpu/placement",
        pool=pool,
        make_args=make_args_factory(particles, config),
        workload_units=workload_units(particles),
        iterations=iterations,
        check=make_checker(particles, config),
        notes="Case Study II: data placement, GPU",
    )
