"""spmv-csr: sparse matrix-vector multiply on CSR (SHOC).

The evaluation's most-used benchmark: it appears in Case Study I (CPU
work-item scheduling, Fig 8), Case Study II (GPU data placement, Fig 9)
and Case Study IV (input-dependent scalar-vs-vector selection, Fig 11).
Its irregularity — data-dependent row lengths — is exactly what static
heuristics cannot see, so DySel always profiles it in hybrid
partial-productive mode.

Kernel shapes, following SHOC:

* **scalar** — one work-item per row, serial dot product.  On the GPU the
  per-thread-sequential walk over ``val``/``col`` is uncoalesced.
* **vector** — one warp (32 lanes) per row with a scratchpad reduction.
  Coalesced, but rows shorter than a warp waste lanes — catastrophic on
  the diagonal matrix (Fig 11b's 22.73×).

The **workload unit** is a 4-row block: the vector kernel's work-group
(128 threads) covers exactly one unit (``wa_factor`` 1), the scalar
kernel's covers 32 (128 rows).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Mapping, Tuple

import numpy as np

from ..compiler.heuristics.jang import jang_placement
from ..compiler.heuristics.porple import GpuGeneration, porple_placement
from ..compiler.transforms.placement import place
from ..compiler.transforms.schedule import reorder_loops
from ..compiler.variants import VariantPool
from ..config import DEFAULT_CONFIG, ReproConfig
from ..kernel.buffers import Buffer
from ..kernel.ir import (
    GATHER_STRIDE,
    AccessPattern,
    KernelIR,
    Loop,
    LoopBound,
    MemoryAccess,
)
from ..kernel.kernel import KernelSpec, KernelVariant
from ..kernel.signature import ArgSpec, KernelSignature
from .base import BenchmarkCase
from .matrices import CsrMatrix, diagonal_csr, random_csr

#: Rows per workload unit.
ROWS_PER_UNIT = 4
#: Work-items per work-group (SHOC's block size).
WORK_GROUP_THREADS = 128
#: Warp width the vector kernel reduces over.
VECTOR_LANES = 32


def spmv_signature() -> KernelSignature:
    """The kernel contract every spmv-csr variant implements."""
    return KernelSignature(
        "spmv_csr",
        (
            ArgSpec("matrix", is_buffer=False),
            ArgSpec("val"),
            ArgSpec("col"),
            ArgSpec("x"),
            ArgSpec("y", is_output=True),
        ),
    )


def _executor(args: Mapping[str, object], unit_start: int, unit_end: int) -> None:
    """Shared functional body: y[rows] = A[rows] · x (all variants agree)."""
    matrix: CsrMatrix = args["matrix"]  # type: ignore[assignment]
    r0 = unit_start * ROWS_PER_UNIT
    r1 = min(unit_end * ROWS_PER_UNIT, matrix.rows)
    if r0 >= r1:
        return
    val = args["val"].data  # type: ignore[union-attr]
    col = args["col"].data  # type: ignore[union-attr]
    x = args["x"].data  # type: ignore[union-attr]
    y = args["y"].data  # type: ignore[union-attr]
    lo = int(matrix.indptr[r0])
    hi = int(matrix.indptr[r1])
    if hi == lo:
        y[r0:r1] = 0.0
        return
    products = (val[lo:hi] * x[col[lo:hi]]).astype(np.float32)
    offsets = (matrix.indptr[r0:r1] - lo).astype(np.int64)
    lengths = np.diff(np.append(offsets, hi - lo))
    sums = np.add.reduceat(products, np.minimum(offsets, hi - lo - 1))
    # reduceat misbehaves for empty rows; mask them to zero.
    y[r0:r1] = np.where(lengths > 0, sums, 0.0).astype(np.float32)


def _block_stats_eval(field: str) -> Callable:
    """Evaluator reading a per-block statistic from the bound matrix."""

    def evaluate(args: Mapping[str, object], unit_ids: np.ndarray) -> np.ndarray:
        matrix: CsrMatrix = args["matrix"]  # type: ignore[assignment]
        stats = matrix.block_stats(ROWS_PER_UNIT)
        return getattr(stats, field)[unit_ids]

    return evaluate


def _vector_strip_trips(args: Mapping[str, object], unit_ids: np.ndarray) -> np.ndarray:
    """Warp-strips per unit: each row takes ceil(nnz/32) coalesced strips.

    Approximated from the block maximum (warps in a work-group run in
    lockstep with the longest row of the block).
    """
    matrix: CsrMatrix = args["matrix"]  # type: ignore[assignment]
    stats = matrix.block_stats(ROWS_PER_UNIT)
    return ROWS_PER_UNIT * np.ceil(stats.nnz_max[unit_ids] / VECTOR_LANES)


def _nnz_footprint(args: Mapping[str, object], unit_ids: np.ndarray) -> np.ndarray:
    """Bytes of val/col a unit touches (its own nonzeros)."""
    matrix: CsrMatrix = args["matrix"]  # type: ignore[assignment]
    stats = matrix.block_stats(ROWS_PER_UNIT)
    return 4.0 * np.maximum(stats.nnz_sum[unit_ids], 1.0)


def _row_stride_bytes(
    args: Mapping[str, object], unit_ids: np.ndarray
) -> np.ndarray:
    """Dynamic across-thread stride of the scalar kernel's val/col walks.

    Adjacent threads start ``row_nnz`` elements apart, so short rows make
    the walk coalesced (the diagonal matrix) while long rows make every
    lane hit its own line (the random matrix) — Fig 11b's mechanism.
    """
    matrix: CsrMatrix = args["matrix"]  # type: ignore[assignment]
    stats = matrix.block_stats(ROWS_PER_UNIT)
    return 4.0 * np.maximum(stats.nnz_mean[unit_ids], 1.0)


def _x_footprint(args: Mapping[str, object], unit_ids: np.ndarray) -> np.ndarray:
    """Byte span of x a unit gathers from (banded inputs are tiny)."""
    matrix: CsrMatrix = args["matrix"]  # type: ignore[assignment]
    stats = matrix.block_stats(ROWS_PER_UNIT)
    return np.maximum(stats.x_span_bytes[unit_ids], 4.0)


def scalar_variant(device_kind: str) -> KernelVariant:
    """SHOC's scalar CSR kernel: one work-item per row.

    CPU IR uses the canonical depth-first order (rows outer, nonzeros
    inner) with stride metadata so the schedule transform can derive the
    breadth-first alternative; GPU IR marks ``val``/``col`` as
    per-thread-sequential (uncoalesced across the warp).
    """
    loops = (
        Loop("wi_r", LoopBound(static_trips=ROWS_PER_UNIT), is_work_item_loop=True),
        Loop(
            "nnz",
            LoopBound(
                evaluator=_block_stats_eval("nnz_mean"),
                description="CSR row length",
            ),
        ),
    )
    stream_pattern = (
        AccessPattern.UNIT_STRIDE if device_kind == "cpu" else AccessPattern.UNIT_STRIDE
    )
    accesses = (
        MemoryAccess(
            "val",
            False,
            stream_pattern,
            4.0,
            loop="nnz",
            scope=("wi_r", "nnz"),
            strides_by_loop=(("wi_r", GATHER_STRIDE), ("nnz", 4)),
            footprint_hint=_nnz_footprint,
            stride_evaluator=_row_stride_bytes,
        ),
        MemoryAccess(
            "col",
            False,
            stream_pattern,
            4.0,
            loop="nnz",
            scope=("wi_r", "nnz"),
            strides_by_loop=(("wi_r", GATHER_STRIDE), ("nnz", 4)),
            footprint_hint=_nnz_footprint,
            stride_evaluator=_row_stride_bytes,
        ),
        MemoryAccess(
            "x",
            False,
            AccessPattern.GATHER,
            4.0,
            loop="nnz",
            scope=("wi_r", "nnz"),
            strides_by_loop=(("wi_r", GATHER_STRIDE), ("nnz", GATHER_STRIDE)),
            working_set_hint="x",
            footprint_hint=_x_footprint,
        ),
        MemoryAccess(
            "y",
            True,
            AccessPattern.COALESCED if device_kind == "gpu" else AccessPattern.UNIT_STRIDE,
            4.0,
            loop="wi_r",
            scope=("wi_r",),
            strides_by_loop=(("wi_r", 4), ("nnz", 0)),
        ),
    )
    ir = KernelIR(
        loops=loops,
        accesses=accesses,
        flops_per_trip=2.0,
        divergence=0.3,
        work_group_threads=WORK_GROUP_THREADS,
        notes=("scalar CSR (one work-item per row)",),
    )
    return KernelVariant(
        name="scalar",
        ir=ir,
        executor=_executor,
        wa_factor=WORK_GROUP_THREADS // ROWS_PER_UNIT,
        work_group_size=WORK_GROUP_THREADS,
        description="serial dot product per row",
    )


def vector_variant(device_kind: str) -> KernelVariant:
    """SHOC's vector CSR kernel: one warp per row, scratchpad reduction.

    ``val``/``col`` strips are coalesced but padded to full warps, so the
    touched volume is ``32 × 8`` bytes per strip regardless of how few
    lanes are useful — the lane-waste mechanism behind Fig 11b.  On the
    CPU, the scratchpad reduction lowers to memory copies with no benefit
    (the paper's §4.4 observation).
    """
    loops = (
        Loop("wi_row", LoopBound(static_trips=ROWS_PER_UNIT), is_work_item_loop=True),
        Loop(
            "strip",
            LoopBound(
                evaluator=lambda args, ids: np.maximum(
                    _vector_strip_trips(args, ids) / ROWS_PER_UNIT, 1.0
                ),
                description="warp strips per row",
            ),
        ),
    )
    lane_bytes = float(VECTOR_LANES * 4)
    accesses = (
        MemoryAccess(
            "val",
            False,
            AccessPattern.COALESCED,
            lane_bytes,
            loop="strip",
            scope=("wi_row", "strip"),
            strides_by_loop=(("wi_row", GATHER_STRIDE), ("strip", 4)),
            footprint_hint=_nnz_footprint,
        ),
        MemoryAccess(
            "col",
            False,
            AccessPattern.COALESCED,
            lane_bytes,
            loop="strip",
            scope=("wi_row", "strip"),
            strides_by_loop=(("wi_row", GATHER_STRIDE), ("strip", 4)),
            footprint_hint=_nnz_footprint,
        ),
        MemoryAccess(
            "x",
            False,
            AccessPattern.GATHER,
            lane_bytes,
            loop="strip",
            scope=("wi_row", "strip"),
            strides_by_loop=(
                ("wi_row", GATHER_STRIDE),
                ("strip", GATHER_STRIDE),
            ),
            working_set_hint="x",
            footprint_hint=_x_footprint,
        ),
        MemoryAccess(
            "y",
            True,
            AccessPattern.COALESCED if device_kind == "gpu" else AccessPattern.UNIT_STRIDE,
            4.0,
            loop="wi_row",
            scope=("wi_row",),
            strides_by_loop=(("wi_row", 4), ("strip", 0)),
        ),
    )
    if device_kind == "cpu":
        # The CPU lowering has no real warps: every strip's 32-wide
        # multiply and tree reduction are serialized through the
        # scratchpad emulation (the "copy cost without any benefit" the
        # paper calls out in §4.4), and the code generator serializes two
        # work-groups per TBB task to keep task granularity sane (§5.2's
        # granularity tradeoff).
        flops_per_trip = 2.0 * VECTOR_LANES + 320.0
        wa_factor = 2
    else:
        # Each strip does 32 multiply-adds plus a 5-step tree reduction.
        flops_per_trip = 2.0 * VECTOR_LANES + 10.0
        wa_factor = 1
    ir = KernelIR(
        loops=loops,
        accesses=accesses,
        flops_per_trip=flops_per_trip,
        divergence=0.05,
        scratchpad_bytes=WORK_GROUP_THREADS * 4,
        uses_barrier=True,
        work_group_threads=WORK_GROUP_THREADS,
        notes=("vector CSR (one warp per row, scratchpad reduction)",),
    )
    return KernelVariant(
        name="vector",
        ir=ir,
        executor=_executor,
        wa_factor=wa_factor,
        work_group_size=WORK_GROUP_THREADS,
        description="warp-per-row dot product with scratchpad reduction",
    )


# ----------------------------------------------------------------------
# Inputs
# ----------------------------------------------------------------------

_MATRIX_CACHE: Dict[Tuple[str, int], CsrMatrix] = {}


def get_matrix(
    kind: str, size: int, config: ReproConfig = DEFAULT_CONFIG
) -> CsrMatrix:
    """The evaluation's two inputs, cached per size.

    ``kind`` is ``"random"`` (SHOC default, 1% density) or ``"diagonal"``.
    """
    key = (kind, size)
    if key not in _MATRIX_CACHE:
        if kind == "random":
            _MATRIX_CACHE[key] = random_csr(size, size, 0.01, config)
        elif kind == "diagonal":
            _MATRIX_CACHE[key] = diagonal_csr(size)
        else:
            raise ValueError(f"unknown matrix kind {kind!r}")
    return _MATRIX_CACHE[key]


def make_args_factory(
    matrix: CsrMatrix, config: ReproConfig = DEFAULT_CONFIG
) -> Callable[[], Dict[str, object]]:
    """Argument factory binding a matrix and a fresh output vector."""
    rng = config.rng("spmv_x", matrix.label)
    x_data = rng.standard_normal(matrix.cols).astype(np.float32)

    def make_args() -> Dict[str, object]:
        return {
            "matrix": matrix,
            "val": Buffer("val", matrix.data, writable=False),
            "col": Buffer("col", matrix.indices, writable=False),
            "x": Buffer("x", x_data, writable=False),
            "y": Buffer("y", np.zeros(matrix.rows, dtype=np.float32)),
        }

    return make_args


def make_checker(matrix: CsrMatrix) -> Callable[[Mapping[str, object]], bool]:
    """Output validator against the reference multiply."""

    def check(args: Mapping[str, object]) -> bool:
        x = args["x"].data  # type: ignore[union-attr]
        y = args["y"].data  # type: ignore[union-attr]
        return bool(np.allclose(y, matrix.multiply(x), rtol=1e-4, atol=1e-4))

    return check


def workload_units(matrix: CsrMatrix) -> int:
    """Units (4-row blocks) of one launch over the whole matrix."""
    return (matrix.rows + ROWS_PER_UNIT - 1) // ROWS_PER_UNIT


# ----------------------------------------------------------------------
# Case-study pools
# ----------------------------------------------------------------------


def schedule_case(
    matrix_kind: str,
    size: int = 16384,
    config: ReproConfig = DEFAULT_CONFIG,
    iterations: int = 1,
) -> BenchmarkCase:
    """Case Study I (Fig 8): scalar kernel × {DFO, BFO} schedules on CPU.

    Two candidates, matching the paper's "2 schedules for spmv-csr".
    """
    matrix = get_matrix(matrix_kind, size, config)
    base = scalar_variant("cpu")
    dfo = reorder_loops(base, ("wi_r", "nnz"), label="DFO")
    bfo = reorder_loops(base, ("nnz", "wi_r"), label="BFO")
    pool = VariantPool(
        spec=KernelSpec(signature=spmv_signature()),
        variants=(dfo, bfo),
    )
    return BenchmarkCase(
        name=f"spmv-csr/cpu/schedules/{matrix_kind}",
        pool=pool,
        make_args=make_args_factory(matrix, config),
        workload_units=workload_units(matrix),
        iterations=iterations,
        check=make_checker(matrix),
        notes="Case Study I: LC scheduling, CPU",
    )


def placement_case(
    size: int = 16384,
    config: ReproConfig = DEFAULT_CONFIG,
    iterations: int = 1,
) -> BenchmarkCase:
    """Case Study II (Fig 9): scalar kernel × 4 placement policies on GPU.

    Three PORPLE policies (one per GPU generation) plus the Jang et al.
    rule-based policy, each produced by *running* the reimplemented
    heuristic — so the baseline selectors and the pool stay consistent.
    """
    matrix = get_matrix("random", size, config)
    args = make_args_factory(matrix, config)()
    buffers = {
        name: args[name]
        for name in ("val", "col", "x")
    }
    base = scalar_variant("gpu")
    variants = []
    for generation in GpuGeneration:
        policy = porple_placement(base.ir, buffers, generation)
        placements = {
            name: space
            for name, space in policy.items()
            if space.value != "global"
        }
        if placements:
            variant = place(base, placements, label=f"porple-{generation.value}")
        else:
            variant = dataclasses.replace(
                base, name=f"{base.name},porple-{generation.value}"
            )
        variants.append(variant)
    jang_policy = jang_placement(base.ir, buffers)
    jang_placements = {
        name: space
        for name, space in jang_policy.items()
        if space.value != "global"
    }
    variants.append(place(base, jang_placements, label="jang"))
    pool = VariantPool(
        spec=KernelSpec(signature=spmv_signature()),
        variants=tuple(variants),
    )
    return BenchmarkCase(
        name="spmv-csr/gpu/placement/random",
        pool=pool,
        make_args=make_args_factory(matrix, config),
        workload_units=workload_units(matrix),
        iterations=iterations,
        check=make_checker(matrix),
        notes="Case Study II: data placement, GPU",
    )


def input_dependent_case(
    device_kind: str,
    matrix_kind: str,
    size: int = 16384,
    config: ReproConfig = DEFAULT_CONFIG,
    iterations: int = 1,
) -> BenchmarkCase:
    """Case Study IV (Fig 11): scalar vs vector, per input matrix.

    On the CPU the candidates are additionally crossed with the DFO/BFO
    schedules (Fig 11a's four pure bars); on the GPU the two SHOC kernels
    compete directly (Fig 11b).
    """
    matrix = get_matrix(matrix_kind, size, config)
    if device_kind == "cpu":
        scalar = scalar_variant("cpu")
        vector = vector_variant("cpu")
        variants = (
            reorder_loops(scalar, ("wi_r", "nnz"), label="DFO"),
            reorder_loops(scalar, ("nnz", "wi_r"), label="BFO"),
            reorder_loops(vector, ("wi_row", "strip"), label="DFO"),
            reorder_loops(vector, ("strip", "wi_row"), label="BFO"),
        )
    elif device_kind == "gpu":
        variants = (scalar_variant("gpu"), vector_variant("gpu"))
    else:
        raise ValueError(f"unknown device kind {device_kind!r}")
    pool = VariantPool(
        spec=KernelSpec(signature=spmv_signature()),
        variants=variants,
    )
    return BenchmarkCase(
        name=f"spmv-csr/{device_kind}/scalar-vs-vector/{matrix_kind}",
        pool=pool,
        make_args=make_args_factory(matrix, config),
        workload_units=workload_units(matrix),
        iterations=iterations,
        check=make_checker(matrix),
        notes="Case Study IV: input-dependent selection",
    )
