"""Benchmark workloads: the kernels the paper's evaluation uses.

Each module rebuilds one benchmark from Parboil [28], Rodinia [6] or
SHOC [9] as used in the evaluation: a kernel signature, real numpy
executors for every variant, IR describing each variant's loop structure
and access patterns, and the variant pools of the relevant case studies.

All modules expose factory functions returning
:class:`~repro.workloads.base.BenchmarkCase` objects the harness consumes;
sizes default to values that keep the simulation fast while preserving the
paper's regimes (cache-resident vs DRAM-resident, regular vs irregular).
"""

from .base import BenchmarkCase
from .matrices import CsrMatrix, JdsMatrix, diagonal_csr, random_csr

__all__ = [
    "BenchmarkCase",
    "CsrMatrix",
    "JdsMatrix",
    "diagonal_csr",
    "random_csr",
]
