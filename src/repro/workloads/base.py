"""Benchmark case container consumed by the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional

from ..compiler.variants import VariantPool
from ..errors import WorkloadError

#: Builds a fresh argument mapping (fresh output buffers) for one run.
ArgsFactory = Callable[[], Dict[str, object]]

#: Validates the outputs in an argument mapping against the reference.
Checker = Callable[[Mapping[str, object]], bool]


@dataclass
class BenchmarkCase:
    """One benchmark × device × case-study configuration.

    Parameters
    ----------
    name:
        Case label used in reports (e.g. ``"sgemm/cpu/schedules"``).
    pool:
        The variant pool DySel selects from.
    make_args:
        Factory producing fresh arguments (so repeated runs with different
        selectors don't share output buffers).
    workload_units:
        Units per launch.
    iterations:
        Launches per run; > 1 marks iterative applications (stencil,
        kmeans, spmv in CG) that profile only their first iteration.
    check:
        Output validator against a reference implementation.
    """

    name: str
    pool: VariantPool
    make_args: ArgsFactory
    workload_units: int
    iterations: int = 1
    check: Optional[Checker] = None
    notes: str = ""

    def __post_init__(self) -> None:
        if self.workload_units < 1:
            raise WorkloadError(
                f"case {self.name!r}: workload_units must be >= 1"
            )
        if self.iterations < 1:
            raise WorkloadError(f"case {self.name!r}: iterations must be >= 1")

    def fresh_args(self) -> Dict[str, object]:
        """Build a fresh argument mapping for one run."""
        return self.make_args()

    def validate(self, args: Mapping[str, object]) -> bool:
        """Check outputs against the reference (True when no checker)."""
        if self.check is None:
            return True
        return self.check(args)
