"""cutcp: cutoff Coulomb potential on a 3-D lattice (Parboil).

Each lattice point accumulates the shifted Coulomb potential of all atoms
within a cutoff radius; atoms are pre-binned into cells and each
work-group scans its neighbourhood's bins.  A near-regular compute-heavy
kernel — profiled fully-productively (paper §4.2 groups it with sgemm and
stencil).

It appears in:

* **Fig 8** — LC scheduling on CPU with ~60 candidate schedules: the 5-way
  loop nest (wi_z, wi_y, wi_x, bin, atom) has 120 permutations of which
  the 60 keeping the atom loop inside its bin loop are legal.
* **Fig 10** — mixed optimizations: base vs a scratchpad-tiled,
  4×-coarsened version (work assignment factor 4, paper §4.3); the
  optimized version wins on GPU and loses on CPU.

The **workload unit** is a 16×4×2 block of lattice points.  Atom
neighbour lists are precomputed with a KD-tree so the executor performs
the real potential summation.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Tuple

import numpy as np
from scipy.spatial import cKDTree

from ..compiler.transforms.schedule import reorder_loops, schedule_label
from ..compiler.transforms.tile import tile_scratchpad
from ..compiler.transforms.vectorize import auto_vectorize, vectorize
from ..compiler.variants import VariantPool
from ..config import DEFAULT_CONFIG, ReproConfig
from ..kernel.buffers import Buffer
from ..kernel.ir import (
    AccessPattern,
    GATHER_STRIDE,
    KernelIR,
    Loop,
    LoopBound,
    MemoryAccess,
)
from ..kernel.kernel import KernelSpec, KernelVariant
from ..kernel.signature import ArgSpec, KernelSignature
from .base import BenchmarkCase

#: Lattice extent (x, y, z) and unit block shape.
DEFAULT_LATTICE = (64, 64, 32)
UNIT_X, UNIT_Y, UNIT_Z = 16, 4, 2
#: Atoms in the box and cutoff radius (lattice spacing 1.0).
DEFAULT_ATOMS = 20000
CUTOFF = 4.0
#: Neighbourhood bins scanned per lattice point and mean atoms per bin,
#: as the (uniform-ized) static loop bounds — cutcp's density is uniform
#: enough that the paper profiles it fully-productively.
BINS_PER_POINT = 27
ATOMS_PER_BIN = 6


def cutcp_signature() -> KernelSignature:
    """The kernel contract every cutcp variant implements."""
    return KernelSignature(
        "cutcp",
        (
            ArgSpec("geometry", is_buffer=False),
            ArgSpec("atoms"),
            ArgSpec("potential", is_output=True),
        ),
    )


class _Geometry:
    """Precomputed neighbour lists: which atoms affect which point.

    Stored CSR-style (``point_ptr``/``atom_index``/``contribution``), so
    the executor is a segmented float32 sum — the real physics, computed
    once per input and replayed per launch.
    """

    def __init__(
        self,
        lattice: Tuple[int, int, int],
        num_atoms: int,
        config: ReproConfig,
    ) -> None:
        nx, ny, nz = lattice
        rng = config.rng("cutcp", lattice, num_atoms)
        box = np.array([nx, ny, nz], dtype=np.float64)
        positions = rng.uniform(0.0, 1.0, size=(num_atoms, 3)) * box
        charges = rng.uniform(-1.0, 1.0, size=num_atoms).astype(np.float32)

        # Lattice points in unit-block order (z-block, y-block, x-block).
        xs, ys, zs = np.meshgrid(
            np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij"
        )
        points = np.stack(
            [xs.ravel(order="F"), ys.ravel(order="F"), zs.ravel(order="F")],
            axis=1,
        ).astype(np.float64)
        order = self._unit_order(lattice)
        points = points[order]

        tree = cKDTree(positions)
        neighbour_lists = tree.query_ball_point(points, CUTOFF)
        counts = np.fromiter(
            (len(lst) for lst in neighbour_lists),
            dtype=np.int64,
            count=len(neighbour_lists),
        )
        self.point_ptr = np.zeros(len(points) + 1, dtype=np.int64)
        np.cumsum(counts, out=self.point_ptr[1:])
        flat = np.concatenate(
            [np.asarray(lst, dtype=np.int64) for lst in neighbour_lists]
        ) if len(points) else np.zeros(0, dtype=np.int64)
        deltas = positions[flat] - np.repeat(points, counts, axis=0)
        distances = np.sqrt(np.sum(deltas * deltas, axis=1))
        distances = np.maximum(distances, 0.25)
        # Shifted Coulomb kernel: q * (1/r - 1/rc), zero at the cutoff.
        self.contribution = (
            charges[flat] * (1.0 / distances - 1.0 / CUTOFF)
        ).astype(np.float32)
        self.lattice = lattice
        self.num_points = len(points)

    @staticmethod
    def _unit_order(lattice: Tuple[int, int, int]) -> np.ndarray:
        """Permutation putting lattice points into unit-block order."""
        nx, ny, nz = lattice
        index = np.arange(nx * ny * nz)
        # index is x-major (x fastest) per the meshgrid ravel above:
        # decompose into coordinates.
        x = index % nx
        y = (index // nx) % ny
        z = index // (nx * ny)
        bx, by, bz = x // UNIT_X, y // UNIT_Y, z // UNIT_Z
        ox, oy, oz = x % UNIT_X, y % UNIT_Y, z % UNIT_Z
        blocks_x = nx // UNIT_X
        blocks_y = ny // UNIT_Y
        block = bx + blocks_x * (by + blocks_y * bz)
        offset = ox + UNIT_X * (oy + UNIT_Y * oz)
        rank = block * (UNIT_X * UNIT_Y * UNIT_Z) + offset
        return np.argsort(rank, kind="stable")

    def reference_potential(self) -> np.ndarray:
        """Full potential in unit-block point order."""
        out = np.zeros(self.num_points, dtype=np.float32)
        counts = np.diff(self.point_ptr)
        point_ids = np.repeat(np.arange(self.num_points), counts)
        np.add.at(out, point_ids, self.contribution)
        return out


def _executor(args: Mapping[str, object], unit_start: int, unit_end: int) -> None:
    """Accumulate potentials for the lattice points of the unit range."""
    geometry: _Geometry = args["geometry"]  # type: ignore[assignment]
    out = args["potential"].data  # type: ignore[union-attr]
    points_per_unit = UNIT_X * UNIT_Y * UNIT_Z
    p0 = unit_start * points_per_unit
    p1 = min(unit_end * points_per_unit, geometry.num_points)
    if p0 >= p1:
        return
    lo = int(geometry.point_ptr[p0])
    hi = int(geometry.point_ptr[p1])
    if hi == lo:
        out[p0:p1] = 0.0
        return
    offsets = (geometry.point_ptr[p0:p1] - lo).astype(np.int64)
    lengths = np.diff(np.append(offsets, hi - lo))
    sums = np.add.reduceat(
        geometry.contribution[lo:hi], np.minimum(offsets, hi - lo - 1)
    )
    out[p0:p1] = np.where(lengths > 0, sums, 0.0).astype(np.float32)


def base_variant(device_kind: str) -> KernelVariant:
    """Parboil's base cutcp: one work-item per lattice point."""
    points = UNIT_X * UNIT_Y * UNIT_Z
    atoms_bytes = float(BINS_PER_POINT * ATOMS_PER_BIN * 16)

    def atoms_footprint(args, unit_ids: np.ndarray) -> np.ndarray:
        # Neighbouring points share bins: the per-unit atom footprint is
        # the block's neighbourhood, not points × bins.
        return np.full(unit_ids.shape, atoms_bytes)

    loops = (
        Loop("wi_z", LoopBound(static_trips=UNIT_Z), is_work_item_loop=True),
        Loop("wi_y", LoopBound(static_trips=UNIT_Y), is_work_item_loop=True),
        Loop("wi_x", LoopBound(static_trips=UNIT_X), is_work_item_loop=True),
        Loop("bin", LoopBound(static_trips=BINS_PER_POINT)),
        Loop("atom", LoopBound(static_trips=ATOMS_PER_BIN)),
    )
    accesses = (
        # Atom records are 16 bytes (x, y, z, q); bins are scattered in
        # the atom array, atoms within a bin are contiguous.  All points
        # of a work-group scan (nearly) the same neighbourhood, so the
        # access executes once per (bin, atom) at warp level; the replay
        # waste of divergent lanes is folded into the per-trip volume.
        MemoryAccess(
            "atoms",
            False,
            AccessPattern.STRIDED if device_kind == "cpu" else AccessPattern.GATHER,
            16.0 * 8.0,
            loop="atom",
            scope=("bin", "atom"),
            stride_bytes=16,
            strides_by_loop=(
                ("wi_z", 0),
                ("wi_y", 0),
                ("wi_x", 0),
                ("bin", GATHER_STRIDE),
                ("atom", 16),
            ),
            footprint_hint=atoms_footprint,
        ),
        MemoryAccess(
            "potential",
            True,
            AccessPattern.COALESCED
            if device_kind == "gpu"
            else AccessPattern.UNIT_STRIDE,
            4.0,
            loop="wi_x",
            scope=("wi_z", "wi_y", "wi_x"),
            strides_by_loop=(
                ("wi_z", 4 * 64 * 64),
                ("wi_y", 4 * 64),
                ("wi_x", 4),
                ("bin", 0),
                ("atom", 0),
            ),
        ),
    )
    ir = KernelIR(
        loops=loops,
        accesses=accesses,
        # Distance, rsqrt and cutoff test per atom.
        flops_per_trip=10.0,
        divergence=0.15,
        work_group_threads=points,
        notes=("base cutcp (one work-item per lattice point)",),
    )
    return KernelVariant(
        name="base",
        ir=ir,
        executor=_executor,
        wa_factor=1,
        work_group_size=points,
        description="binned cutoff potential accumulation",
    )


def tiled_variant(device_kind: str) -> KernelVariant:
    """Parboil's optimized cutcp: scratchpad-staged bins, 4× coarsened.

    Stages each bin's atoms in scratchpad once per work-group (sharing
    them among all points of 4 units), with work assignment factor 4
    (paper §4.3).  On the GPU the staging removes the divergent replay
    waste of the gathered reads; on the CPU the cache hierarchy already
    serves the shared bins, leaving only the staging copies.
    """
    base = base_variant(device_kind)
    staged = 4 * BINS_PER_POINT * ATOMS_PER_BIN * 16
    scale = (1.0 / 8.0) if device_kind == "gpu" else 1.0
    return tile_scratchpad(
        base,
        scratchpad_bytes=staged,
        traffic_scale={"atoms": scale},
        wa_factor_scale=4,
        label="tiled,coarsen4x",
    )


def legal_orders() -> List[Tuple[str, ...]]:
    """The 60 legal loop orders (atom stays inside its bin loop)."""
    import itertools

    names = ("wi_z", "wi_y", "wi_x", "bin", "atom")
    orders = []
    for order in itertools.permutations(names):
        if order.index("bin") < order.index("atom"):
            orders.append(order)
    return orders


def schedule_family(config: ReproConfig = DEFAULT_CONFIG):
    """(order, variant) pairs for the 60 legal schedules."""
    base = base_variant("cpu")
    family = []
    for order in legal_orders():
        tag = schedule_label(base.ir, order)
        label = ">".join(order) + (f"({tag})" if tag else "")
        family.append(
            (order, auto_vectorize(reorder_loops(base, order, label=label)))
        )
    return family


_GEOMETRY_CACHE: Dict[Tuple[Tuple[int, int, int], int], _Geometry] = {}


def get_geometry(
    lattice=DEFAULT_LATTICE,
    num_atoms: int = DEFAULT_ATOMS,
    config: ReproConfig = DEFAULT_CONFIG,
) -> _Geometry:
    """Binned atom geometry, cached per (lattice, atoms)."""
    key = (tuple(lattice), num_atoms)
    if key not in _GEOMETRY_CACHE:
        _GEOMETRY_CACHE[key] = _Geometry(lattice, num_atoms, config)
    return _GEOMETRY_CACHE[key]


def make_args_factory(
    geometry: _Geometry,
) -> Callable[[], Dict[str, object]]:
    """Argument factory binding the geometry and a fresh output."""

    def make_args() -> Dict[str, object]:
        return {
            "geometry": geometry,
            "atoms": Buffer(
                "atoms",
                geometry.contribution,  # sized like the neighbour stream
                writable=False,
            ),
            "potential": Buffer(
                "potential",
                np.zeros(geometry.num_points, dtype=np.float32),
            ),
        }

    return make_args


def make_checker(geometry: _Geometry):
    """Output validator against the reference accumulation."""
    expected = geometry.reference_potential()

    def check(args: Mapping[str, object]) -> bool:
        out = args["potential"].data  # type: ignore[union-attr]
        return bool(np.allclose(out, expected, rtol=1e-4, atol=1e-4))

    return check


def workload_units(geometry: _Geometry) -> int:
    """Lattice blocks of one launch."""
    return geometry.num_points // (UNIT_X * UNIT_Y * UNIT_Z)


def schedule_case(
    lattice=DEFAULT_LATTICE,
    num_atoms: int = DEFAULT_ATOMS,
    config: ReproConfig = DEFAULT_CONFIG,
    iterations: int = 1,
) -> BenchmarkCase:
    """Fig 8: the 60 legal schedules on the CPU.

    ``iterations`` > 1 models the molecular-dynamics outer loop that
    recomputes the potential map each step; DySel profiles the first.
    """
    geometry = get_geometry(lattice, num_atoms, config)
    variants = tuple(variant for _, variant in schedule_family(config))
    pool = VariantPool(
        spec=KernelSpec(signature=cutcp_signature()),
        variants=variants,
    )
    return BenchmarkCase(
        name="cutcp/cpu/schedules",
        pool=pool,
        make_args=make_args_factory(geometry),
        workload_units=workload_units(geometry),
        iterations=iterations,
        check=make_checker(geometry),
        notes="Case Study I: LC scheduling, CPU (60 schedules)",
    )


def mixed_case(
    device_kind: str,
    lattice=DEFAULT_LATTICE,
    num_atoms: int = DEFAULT_ATOMS,
    config: ReproConfig = DEFAULT_CONFIG,
) -> BenchmarkCase:
    """Fig 10: Parboil's two versions (base, tiled+coarsened 4×)."""
    geometry = get_geometry(lattice, num_atoms, config)
    if device_kind == "cpu":
        # As with sgemm, the base version's flexible structure lets the
        # CPU compiler pick a lattice-innermost schedule and vectorize
        # fully; the tiled version's barriers pin its structure to a
        # narrower profitable width (paper §4.3).
        order = ("wi_z", "wi_y", "bin", "atom", "wi_x")
        base = auto_vectorize(
            reorder_loops(base_variant("cpu"), order, label="lc")
        )
        tiled = vectorize(
            tile_scratchpad(
                reorder_loops(base_variant("cpu"), order, label="lc"),
                scratchpad_bytes=4 * BINS_PER_POINT * ATOMS_PER_BIN * 16,
                traffic_scale={"atoms": 1.0},
                wa_factor_scale=4,
                label="tiled,coarsen4x",
            ),
            4,
            label="4-way",
        )
        variants = (base, tiled)
    else:
        variants = (base_variant(device_kind), tiled_variant(device_kind))
    pool = VariantPool(
        spec=KernelSpec(signature=cutcp_signature()),
        variants=variants,
    )
    return BenchmarkCase(
        name=f"cutcp/{device_kind}/mixed",
        pool=pool,
        make_args=make_args_factory(geometry),
        workload_units=workload_units(geometry),
        check=make_checker(geometry),
        notes="Case Study III: mixed compile-time optimizations",
    )
