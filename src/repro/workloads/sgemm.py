"""sgemm: dense single-precision matrix multiply (Parboil).

Appears in three experiments:

* **Fig 1** — the Intel vectorizer's width choice: the divergence-free
  kernel gets 4-way vectors from the heuristic while 8-way is ~2× faster.
* **Fig 8** — locality-centric scheduling: 6 loop orders (3! permutations
  of two work-item loops and the reduction loop); the worst order strides
  through B with a full row between touches, the paper's pathological
  117× case.
* **Fig 10** — mixed optimizations: Parboil ships a base version and a
  scratchpad-tiled + 16×-coarsened version; tiling wins on GPU and loses
  on CPU (staging copies through a uniform memory space).

The **workload unit** is one 16×16 tile of C.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping

import numpy as np

from ..compiler.heuristics.intel_vec import intel_vector_width
from ..compiler.transforms.schedule import enumerate_schedules, reorder_loops
from ..compiler.transforms.tile import tile_scratchpad
from ..compiler.transforms.vectorize import auto_vectorize, vectorize
from ..compiler.variants import VariantPool
from ..config import DEFAULT_CONFIG, ReproConfig
from ..kernel.buffers import Buffer
from ..kernel.ir import (
    AccessPattern,
    KernelIR,
    Loop,
    LoopBound,
    MemoryAccess,
)
from ..kernel.kernel import KernelSpec, KernelVariant
from ..kernel.signature import ArgSpec, KernelSignature
from .base import BenchmarkCase

#: C-tile edge (work-group shape is TILE×TILE work-items).
TILE = 16
#: Default matrix dimension (kept moderate for simulation speed; the
#: paper's regime — B too big for L2, slab reuse in L1 — is preserved).
DEFAULT_N = 384


def sgemm_signature() -> KernelSignature:
    """The kernel contract every sgemm variant implements."""
    return KernelSignature(
        "sgemm",
        (
            ArgSpec("n", is_buffer=False),
            ArgSpec("a"),
            ArgSpec("b"),
            ArgSpec("c", is_output=True),
        ),
    )


def _executor(args: Mapping[str, object], unit_start: int, unit_end: int) -> None:
    """C tiles [unit_start, unit_end) = A · B (row-major tile order)."""
    n: int = args["n"]  # type: ignore[assignment]
    a = args["a"].data  # type: ignore[union-attr]
    b = args["b"].data  # type: ignore[union-attr]
    c = args["c"].data  # type: ignore[union-attr]
    tiles_per_row = n // TILE
    for unit in range(unit_start, unit_end):
        ti, tj = divmod(unit, tiles_per_row)
        rows = slice(ti * TILE, (ti + 1) * TILE)
        cols = slice(tj * TILE, (tj + 1) * TILE)
        c[rows, cols] = a[rows, :] @ b[:, cols]


def base_variant(n: int, device_kind: str) -> KernelVariant:
    """Parboil's base sgemm: one work-item per C element, k-loop inside.

    The canonical nest is (wi_i, wi_j, k) — the depth-first order a naive
    lowering produces.  Stride metadata lets the schedule transform derive
    all six orders for the LC case study.
    """
    slab_bytes = float(TILE * n * 4)

    def slab_footprint(args: Mapping[str, object], unit_ids: np.ndarray) -> np.ndarray:
        return np.full(unit_ids.shape, slab_bytes)

    loops = (
        Loop("wi_i", LoopBound(static_trips=TILE), is_work_item_loop=True),
        Loop("wi_j", LoopBound(static_trips=TILE), is_work_item_loop=True),
        Loop("k", LoopBound(static_trips=n)),
    )
    if device_kind == "cpu":
        a_pattern, b_pattern = AccessPattern.UNIT_STRIDE, AccessPattern.STRIDED
        b_stride = 4 * n
    else:
        # GPU base kernel: A[i,k] broadcasts across the j-threads of a
        # warp; B[k,j] is coalesced across them.
        a_pattern, b_pattern = AccessPattern.BROADCAST, AccessPattern.COALESCED
        b_stride = 0
    accesses = (
        MemoryAccess(
            "a",
            False,
            a_pattern,
            4.0,
            loop="k",
            scope=("wi_i", "wi_j", "k"),
            strides_by_loop=(("wi_i", 4 * n), ("wi_j", 0), ("k", 4)),
            footprint_hint=slab_footprint,
        ),
        MemoryAccess(
            "b",
            False,
            b_pattern,
            4.0,
            loop="k",
            scope=("wi_i", "wi_j", "k"),
            stride_bytes=b_stride,
            strides_by_loop=(("wi_i", 0), ("wi_j", 4), ("k", 4 * n)),
            footprint_hint=slab_footprint,
        ),
        MemoryAccess(
            "c",
            True,
            AccessPattern.COALESCED
            if device_kind == "gpu"
            else AccessPattern.UNIT_STRIDE,
            4.0,
            loop="wi_j",
            scope=("wi_i", "wi_j"),
            strides_by_loop=(("wi_i", 4 * n), ("wi_j", 4), ("k", 0)),
        ),
    )
    ir = KernelIR(
        loops=loops,
        accesses=accesses,
        flops_per_trip=2.0,
        divergence=0.0,
        work_group_threads=TILE * TILE,
        notes=("base sgemm (one work-item per C element)",),
    )
    return KernelVariant(
        name="base",
        ir=ir,
        executor=_executor,
        wa_factor=1,
        work_group_size=TILE * TILE,
        description="naive tile kernel, k-loop per work-item",
    )


def tiled_variant(n: int, device_kind: str) -> KernelVariant:
    """Parboil's optimized sgemm: scratchpad tiling + 16× coarsening.

    A work-group stages A and B tiles through scratchpad and computes a
    64×64 block of C (16 units), cutting global traffic 16× — a win where
    scratchpad is real silicon, a copy-cost loss where it lowers to the
    cache hierarchy (Fig 10a vs 10b).  ``scratchpad_bytes`` carries the
    *staged volume* per work-group.
    """
    base = base_variant(n, device_kind)
    staged = 2 * 4 * TILE * 4 * n  # A-slab + B-slab for a 64-wide block
    return tile_scratchpad(
        base,
        scratchpad_bytes=staged,
        traffic_scale={"a": 1.0 / TILE, "b": 1.0 / TILE},
        wa_factor_scale=16,
        label="tiled16x,coarsened",
    )


def make_args_factory(
    n: int, config: ReproConfig = DEFAULT_CONFIG
) -> Callable[[], Dict[str, object]]:
    """Argument factory with fixed random inputs and a fresh output."""
    rng = config.rng("sgemm", n)
    a = rng.standard_normal((n, n)).astype(np.float32)
    b = rng.standard_normal((n, n)).astype(np.float32)

    def make_args() -> Dict[str, object]:
        return {
            "n": n,
            "a": Buffer("a", a, writable=False),
            "b": Buffer("b", b, writable=False),
            "c": Buffer("c", np.zeros((n, n), dtype=np.float32)),
        }

    return make_args


def make_checker(n: int, config: ReproConfig = DEFAULT_CONFIG):
    """Output validator against numpy matmul."""
    rng = config.rng("sgemm", n)
    a = rng.standard_normal((n, n)).astype(np.float32)
    b = rng.standard_normal((n, n)).astype(np.float32)
    expected = a @ b

    def check(args: Mapping[str, object]) -> bool:
        c = args["c"].data  # type: ignore[union-attr]
        return bool(np.allclose(c, expected, rtol=1e-3, atol=1e-3))

    return check


def workload_units(n: int) -> int:
    """C tiles of one launch."""
    return (n // TILE) ** 2


def vectorization_case(
    n: int = DEFAULT_N, config: ReproConfig = DEFAULT_CONFIG
) -> BenchmarkCase:
    """Fig 1: scalar / 4-way / 8-way vector code on the CPU.

    Variants share the vectorizer-friendly loop order (work-items
    innermost so lanes map to adjacent C columns); only the width
    differs.  :func:`heuristic_width` tells the experiment which bar the
    Intel heuristic picks.
    """
    base = base_variant(n, "cpu")
    friendly = reorder_loops(base, ("k", "wi_i", "wi_j"), label="vecorder")
    variants = tuple(
        vectorize(friendly, width) for width in (1, 4, 8)
    )
    pool = VariantPool(
        spec=KernelSpec(signature=sgemm_signature()),
        variants=variants,
    )
    return BenchmarkCase(
        name="sgemm/cpu/vectorization",
        pool=pool,
        make_args=make_args_factory(n, config),
        workload_units=workload_units(n),
        check=make_checker(n, config),
        notes="Fig 1: Intel vectorizer width study",
    )


def heuristic_width(n: int = DEFAULT_N) -> int:
    """The width the Intel heuristic picks for sgemm (4: divergence-free)."""
    return intel_vector_width(base_variant(n, "cpu").ir)


def schedule_case(
    n: int = DEFAULT_N, config: ReproConfig = DEFAULT_CONFIG
) -> BenchmarkCase:
    """Fig 8: all 6 loop orders of the base kernel on the CPU."""
    base = base_variant(n, "cpu")
    variants = tuple(
        auto_vectorize(variant) for _, variant in enumerate_schedules(base)
    )
    pool = VariantPool(
        spec=KernelSpec(signature=sgemm_signature()),
        variants=variants,
    )
    return BenchmarkCase(
        name="sgemm/cpu/schedules",
        pool=pool,
        make_args=make_args_factory(n, config),
        workload_units=workload_units(n),
        check=make_checker(n, config),
        notes="Case Study I: LC scheduling, CPU",
    )


def schedule_family(n: int = DEFAULT_N):
    """(order, variant) pairs for the LC heuristic baseline.

    Matches the pool: each scheduled variant passes through icc's
    auto-vectorizer model.
    """
    return [
        (order, auto_vectorize(variant))
        for order, variant in enumerate_schedules(base_variant(n, "cpu"))
    ]


def mixed_case(
    device_kind: str,
    n: int = DEFAULT_N,
    config: ReproConfig = DEFAULT_CONFIG,
) -> BenchmarkCase:
    """Fig 10: Parboil's two versions (base, tiled+coarsened).

    On the CPU, the base version's simple structure lets the compiler
    reschedule and fully vectorize it ("the greatest flexibility for the
    compiler in planning how to serialize execution of work-items",
    paper §4.3), while the tiled version's barriers pin its structure:
    the caches already capture the reuse the tile stages, so it keeps
    only the staging copies and a narrower profitable vector width.
    """
    if device_kind == "cpu":
        base = auto_vectorize(
            reorder_loops(
                base_variant(n, "cpu"), ("wi_i", "k", "wi_j"), label="lc"
            )
        )
        tiled = vectorize(
            tile_scratchpad(
                reorder_loops(
                    base_variant(n, "cpu"), ("wi_i", "k", "wi_j"), label="lc"
                ),
                scratchpad_bytes=2 * 4 * TILE * 4 * n,
                traffic_scale={"a": 1.0, "b": 1.0},
                wa_factor_scale=16,
                label="tiled16x,coarsened",
            ),
            4,
            label="4-way",
        )
        variants = (base, tiled)
    else:
        variants = (
            base_variant(n, device_kind),
            tiled_variant(n, device_kind),
        )
    pool = VariantPool(
        spec=KernelSpec(signature=sgemm_signature()),
        variants=variants,
    )
    return BenchmarkCase(
        name=f"sgemm/{device_kind}/mixed",
        pool=pool,
        make_args=make_args_factory(n, config),
        workload_units=workload_units(n),
        check=make_checker(n, config),
        notes="Case Study III: mixed compile-time optimizations",
    )
