"""stencil: 3-D 7-point Jacobi iteration (Parboil).

A regular, bandwidth-bound kernel — the canonical fully-productive
profiling target (paper §2.3 names stencil alongside BLAS).  It appears
in:

* **Fig 8** — LC scheduling on CPU: 6 loop orders of (wi_z, wi_y, wi_x);
  orders ending in the x-row are unit-stride streams, orders ending in y
  or z stride by a row or a plane.
* **Fig 10** — mixed optimizations: Parboil ships three versions — base,
  2-D scratchpad tiling + x-coarsening, and z-coarsening — with work
  assignment factors of 64× and 128× relative to base (paper §4.3).  On
  Kepler, z-coarsening wins and tiling adds nothing on top; on CPU the
  base version wins.

The **workload unit** is a block of UNIT_Y×UNIT_Z x-rows (16 rows), so
the loop nest has real extent in every dimension and schedule
permutations are meaningful; iterative solvers launch the kernel once per
time step and profile only the first (§3.1).  The base work-group covers
one unit, so Parboil's 64×/128× work assignment factors relative to a
row-sized work-group become 4×/8× relative to ours — the same physical
coverage.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping

import numpy as np

from ..compiler.transforms.coarsen import coarsen
from ..compiler.transforms.schedule import enumerate_schedules
from ..compiler.transforms.tile import tile_scratchpad
from ..compiler.transforms.vectorize import auto_vectorize
from ..compiler.variants import VariantPool
from ..config import DEFAULT_CONFIG, ReproConfig
from ..kernel.buffers import Buffer
from ..kernel.ir import (
    AccessPattern,
    KernelIR,
    Loop,
    LoopBound,
    MemoryAccess,
)
from ..kernel.kernel import KernelSpec, KernelVariant
from ..kernel.signature import ArgSpec, KernelSignature
from .base import BenchmarkCase

#: Default grid (nx, ny, nz): Parboil's default is 512×512×64; we keep the
#: same plane shape at a quarter the depth for simulation speed.
DEFAULT_GRID = (256, 256, 32)

#: Rows per unit along y and planes per unit along z.
UNIT_Y = 8
UNIT_Z = 2

#: Jacobi coefficients (central, face neighbours).
C0 = np.float32(0.5)
C1 = np.float32(1.0 / 12.0)


def stencil_signature() -> KernelSignature:
    """The kernel contract every stencil variant implements."""
    return KernelSignature(
        "stencil",
        (
            ArgSpec("grid", is_buffer=False),
            ArgSpec("a_in"),
            ArgSpec("a_out", is_output=True),
        ),
    )


def _row_step(src, dst, z: int, y: int, nz: int, ny: int) -> None:
    """One output row; boundary cells copy through (Parboil's halo)."""
    if z == 0 or z == nz - 1 or y == 0 or y == ny - 1:
        dst[z, y, :] = src[z, y, :]
        return
    row = src[z, y, 1:-1]
    dst[z, y, 1:-1] = (
        C0 * row
        + C1
        * (
            src[z, y, :-2]
            + src[z, y, 2:]
            + src[z, y - 1, 1:-1]
            + src[z, y + 1, 1:-1]
            + src[z - 1, y, 1:-1]
            + src[z + 1, y, 1:-1]
        )
    )
    dst[z, y, 0] = src[z, y, 0]
    dst[z, y, -1] = src[z, y, -1]


def _executor(args: Mapping[str, object], unit_start: int, unit_end: int) -> None:
    """Units are UNIT_Y×UNIT_Z row blocks in (z-block, y-block) order."""
    nx, ny, nz = args["grid"]  # type: ignore[misc]
    src = args["a_in"].data  # type: ignore[union-attr]
    dst = args["a_out"].data  # type: ignore[union-attr]
    y_blocks = ny // UNIT_Y
    for unit in range(unit_start, unit_end):
        zb, yb = divmod(unit, y_blocks)
        for dz in range(UNIT_Z):
            for dy in range(UNIT_Y):
                _row_step(src, dst, zb * UNIT_Z + dz, yb * UNIT_Y + dy, nz, ny)


def base_variant(grid, device_kind: str) -> KernelVariant:
    """Parboil's base stencil: one work-item per output cell.

    The canonical nest over a unit is (wi_z, wi_y, wi_x) with only wi_x
    actually iterating (a unit is one row); the stride metadata spans the
    full grid so schedule permutations change the walking order.
    """
    nx, ny, _nz = grid
    row_bytes = 4 * nx
    plane_bytes = row_bytes * ny
    window_bytes = float(3 * row_bytes + 2 * plane_bytes)

    def window_footprint(args, unit_ids: np.ndarray) -> np.ndarray:
        return np.full(unit_ids.shape, window_bytes)

    loops = (
        Loop("wi_z", LoopBound(static_trips=UNIT_Z), is_work_item_loop=True),
        Loop("wi_y", LoopBound(static_trips=UNIT_Y), is_work_item_loop=True),
        Loop("wi_x", LoopBound(static_trips=nx), is_work_item_loop=True),
    )
    stream = (
        AccessPattern.COALESCED
        if device_kind == "gpu"
        else AccessPattern.UNIT_STRIDE
    )
    accesses = (
        # Seven reads per cell; the three x-adjacent ones share lines, so
        # the fresh traffic is ~3 rows (center plane row + z neighbours)
        # reflected in the footprint window.
        MemoryAccess(
            "a_in",
            False,
            stream,
            7 * 4.0,
            loop="wi_x",
            scope=("wi_z", "wi_y", "wi_x"),
            strides_by_loop=(
                ("wi_x", 4),
                ("wi_y", row_bytes),
                ("wi_z", plane_bytes),
            ),
            footprint_hint=window_footprint,
        ),
        MemoryAccess(
            "a_out",
            True,
            stream,
            4.0,
            loop="wi_x",
            scope=("wi_z", "wi_y", "wi_x"),
            strides_by_loop=(
                ("wi_x", 4),
                ("wi_y", row_bytes),
                ("wi_z", plane_bytes),
            ),
        ),
    )
    ir = KernelIR(
        loops=loops,
        accesses=accesses,
        flops_per_trip=8.0,
        divergence=0.0,
        work_group_threads=nx,
        notes=("base 7-point stencil (one work-item per cell)",),
    )
    return KernelVariant(
        name="base",
        ir=ir,
        executor=_executor,
        wa_factor=1,
        work_group_size=nx,
        description="row-per-work-group Jacobi step",
    )


def tiled_variant(grid, device_kind: str) -> KernelVariant:
    """Parboil's 2-D tiled version: scratchpad tile + x-coarsening, wa 64×.

    Stages a 2-D plane tile in scratchpad so y/z-neighbour reads hit
    on-chip memory, cutting input traffic ~2×; covers 64 rows per
    work-group.
    """
    nx, _ny, _nz = grid
    base = base_variant(grid, device_kind)
    scale = 64 // (UNIT_Y * UNIT_Z)
    # Staged volume: the tile is reloaded per z-step, so the staging
    # traffic tracks the halved input volume of the whole work-group.
    staged = int(scale * 7 * 4 * nx * UNIT_Y * UNIT_Z * 0.5)
    return tile_scratchpad(
        base,
        scratchpad_bytes=staged,
        traffic_scale={"a_in": 0.5},
        wa_factor_scale=scale,
        label="tiled2d",
    )


def coarsened_variant(grid, device_kind: str) -> KernelVariant:
    """Parboil's z-coarsened version: 128 rows (several planes) per
    work-group, reusing z-neighbour planes in registers (input traffic
    ~5/7: the z-neighbours are already loaded)."""
    base = base_variant(grid, device_kind)
    if device_kind == "gpu":
        # Registers carry both z-neighbour planes and the y-halo rows of
        # the marching window: input traffic roughly halves.
        bytes_scale = 0.5
        flops_scale = 1.0
    else:
        # On the CPU the cache window already captured that reuse, and
        # keeping several planes live spills registers.
        bytes_scale = 1.0
        flops_scale = 1.2
    return coarsen(
        base,
        factor=128 // (UNIT_Y * UNIT_Z),
        flops_scale=flops_scale,
        bytes_scale={"a_in": bytes_scale},
        label="coarsen-z",
    )


def make_args_factory(
    grid, config: ReproConfig = DEFAULT_CONFIG
) -> Callable[[], Dict[str, object]]:
    """Argument factory with a fixed random input grid."""
    nx, ny, nz = grid
    rng = config.rng("stencil", grid)
    a0 = rng.standard_normal((nz, ny, nx)).astype(np.float32)

    def make_args() -> Dict[str, object]:
        return {
            "grid": grid,
            "a_in": Buffer("a_in", a0.copy(), writable=False),
            "a_out": Buffer("a_out", np.zeros_like(a0)),
        }

    return make_args


def make_checker(grid, config: ReproConfig = DEFAULT_CONFIG):
    """Output validator: one Jacobi step against a vectorized reference."""
    nx, ny, nz = grid
    rng = config.rng("stencil", grid)
    src = rng.standard_normal((nz, ny, nx)).astype(np.float32)
    expected = src.copy()
    expected[1:-1, 1:-1, 1:-1] = C0 * src[1:-1, 1:-1, 1:-1] + C1 * (
        src[1:-1, 1:-1, :-2]
        + src[1:-1, 1:-1, 2:]
        + src[1:-1, :-2, 1:-1]
        + src[1:-1, 2:, 1:-1]
        + src[:-2, 1:-1, 1:-1]
        + src[2:, 1:-1, 1:-1]
    )

    def check(args: Mapping[str, object]) -> bool:
        out = args["a_out"].data  # type: ignore[union-attr]
        return bool(np.allclose(out, expected, rtol=1e-4, atol=1e-4))

    return check


def workload_units(grid) -> int:
    """Row blocks of one launch."""
    _nx, ny, nz = grid
    return (ny // UNIT_Y) * (nz // UNIT_Z)


def schedule_case(
    grid=DEFAULT_GRID,
    config: ReproConfig = DEFAULT_CONFIG,
    iterations: int = 1,
) -> BenchmarkCase:
    """Fig 8: all 6 loop orders of the base kernel on the CPU."""
    base = base_variant(grid, "cpu")
    variants = tuple(
        auto_vectorize(variant) for _, variant in enumerate_schedules(base)
    )
    pool = VariantPool(
        spec=KernelSpec(signature=stencil_signature()),
        variants=variants,
    )
    return BenchmarkCase(
        name="stencil/cpu/schedules",
        pool=pool,
        make_args=make_args_factory(grid, config),
        workload_units=workload_units(grid),
        iterations=iterations,
        check=make_checker(grid, config) if iterations == 1 else None,
        notes="Case Study I: LC scheduling, CPU",
    )


def schedule_family(grid=DEFAULT_GRID):
    """(order, variant) pairs for the LC heuristic baseline."""
    return [
        (order, auto_vectorize(variant))
        for order, variant in enumerate_schedules(base_variant(grid, "cpu"))
    ]


def mixed_case(
    device_kind: str,
    grid=DEFAULT_GRID,
    config: ReproConfig = DEFAULT_CONFIG,
    iterations: int = 1,
) -> BenchmarkCase:
    """Fig 10: Parboil's three versions (base, tiled 64×, z-coarsened 128×)."""
    variants = (
        base_variant(grid, device_kind),
        tiled_variant(grid, device_kind),
        coarsened_variant(grid, device_kind),
    )
    pool = VariantPool(
        spec=KernelSpec(signature=stencil_signature()),
        variants=variants,
    )
    return BenchmarkCase(
        name=f"stencil/{device_kind}/mixed",
        pool=pool,
        make_args=make_args_factory(grid, config),
        workload_units=workload_units(grid),
        iterations=iterations,
        check=make_checker(grid, config) if iterations == 1 else None,
        notes="Case Study III: mixed compile-time optimizations",
    )
