"""histogram: binning with overlapping outputs (swap-mode showcase).

Not one of the paper's measured benchmarks, but the canonical member of
the class §2.3 reserves for swap-based partial-productive profiling:
every work-group writes the *same* 256-bin output through global atomics,
so side effect analysis restricts profiling to swap mode and the
asynchronous flow is unavailable (Table 1).

Two classic variants compete, and the winner is input dependent:

* **atomic** — one global atomic add per element; cheap bookkeeping, but
  skewed inputs serialize on hot bins.
* **privatized** — per-work-group private histogram merged at the end;
  fixed merge overhead, contention-free (the privatization optimization
  §2.3 lists under swap-based profiling).

The **workload unit** is a block of 1024 input elements.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping

import numpy as np

from ..compiler.variants import VariantPool
from ..config import DEFAULT_CONFIG, ReproConfig
from ..kernel.buffers import Buffer
from ..kernel.ir import (
    AccessPattern,
    AtomicKind,
    KernelIR,
    Loop,
    LoopBound,
    MemoryAccess,
)
from ..kernel.kernel import KernelSpec, KernelVariant
from ..kernel.signature import ArgSpec, KernelSignature
from .base import BenchmarkCase

#: Elements per workload unit and histogram bins.
ELEMS_PER_UNIT = 1024
BINS = 256
#: Default input size.
DEFAULT_ELEMS = 1 << 20


def histogram_signature() -> KernelSignature:
    """The kernel contract every histogram variant implements."""
    return KernelSignature(
        "histogram",
        (
            ArgSpec("data"),
            ArgSpec("hist", is_output=True),
        ),
    )


def _executor(args: Mapping[str, object], unit_start: int, unit_end: int) -> None:
    """Accumulate the unit range's elements into the shared histogram."""
    data = args["data"].data  # type: ignore[union-attr]
    hist = args["hist"].data  # type: ignore[union-attr]
    e0 = unit_start * ELEMS_PER_UNIT
    e1 = min(unit_end * ELEMS_PER_UNIT, len(data))
    if e0 >= e1:
        return
    hist += np.bincount(data[e0:e1], minlength=BINS).astype(hist.dtype)


def _contention(args: Mapping[str, object], unit_ids: np.ndarray) -> np.ndarray:
    """Serialization factor of atomic updates per unit.

    Proportional to the collision probability of the unit's elements —
    the maximum bin share within the block.  Uniform data ≈ 1/BINS hot
    share; skewed data concentrates updates and serializes them.
    """
    data = args["data"].data  # type: ignore[union-attr]
    factors = np.ones(len(unit_ids))
    for index, unit in enumerate(np.asarray(unit_ids)):
        e0 = int(unit) * ELEMS_PER_UNIT
        e1 = min(e0 + ELEMS_PER_UNIT, len(data))
        if e1 <= e0:
            continue
        counts = np.bincount(data[e0:e1], minlength=BINS)
        factors[index] = 1.0 + 31.0 * float(counts.max()) / (e1 - e0)
    return factors


def atomic_variant() -> KernelVariant:
    """One global atomic add per element."""
    loops = (
        Loop("wi_e", LoopBound(static_trips=ELEMS_PER_UNIT), is_work_item_loop=True),
        Loop(
            "contention",
            LoopBound(evaluator=_contention, description="hot-bin serialization"),
        ),
    )
    accesses = (
        MemoryAccess(
            "data",
            False,
            AccessPattern.COALESCED,
            4.0 * ELEMS_PER_UNIT / ELEMS_PER_UNIT,
            loop="wi_e",
            scope=("wi_e",),
        ),
        MemoryAccess(
            "hist",
            True,
            AccessPattern.GATHER,
            4.0,
            loop="contention",
            scope=("wi_e", "contention"),
            atomic=AtomicKind.GLOBAL,
            working_set_hint="hist",
        ),
    )
    ir = KernelIR(
        loops=loops,
        accesses=accesses,
        flops_per_trip=1.0,
        divergence=0.1,
        output_ranges_overlap=True,
        work_group_threads=256,
        notes=("global-atomic histogram",),
    )
    return KernelVariant(
        name="atomic",
        ir=ir,
        executor=_executor,
        wa_factor=1,
        work_group_size=256,
        description="atomic add per element",
    )


def privatized_variant() -> KernelVariant:
    """Per-work-group private histogram with a final merge."""
    loops = (
        Loop("wi_e", LoopBound(static_trips=ELEMS_PER_UNIT), is_work_item_loop=True),
        Loop("merge", LoopBound(static_trips=BINS)),
    )
    accesses = (
        MemoryAccess(
            "data",
            False,
            AccessPattern.COALESCED,
            4.0,
            loop="wi_e",
            scope=("wi_e",),
        ),
        # Private updates land in scratchpad (local atomics are cheap);
        # the merge writes BINS global atomics per work-group.
        MemoryAccess(
            "hist",
            True,
            AccessPattern.COALESCED,
            4.0,
            loop="merge",
            scope=("merge",),
            atomic=AtomicKind.GLOBAL,
        ),
    )
    ir = KernelIR(
        loops=loops,
        accesses=accesses,
        flops_per_trip=1.5,
        divergence=0.1,
        scratchpad_bytes=BINS * 4,
        uses_barrier=True,
        output_ranges_overlap=True,
        work_group_threads=256,
        notes=("privatized histogram",),
    )
    return KernelVariant(
        name="privatized",
        ir=ir,
        executor=_executor,
        wa_factor=1,
        work_group_size=256,
        description="scratchpad-private histogram + merge",
    )


def make_args_factory(
    distribution: str = "uniform",
    elems: int = DEFAULT_ELEMS,
    config: ReproConfig = DEFAULT_CONFIG,
) -> Callable[[], Dict[str, object]]:
    """Argument factory; ``distribution`` is ``"uniform"`` or ``"skewed"``."""
    rng = config.rng("histogram", distribution, elems)
    if distribution == "uniform":
        data = rng.integers(0, BINS, size=elems).astype(np.int32)
    elif distribution == "skewed":
        # 80% of the mass in 4 hot bins.
        hot = rng.integers(0, 4, size=elems).astype(np.int32)
        cold = rng.integers(0, BINS, size=elems).astype(np.int32)
        data = np.where(rng.uniform(size=elems) < 0.8, hot, cold)
    else:
        raise ValueError(f"unknown distribution {distribution!r}")

    def make_args() -> Dict[str, object]:
        return {
            "data": Buffer("data", data, writable=False),
            "hist": Buffer("hist", np.zeros(BINS, dtype=np.int64)),
        }

    return make_args


def make_checker(
    distribution: str = "uniform",
    elems: int = DEFAULT_ELEMS,
    config: ReproConfig = DEFAULT_CONFIG,
):
    """Output validator against one-shot bincount."""
    data = make_args_factory(distribution, elems, config)()["data"].data

    def check(args: Mapping[str, object]) -> bool:
        hist = args["hist"].data  # type: ignore[union-attr]
        return bool(
            np.array_equal(hist, np.bincount(data, minlength=BINS))
        )

    return check


def swap_case(
    distribution: str = "uniform",
    elems: int = DEFAULT_ELEMS,
    config: ReproConfig = DEFAULT_CONFIG,
) -> BenchmarkCase:
    """Swap-mode selection between atomic and privatized binning."""
    pool = VariantPool(
        spec=KernelSpec(signature=histogram_signature()),
        variants=(atomic_variant(), privatized_variant()),
    )
    return BenchmarkCase(
        name=f"histogram/{distribution}",
        pool=pool,
        make_args=make_args_factory(distribution, elems, config),
        workload_units=(elems + ELEMS_PER_UNIT - 1) // ELEMS_PER_UNIT,
        check=make_checker(distribution, elems, config),
        notes="swap-based profiling showcase (atomics, overlapping output)",
    )
