"""DySel reproduction: lightweight dynamic kernel-variant selection.

A faithful Python reproduction of *DySel: Lightweight Dynamic Selection
for Kernel-based Data-parallel Programming Model* (Chang, Kim, Hwu —
ASPLOS 2016), built on a simulated heterogeneous substrate (see
DESIGN.md for the substitution rationale).

Quick start::

    from repro import DySelRuntime, make_cpu, ReproConfig
    from repro.kernel import KernelSpec, KernelSignature, ArgSpec

    config = ReproConfig()
    runtime = DySelRuntime(make_cpu(config), config)
    runtime.declare_kernel(KernelSpec(signature=my_signature))
    runtime.add_kernel("my_kernel", variant_a)
    runtime.add_kernel("my_kernel", variant_b)
    result = runtime.launch_kernel("my_kernel", args, workload_units)
    print(result.selected, result.elapsed_cycles)

Subpackages: :mod:`repro.kernel` (programming model), :mod:`repro.device`
(simulated CPU/GPU), :mod:`repro.compiler` (variants, analyses, baseline
heuristics), :mod:`repro.core` (the DySel runtime), :mod:`repro.faults`
(deterministic fault injection and variant quarantine),
:mod:`repro.drift` (online drift detection and re-selection),
:mod:`repro.predict` (predictive zero-profile selection),
:mod:`repro.workloads` (the evaluation's benchmarks) and
:mod:`repro.harness` (experiments regenerating every table and figure).
"""

from .analyze import (
    Diagnostic,
    PoolVerifier,
    Severity,
    VerificationReport,
    VerifyOverrides,
    verify_pool,
)
from .config import DEFAULT_CONFIG, NoiseModel, ReproConfig
from .core import (
    DySelContext,
    DySelKernelRegistry,
    DySelRuntime,
    LaunchResult,
)
from .device import ExecutionEngine, make_cpu, make_gpu
from .drift import DriftConfig, DriftDetector, ReselectionController
from .errors import (
    LaunchAbortedError,
    ReproError,
    VariantFault,
    VerificationError,
)
from .faults import FaultKind, FaultPlan, FaultRule, VariantQuarantine
from .modes import OrchestrationFlow, ProfilingMode
from .predict import PredictConfig, Prediction, SelectionPredictor
from .serve import (
    LaunchScheduler,
    SelectionStore,
    ServeRequest,
    ShardedSelectionStore,
    SplitOutcome,
    WorkloadSignature,
)

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_CONFIG",
    "Diagnostic",
    "DriftConfig",
    "DriftDetector",
    "DySelContext",
    "DySelKernelRegistry",
    "DySelRuntime",
    "ExecutionEngine",
    "FaultKind",
    "FaultPlan",
    "FaultRule",
    "LaunchAbortedError",
    "LaunchResult",
    "LaunchScheduler",
    "NoiseModel",
    "OrchestrationFlow",
    "PoolVerifier",
    "PredictConfig",
    "Prediction",
    "ProfilingMode",
    "ReproConfig",
    "SelectionPredictor",
    "ReproError",
    "ReselectionController",
    "SelectionStore",
    "ServeRequest",
    "Severity",
    "ShardedSelectionStore",
    "SplitOutcome",
    "VariantFault",
    "VariantQuarantine",
    "WorkloadSignature",
    "VerificationError",
    "VerificationReport",
    "VerifyOverrides",
    "__version__",
    "make_cpu",
    "make_gpu",
    "verify_pool",
]
