"""Re-selection control: turning confirmed drift into one re-profile.

The paper's profiling activation flag (§3.1) is programmer-driven: the
application decides when its inputs changed enough to re-profile.  A
serving fleet cannot ask the programmer, so
:class:`ReselectionController` closes the loop mechanically:

1. every profiling-off launch's measured cycles per unit feeds the
   :class:`~repro.drift.monitor.DriftMonitor`;
2. a **confirmed** drift signal opens a :class:`DriftEpisode` for the
   class, *demotes* the stale persisted selection (TTL-style decay via
   the injected ``decay_hook`` — the entry keeps serving until a
   re-profile lands, it just stops being immortal), and arms the
   re-profile flag;
3. exactly one launch **claims** the flag (consume-once under a lock, so
   concurrent clients of the same class cannot stampede into N
   re-profiles) and runs with profiling re-armed
   (``policy.decide`` reason ``"drift re-activation"``);
4. the new winner **completes** the episode — recorded with before/after
   variants — and the class's detector re-warms on post-shift traffic.

A claimed re-profile that fails (fault-aborted launch, demoted plan)
**releases** the claim so the next launch retries; the episode stays
open until some re-profile succeeds.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from ..errors import DriftError
from .detector import DriftConfig, DriftSignal
from .monitor import DriftMonitor

#: Completed episodes kept for introspection/persistence (per controller).
MAX_EPISODE_HISTORY = 256


@dataclass
class DriftEpisode:
    """One confirmed drift and what re-selection did about it."""

    #: Workload-class key the drift was observed on.
    key: str
    #: Kernel signature name (for cross-referencing invalidations).
    kernel: str
    #: The selection that went stale.
    stale_variant: str
    #: Detector sample count at confirmation time.
    confirmed_at_sample: int
    #: EWMA cycles-per-unit when drift confirmed (the shifted regime).
    mean_at_confirm: float
    #: The re-profiled winner (``None`` while the episode is open).
    new_variant: Optional[str] = None
    #: Whether a re-profile has claimed this episode and is in flight.
    claimed: bool = field(default=False, repr=False)
    #: Whether the episode closed with a fresh selection.
    completed: bool = False

    @property
    def reselected(self) -> bool:
        """Whether re-selection actually changed the variant."""
        return self.completed and self.new_variant != self.stale_variant


class ReselectionController:
    """Thread-safe drift → re-profile feedback loop (see module docs)."""

    def __init__(
        self,
        config: Optional[DriftConfig] = None,
        monitor: Optional[DriftMonitor] = None,
        decay_hook: Optional[Callable[[str], None]] = None,
    ) -> None:
        """Build a controller.

        ``decay_hook(key)`` is called once per confirmed episode so the
        owner (the selection store) can demote the stale entry; it runs
        outside the controller lock (it may take the store lock).
        """
        self.config = config if config is not None else DriftConfig()
        self.monitor = (
            monitor if monitor is not None else DriftMonitor(self.config)
        )
        self.decay_hook = decay_hook
        self._lock = threading.Lock()
        self._pending: Dict[str, DriftEpisode] = {}
        self._episodes: List[DriftEpisode] = []
        self.suspects = 0
        self.confirmations = 0
        self.reselections = 0

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def observe(
        self,
        key: str,
        kernel: str,
        variant: str,
        cycles_per_unit: float,
    ) -> DriftSignal:
        """Feed one profiling-off launch's measurement for a class.

        Returns the detector's signal; a ``CONFIRMED`` return means an
        episode is now open and the next launch of this class should
        re-profile (:meth:`should_rearm` / :meth:`claim`).
        """
        signal = self.monitor.observe(key, cycles_per_unit)
        if signal is DriftSignal.SUSPECT:
            with self._lock:
                self.suspects += 1
        elif signal is DriftSignal.CONFIRMED:
            detector = self.monitor.detector(key)
            assert detector is not None
            fresh = False
            with self._lock:
                self.confirmations += 1
                if key not in self._pending:
                    self._pending[key] = DriftEpisode(
                        key=key,
                        kernel=kernel,
                        stale_variant=variant,
                        confirmed_at_sample=detector.samples,
                        mean_at_confirm=detector.mean,
                    )
                    fresh = True
            if fresh and self.decay_hook is not None:
                self.decay_hook(key)
        return signal

    # ------------------------------------------------------------------
    # Re-profile arbitration
    # ------------------------------------------------------------------

    def should_rearm(self, key: str) -> bool:
        """Whether an open, unclaimed episode wants this class re-profiled."""
        with self._lock:
            episode = self._pending.get(key)
            return episode is not None and not episode.claimed

    def claim(self, key: str) -> bool:
        """Atomically take the re-profile duty for one open episode.

        Consume-once: the first caller per episode gets ``True`` and must
        either :meth:`complete` (re-profile published) or :meth:`release`
        (re-profile failed); everyone else gets ``False`` and keeps
        serving the decayed-but-live selection.
        """
        with self._lock:
            episode = self._pending.get(key)
            if episode is None or episode.claimed:
                return False
            episode.claimed = True
            return True

    def release(self, key: str) -> bool:
        """Give a failed re-profile's claim back (the episode stays open)."""
        with self._lock:
            episode = self._pending.get(key)
            if episode is None or not episode.claimed:
                return False
            episode.claimed = False
            return True

    def complete(
        self, key: str, new_variant: str
    ) -> Optional[DriftEpisode]:
        """Close the class's open episode with the fresh winner.

        Also resets the class's detector so the baseline re-warms on the
        new selection's throughput.  Returns the closed episode, or
        ``None`` when no episode was open (e.g. a routine cold-cache
        profile on a class that never drifted).
        """
        with self._lock:
            episode = self._pending.pop(key, None)
            if episode is None:
                return None
            episode.new_variant = new_variant
            episode.completed = True
            episode.claimed = False
            self._episodes.append(episode)
            del self._episodes[:-MAX_EPISODE_HISTORY]
            self.reselections += 1
        self.monitor.reset(key)
        return episode

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def episodes(self) -> Tuple[DriftEpisode, ...]:
        """Completed episodes, oldest first (capped history)."""
        with self._lock:
            return tuple(self._episodes)

    @property
    def open_episodes(self) -> Tuple[DriftEpisode, ...]:
        """Episodes confirmed but not yet re-selected."""
        with self._lock:
            return tuple(self._pending.values())

    # ------------------------------------------------------------------
    # Persistence (SelectionStore integration)
    # ------------------------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        """JSON-safe snapshot: detectors + open/closed episodes."""
        with self._lock:
            pending = [
                self._episode_payload(e) for e in self._pending.values()
            ]
            closed = [self._episode_payload(e) for e in self._episodes]
        return {
            "detectors": self.monitor.to_payload(),
            "pending": pending,
            "episodes": closed,
        }

    @staticmethod
    def _episode_payload(episode: DriftEpisode) -> Dict[str, object]:
        return {
            "key": episode.key,
            "kernel": episode.kernel,
            "stale_variant": episode.stale_variant,
            "confirmed_at_sample": episode.confirmed_at_sample,
            "mean_at_confirm": episode.mean_at_confirm,
            "new_variant": episode.new_variant,
            "completed": episode.completed,
        }

    @staticmethod
    def _episode_from_payload(item: Mapping[str, object]) -> DriftEpisode:
        try:
            return DriftEpisode(
                key=str(item["key"]),
                kernel=str(item["kernel"]),
                stale_variant=str(item["stale_variant"]),
                confirmed_at_sample=int(item["confirmed_at_sample"]),  # type: ignore[arg-type]
                mean_at_confirm=float(item["mean_at_confirm"]),  # type: ignore[arg-type]
                new_variant=(
                    None
                    if item.get("new_variant") is None
                    else str(item["new_variant"])
                ),
                completed=bool(item.get("completed", False)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DriftError(
                f"drift episode payload is malformed: {exc}"
            ) from exc

    def load_payload(self, payload: Mapping[str, object]) -> None:
        """Restore state saved by :meth:`to_payload` (replaces state).

        Claims are deliberately *not* persisted: a claim names an
        in-flight launch of the saving process, which does not survive a
        restart — re-loading an open episode leaves it unclaimed so the
        next launch retries the re-profile.
        """
        detectors = payload.get("detectors", {})
        if not isinstance(detectors, Mapping):
            raise DriftError(
                f"drift payload 'detectors' is {type(detectors).__name__}, "
                "expected an object"
            )
        pending_raw = payload.get("pending", [])
        episodes_raw = payload.get("episodes", [])
        if not isinstance(pending_raw, list) or not isinstance(
            episodes_raw, list
        ):
            raise DriftError(
                "drift payload 'pending'/'episodes' must be lists"
            )
        pending = {}
        for item in pending_raw:
            episode = self._episode_from_payload(item)
            pending[episode.key] = episode
        episodes = [self._episode_from_payload(item) for item in episodes_raw]
        self.monitor.load_payload(detectors)
        with self._lock:
            self._pending = pending
            self._episodes = episodes[-MAX_EPISODE_HISTORY:]

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"ReselectionController({len(self._pending)} open, "
                f"{len(self._episodes)} completed, "
                f"{self.confirmations} confirmation(s))"
            )
