"""Online change detection over chunk-throughput observations.

A cached selection is a bet that the traffic that produced it keeps
arriving.  When the input regime shifts (a sparse matrix becomes dense,
a batch size distribution moves), the pinned winner's measured cycles
per workload unit drift away from the baseline the selection was made
under — and the fleet keeps replaying a stale answer (Lawson 2020 shows
selection quality decays exactly this way; Seer reacts per input for the
same reason).  :class:`DriftDetector` watches that stream of
measurements and raises a confirmed drift signal when the throughput of
the pinned variant has durably changed.

Detector design (one detector per workload-class key):

* **EWMA mean + variance** — every observation folds into an
  exponentially weighted mean/variance pair (alpha ``ewma_alpha``);
  these are reported for introspection and normalize the test statistic.
* **Two-sided Page–Hinkley test** — after a ``warmup`` baseline is
  frozen, each observation contributes its *relative deviation*
  ``r = (x - baseline) / baseline`` to two cumulative sums (one per
  direction), each slack-discounted by ``delta``.  The gap between a
  cumulative sum and its running extremum is the PH score; crossing
  ``threshold`` flags the observation.
* **Hysteresis** — one flagged observation makes the detector
  *suspect*; only ``confirm`` consecutive flagged observations confirm
  drift.  A single noisy spike (an unlucky clock read, one odd input)
  de-escalates back to stable.
* **Cooldown** — after a confirmation the detector discards the next
  ``cooldown`` observations, then re-enters warmup to rebuild its
  baseline from post-shift traffic.  Re-selection and baseline
  rebuilding therefore cannot oscillate against each other.

The detector is deterministic and clock-free: state advances only on
:meth:`DriftDetector.observe` calls, so tests replay exact traces.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..errors import DriftError

#: Default EWMA smoothing for the running mean/variance.
DEFAULT_EWMA_ALPHA = 0.2


class DriftSignal(enum.Enum):
    """What one observation did to the detector's view of the world."""

    #: Nothing notable: warming up, cooling down, or stable.
    NONE = "none"
    #: The PH score crossed the threshold; awaiting confirmation.
    SUSPECT = "suspect"
    #: ``confirm`` consecutive exceedances: drift is real.
    CONFIRMED = "confirmed"


class DriftState(enum.Enum):
    """The detector's lifecycle phase."""

    #: Accumulating the baseline; no detection yet.
    WARMUP = "warmup"
    #: Baseline frozen; watching for change.
    STABLE = "stable"
    #: At least one recent exceedance; counting confirmations.
    SUSPECT = "suspect"
    #: Post-confirmation quiet period; observations are discarded.
    COOLDOWN = "cooldown"


@dataclass(frozen=True)
class DriftConfig:
    """Tuning knobs for :class:`DriftDetector` (see ``docs/drift.md``).

    The defaults are sized for the simulator's clock noise (2% lognormal
    execution jitter): a sustained ~15% throughput change confirms
    within a handful of observations, while stationary noise never
    accumulates past the slack.
    """

    #: EWMA smoothing factor for the running mean/variance (0 < a <= 1).
    ewma_alpha: float = DEFAULT_EWMA_ALPHA
    #: Page–Hinkley slack: per-observation relative deviation that is
    #: tolerated for free.  Must exceed typical clock noise.
    delta: float = 0.05
    #: PH score threshold (accumulated relative deviation beyond slack).
    threshold: float = 0.6
    #: Observations used to freeze the baseline mean.
    warmup: int = 8
    #: Consecutive exceedances required to confirm drift.
    confirm: int = 3
    #: Observations discarded after a confirmation before re-warming.
    cooldown: int = 8

    def __post_init__(self) -> None:
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise DriftError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )
        if self.delta < 0.0:
            raise DriftError(f"delta must be >= 0, got {self.delta}")
        if self.threshold <= 0.0:
            raise DriftError(
                f"threshold must be positive, got {self.threshold}"
            )
        if self.warmup < 1:
            raise DriftError(f"warmup must be >= 1, got {self.warmup}")
        if self.confirm < 1:
            raise DriftError(f"confirm must be >= 1, got {self.confirm}")
        if self.cooldown < 0:
            raise DriftError(f"cooldown must be >= 0, got {self.cooldown}")


class DriftDetector:
    """Two-sided Page–Hinkley change detector with hysteresis + cooldown.

    Feed it one positive measurement per chunk/launch (cycles per
    workload unit); it returns a :class:`DriftSignal` per observation.
    Not thread-safe on its own — :class:`~repro.drift.monitor.DriftMonitor`
    adds the locking for concurrent feeders.
    """

    def __init__(self, config: Optional[DriftConfig] = None) -> None:
        self.config = config if config is not None else DriftConfig()
        self.samples = 0
        self.confirmations = 0
        self._reset_tracking()

    def _reset_tracking(self) -> None:
        """Forget the baseline and all cumulative statistics."""
        self.state = DriftState.WARMUP
        self.mean = 0.0
        self.variance = 0.0
        self._warmup_seen = 0
        self._warmup_sum = 0.0
        self.baseline: Optional[float] = None
        self._inc_sum = 0.0
        self._inc_min = 0.0
        self._dec_sum = 0.0
        self._dec_max = 0.0
        self._consecutive = 0
        self._cooldown_left = 0

    def reset(self) -> None:
        """Re-enter warmup (e.g. after the selection itself changed)."""
        self._reset_tracking()

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------

    def observe(self, value: float) -> DriftSignal:
        """Fold one measurement in; report what it revealed."""
        if not math.isfinite(value) or value <= 0.0:
            raise DriftError(
                f"drift observations must be positive and finite, "
                f"got {value!r}"
            )
        self.samples += 1
        self._update_ewma(value)

        if self.state is DriftState.COOLDOWN:
            self._cooldown_left -= 1
            if self._cooldown_left <= 0:
                # Cooldown over: rebuild the baseline from scratch.
                confirmations = self.confirmations
                samples = self.samples
                mean, variance = self.mean, self.variance
                self._reset_tracking()
                self.confirmations = confirmations
                self.samples = samples
                self.mean, self.variance = mean, variance
            return DriftSignal.NONE

        if self.state is DriftState.WARMUP:
            self._warmup_seen += 1
            self._warmup_sum += value
            if self._warmup_seen >= self.config.warmup:
                self.baseline = self._warmup_sum / self._warmup_seen
                self.state = DriftState.STABLE
            return DriftSignal.NONE

        assert self.baseline is not None and self.baseline > 0.0
        relative = (value - self.baseline) / self.baseline
        exceeded = self._page_hinkley(relative)
        if not exceeded:
            if self.state is DriftState.SUSPECT:
                self.state = DriftState.STABLE
            self._consecutive = 0
            return DriftSignal.NONE

        self._consecutive += 1
        if self._consecutive >= self.config.confirm:
            self.confirmations += 1
            self.state = DriftState.COOLDOWN
            self._cooldown_left = self.config.cooldown
            self._consecutive = 0
            if self.config.cooldown == 0:
                # Degenerate config: skip straight to re-warming.
                confirmations = self.confirmations
                samples = self.samples
                mean, variance = self.mean, self.variance
                self._reset_tracking()
                self.confirmations = confirmations
                self.samples = samples
                self.mean, self.variance = mean, variance
            return DriftSignal.CONFIRMED
        self.state = DriftState.SUSPECT
        return DriftSignal.SUSPECT

    def _update_ewma(self, value: float) -> None:
        """Standard EWMA mean/variance recursion."""
        if self.samples == 1:
            self.mean = value
            self.variance = 0.0
            return
        alpha = self.config.ewma_alpha
        deviation = value - self.mean
        self.mean += alpha * deviation
        self.variance = (1.0 - alpha) * (
            self.variance + alpha * deviation * deviation
        )

    def _page_hinkley(self, relative: float) -> bool:
        """Advance both one-sided PH sums; True when either score alarms.

        ``relative`` is the slack-free deviation from the frozen
        baseline.  The increasing test catches throughput regressions
        (cycles per unit going up); the decreasing test catches
        improvements — either way the regime moved and the old selection
        evidence is stale.
        """
        delta = self.config.delta
        self._inc_sum += relative - delta
        self._inc_min = min(self._inc_min, self._inc_sum)
        self._dec_sum += relative + delta
        self._dec_max = max(self._dec_max, self._dec_sum)
        score = max(
            self._inc_sum - self._inc_min, self._dec_max - self._dec_sum
        )
        return score > self.config.threshold

    @property
    def score(self) -> float:
        """The current PH score (0 while warming or cooling)."""
        if self.state in (DriftState.WARMUP, DriftState.COOLDOWN):
            return 0.0
        return max(
            self._inc_sum - self._inc_min, self._dec_max - self._dec_sum
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        """JSON-safe snapshot of the detector's full state."""
        return {
            "state": self.state.value,
            "samples": self.samples,
            "confirmations": self.confirmations,
            "mean": self.mean,
            "variance": self.variance,
            "warmup_seen": self._warmup_seen,
            "warmup_sum": self._warmup_sum,
            "baseline": self.baseline,
            "inc_sum": self._inc_sum,
            "inc_min": self._inc_min,
            "dec_sum": self._dec_sum,
            "dec_max": self._dec_max,
            "consecutive": self._consecutive,
            "cooldown_left": self._cooldown_left,
        }

    @classmethod
    def from_payload(
        cls,
        payload: Mapping[str, object],
        config: Optional[DriftConfig] = None,
    ) -> "DriftDetector":
        """Rebuild a detector saved by :meth:`to_payload`."""
        detector = cls(config)
        try:
            detector.state = DriftState(str(payload["state"]))
            detector.samples = int(payload["samples"])  # type: ignore[arg-type]
            detector.confirmations = int(payload["confirmations"])  # type: ignore[arg-type]
            detector.mean = float(payload["mean"])  # type: ignore[arg-type]
            detector.variance = float(payload["variance"])  # type: ignore[arg-type]
            detector._warmup_seen = int(payload["warmup_seen"])  # type: ignore[arg-type]
            detector._warmup_sum = float(payload["warmup_sum"])  # type: ignore[arg-type]
            baseline = payload.get("baseline")
            detector.baseline = (
                None if baseline is None else float(baseline)  # type: ignore[arg-type]
            )
            detector._inc_sum = float(payload["inc_sum"])  # type: ignore[arg-type]
            detector._inc_min = float(payload["inc_min"])  # type: ignore[arg-type]
            detector._dec_sum = float(payload["dec_sum"])  # type: ignore[arg-type]
            detector._dec_max = float(payload["dec_max"])  # type: ignore[arg-type]
            detector._consecutive = int(payload["consecutive"])  # type: ignore[arg-type]
            detector._cooldown_left = int(payload["cooldown_left"])  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError) as exc:
            raise DriftError(
                f"drift detector payload is malformed: {exc}"
            ) from exc
        return detector

    def __repr__(self) -> str:
        return (
            f"DriftDetector(state={self.state.value}, "
            f"samples={self.samples}, mean={self.mean:.3g}, "
            f"score={self.score:.3f}, "
            f"confirmations={self.confirmations})"
        )
