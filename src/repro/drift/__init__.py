"""Online drift detection and automatic re-selection.

This subpackage closes the feedback loop the paper leaves to the
programmer: instead of waiting for the application to re-arm the
profiling activation flag (§3.1) when inputs change, the runtime watches
each workload class's measured throughput
(:class:`DriftMonitor` / :class:`DriftDetector`, a two-sided
Page–Hinkley test with hysteresis and a cooldown window) and, on a
confirmed change, a :class:`ReselectionController` demotes the stale
persisted selection and arms exactly one re-profile for the class.

See ``docs/drift.md`` for the detector math, tuning, and how drift
interacts with quarantine and the activation flag, and
``benchmarks/bench_drift.py`` for the recovered-throughput benchmark.
"""

from .controller import (
    MAX_EPISODE_HISTORY,
    DriftEpisode,
    ReselectionController,
)
from .detector import (
    DEFAULT_EWMA_ALPHA,
    DriftConfig,
    DriftDetector,
    DriftSignal,
    DriftState,
)
from .monitor import DriftMonitor

__all__ = [
    "DEFAULT_EWMA_ALPHA",
    "MAX_EPISODE_HISTORY",
    "DriftConfig",
    "DriftDetector",
    "DriftEpisode",
    "DriftMonitor",
    "DriftSignal",
    "DriftState",
    "ReselectionController",
]
