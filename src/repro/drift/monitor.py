"""Fleet-wide drift monitoring: one detector per workload class.

:class:`DriftMonitor` is the thread-safe map from workload-class key
(``(pool, device-kind, workload-class)``, flattened to the same string
key the :class:`~repro.serve.store.SelectionStore` uses) to the
:class:`~repro.drift.detector.DriftDetector` watching that class's
chunk throughput.  Serving threads feed measurements concurrently; the
monitor serializes detector updates per key and hands back the signal.
"""

from __future__ import annotations

import threading
from typing import Dict, Mapping, Optional, Tuple

from .detector import DriftConfig, DriftDetector, DriftSignal


class DriftMonitor:
    """Thread-safe keyed collection of drift detectors."""

    def __init__(self, config: Optional[DriftConfig] = None) -> None:
        """All detectors share one ``config`` (per-key tuning would make
        persisted state ambiguous)."""
        self.config = config if config is not None else DriftConfig()
        self._detectors: Dict[str, DriftDetector] = {}
        self._lock = threading.Lock()

    def observe(self, key: str, value: float) -> DriftSignal:
        """Feed one measurement for a workload class; get its signal."""
        with self._lock:
            detector = self._detectors.get(key)
            if detector is None:
                detector = DriftDetector(self.config)
                self._detectors[key] = detector
            return detector.observe(value)

    def detector(self, key: str) -> Optional[DriftDetector]:
        """The detector watching one class, or ``None`` if never fed.

        The returned detector is shared, not a copy — callers must not
        mutate it concurrently with :meth:`observe`; use it for
        read-only introspection (state, mean, score).
        """
        with self._lock:
            return self._detectors.get(key)

    def reset(self, key: str) -> bool:
        """Re-warm one class's detector (selection changed hands)."""
        with self._lock:
            detector = self._detectors.get(key)
            if detector is None:
                return False
            detector.reset()
            return True

    def drop(self, key: str) -> bool:
        """Forget one class entirely (entry evicted from the store)."""
        with self._lock:
            return self._detectors.pop(key, None) is not None

    def keys(self) -> Tuple[str, ...]:
        """Snapshot of the tracked class keys."""
        with self._lock:
            return tuple(self._detectors)

    def __len__(self) -> int:
        with self._lock:
            return len(self._detectors)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._detectors

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def to_payload(self) -> Dict[str, Dict[str, object]]:
        """JSON-safe snapshot: key → detector payload."""
        with self._lock:
            return {
                key: detector.to_payload()
                for key, detector in self._detectors.items()
            }

    def load_payload(
        self, payload: Mapping[str, Mapping[str, object]]
    ) -> None:
        """Restore detectors saved by :meth:`to_payload` (replaces state)."""
        detectors = {
            str(key): DriftDetector.from_payload(item, self.config)
            for key, item in payload.items()
        }
        with self._lock:
            self._detectors = detectors

    def __repr__(self) -> str:
        with self._lock:
            return f"DriftMonitor({len(self._detectors)} class(es) tracked)"
