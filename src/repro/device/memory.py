"""Cache hierarchy and access-pattern cost model.

This module supplies the *mechanistic* part of the simulator: the cost of a
memory access site is derived from its :class:`~repro.kernel.ir.AccessPattern`,
its useful byte volume, the buffer's placement and working-set size, and the
device's cache hierarchy — not from per-benchmark lookup tables.  Concrete
devices (:mod:`~repro.device.cpu`, :mod:`~repro.device.gpu`) subclass
:class:`MemoryModel` to encode their architecture's rules (SIMD
packing/masking on CPU, warp coalescing and texture paths on GPU).

All byte volumes and working sets are **per workload unit** and evaluated
as numpy arrays over units, so data-dependent workloads (spmv) are priced
vectorized and *locally*: a unit whose slice of the data fits in L1 is
cheap even if the whole buffer is DRAM-sized — the mechanism that makes
the diagonal-matrix experiments input-sensitive.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import DeviceError
from ..kernel.buffers import Buffer, MemorySpace
from ..kernel.ir import AccessPattern, KernelIR, MemoryAccess

#: Element size assumed for stride amplification.  All reproduction
#: workloads use float32 / int32 data.
ELEM_BYTES = 4.0

ArrayLike = Union[float, np.ndarray]


@dataclass(frozen=True)
class CacheLevel:
    """One level of the memory hierarchy.

    ``bytes_per_cycle`` is the streaming bandwidth a single compute unit
    sees when its working set resides at this level; ``latency_cycles`` is
    the unloaded access latency.
    """

    name: str
    size_bytes: float
    line_bytes: int
    latency_cycles: float
    bytes_per_cycle: float

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0:
            raise DeviceError(f"cache level {self.name!r} has non-positive size")
        if self.latency_cycles < 0 or self.bytes_per_cycle <= 0:
            raise DeviceError(f"cache level {self.name!r} has invalid timing")


@dataclass(frozen=True)
class AccessCost:
    """Cost of one access site, split into overlappable and exposed parts.

    ``bandwidth_cycles`` overlaps with compute (roofline); ``latency_cycles``
    is exposed serialization (pointer-chasing gathers, atomics).  Both are
    arrays over workload units.
    """

    bandwidth_cycles: np.ndarray
    latency_cycles: np.ndarray

    @classmethod
    def zero(cls, count: int) -> "AccessCost":
        """A zero cost over ``count`` units."""
        return cls(np.zeros(count), np.zeros(count))

    def __add__(self, other: "AccessCost") -> "AccessCost":
        return AccessCost(
            self.bandwidth_cycles + other.bandwidth_cycles,
            self.latency_cycles + other.latency_cycles,
        )


class MemoryModel:
    """Base memory model: a cache hierarchy terminated by DRAM.

    Subclasses implement :meth:`access_cost` with architecture-specific
    rules; this base provides the shared machinery — level selection by
    working set, stride amplification, and gather hit-rate estimation —
    all vectorized over per-unit working sets.
    """

    def __init__(self, levels: Sequence[CacheLevel], dram: CacheLevel) -> None:
        if not levels:
            raise DeviceError("memory model needs at least one cache level")
        sizes = [level.size_bytes for level in levels]
        if sizes != sorted(sizes):
            raise DeviceError(
                "cache levels must be ordered smallest (closest) first; got "
                f"sizes {sizes}"
            )
        self.levels: Tuple[CacheLevel, ...] = tuple(levels)
        self.dram = dram

    # ------------------------------------------------------------------
    # Shared machinery
    # ------------------------------------------------------------------

    @property
    def line_bytes(self) -> int:
        """Cache line size (taken from the innermost level)."""
        return self.levels[0].line_bytes

    def stream_bandwidth(self, working_set_bytes: ArrayLike) -> np.ndarray:
        """Streaming bandwidth (bytes/cycle) for per-unit working sets.

        A stream is served by the closest level that holds its working
        set; larger sets fall through to DRAM.
        """
        ws = np.asarray(working_set_bytes, dtype=float)
        bandwidth = np.full(ws.shape, self.dram.bytes_per_cycle)
        for level in reversed(self.levels):
            bandwidth = np.where(
                ws <= level.size_bytes, level.bytes_per_cycle, bandwidth
            )
        return bandwidth

    def stride_amplification(self, stride_bytes: int) -> float:
        """Traffic amplification of a constant-stride walk.

        Each useful element drags ``min(stride, line)`` bytes through the
        hierarchy; unit stride has amplification 1.
        """
        if stride_bytes <= 0:
            raise DeviceError(f"stride must be positive, got {stride_bytes}")
        return max(
            1.0, min(float(stride_bytes), float(self.line_bytes)) / ELEM_BYTES
        )

    def gather_latency(self, working_set_bytes: ArrayLike) -> np.ndarray:
        """Average per-element latency of data-dependent gathers.

        Estimated by the hit pyramid: a random access within the working
        set hits each level with probability ``level_size / working_set``
        (clamped); the residual miss fraction pays DRAM latency.
        """
        ws = np.maximum(np.asarray(working_set_bytes, dtype=float), 1.0)
        latency = np.zeros(ws.shape)
        covered = np.zeros(ws.shape)
        for level in self.levels:
            hit = np.minimum(1.0, level.size_bytes / ws)
            fresh = np.maximum(0.0, hit - covered)
            latency = latency + fresh * level.latency_cycles
            covered = np.maximum(covered, hit)
        latency = latency + (1.0 - covered) * self.dram.latency_cycles
        return latency

    def working_set(
        self,
        access: MemoryAccess,
        args,
        unit_ids: np.ndarray,
        buffer: Optional[Buffer],
        hint_buffer: Optional[Buffer],
    ) -> np.ndarray:
        """Per-unit working set relevant to an access's locality.

        Precedence: the access's ``footprint_hint`` evaluator (true
        per-unit locality from the data), then the resolved
        ``working_set_hint`` buffer's size, then the accessed buffer's own
        footprint, then "DRAM-sized".
        """
        if access.footprint_hint is not None:
            ws = np.asarray(
                access.footprint_hint(args, unit_ids), dtype=float
            )
            if ws.shape != unit_ids.shape:
                raise DeviceError(
                    f"footprint_hint for {access.buffer!r} returned shape "
                    f"{ws.shape}, expected {unit_ids.shape}"
                )
            return ws
        target = hint_buffer if hint_buffer is not None else buffer
        if target is not None:
            return np.full(unit_ids.shape, float(target.nbytes))
        return np.full(unit_ids.shape, math.inf)

    def gather_latency_mixed(
        self,
        useful_bytes: np.ndarray,
        working_set: np.ndarray,
        buffer_bytes: float,
        fresh_discount: float = 0.5,
    ) -> np.ndarray:
        """Per-element gather latency, distinguishing fresh from resident.

        Gathered bytes are *fresh* (first touch, missing all the way to
        wherever the buffer lives) only when the unit's traffic matches
        its footprint.  Both a footprint much larger than the traffic (a
        shared resident structure, e.g. spmv's dense vector) and traffic
        much larger than the footprint (intra-unit re-touches, e.g.
        cutcp's bins) are served at the footprint's cache level.  Fresh
        misses get a discount for the partial prefetchability of
        jagged-but-forward traversals.
        """
        ws = np.maximum(np.asarray(working_set, dtype=float), 1.0)
        useful = np.maximum(np.asarray(useful_bytes, dtype=float), 1.0)
        resident = self.gather_latency(ws)
        source = self.gather_latency(min(buffer_bytes, 1e18))
        fresh_frac = np.minimum(useful, ws) / np.maximum(useful, ws)
        fresh = np.maximum(source * fresh_discount, resident)
        return fresh_frac * fresh + (1.0 - fresh_frac) * resident

    def stream_cycles(
        self,
        useful_bytes: np.ndarray,
        working_set: np.ndarray,
        buffer_bytes: float,
        amplification: float = 1.0,
    ) -> np.ndarray:
        """Bandwidth cycles of a streaming access, reuse-aware.

        A unit's *fresh* bytes (up to its working-set footprint) stream
        from wherever the whole buffer resides — typically DRAM for large
        inputs; bytes beyond the footprint are re-touches served at the
        footprint's cache level.  This distinction is what makes a small
        per-unit footprint mean "cheap" only when the unit actually
        *reuses* it (sgemm tiles) and not when data is streamed once
        (spmv's val/col arrays).
        """
        useful = np.asarray(useful_bytes, dtype=float) * amplification
        footprint = (
            np.asarray(working_set, dtype=float) * amplification
        )
        fresh = np.minimum(useful, footprint)
        reused = useful - fresh
        source_bw = self.stream_bandwidth(
            min(buffer_bytes * amplification, 1e18)
        )
        cache_bw = self.stream_bandwidth(footprint)
        return fresh / source_bw + reused / cache_bw

    # ------------------------------------------------------------------
    # Architecture-specific entry point
    # ------------------------------------------------------------------

    def access_cost(
        self,
        access: MemoryAccess,
        useful_bytes: np.ndarray,
        working_set: np.ndarray,
        buffer_bytes: float,
        ir: KernelIR,
        space: MemorySpace,
        dynamic_stride=None,
    ) -> AccessCost:
        """Cost of one access site over an array of workload units.

        Parameters
        ----------
        access:
            The IR access descriptor.
        useful_bytes:
            Useful bytes moved per unit (volume × trip counts).
        working_set:
            Per-unit working set in bytes (see :meth:`working_set`).
        buffer_bytes:
            Total size of the accessed buffer (source level for fresh
            streams); ``inf`` when unknown.
        ir:
            The enclosing variant IR (for vector width / divergence /
            prefetch rules).
        space:
            Memory space serving the access (after placement).
        dynamic_stride:
            Per-unit element stride in bytes when the access declares a
            ``stride_evaluator`` (data-dependent coalescing quality).
        """
        raise NotImplementedError
