"""Cycle clocks and the measurement-noise model.

The paper's GPU runtime reads the per-SM ``%clock`` register inside the
kernel (Fig 7) because driver events and wall clocks are too coarse for
micro-profiling (§3.3); even so, §5.2 reports 95% selection accuracy on CPU
spmv-csr because tiny measurements drown in system noise.

We model both effects:

* *execution jitter* — each work-group's true duration is perturbed by a
  multiplicative lognormal factor (OS noise, frequency scaling).  This
  perturbs the actual schedule, not just the reading.
* *timer quantization* — measured intervals are rounded to the timer's
  quantum, so short intervals lose relative precision exactly like a coarse
  clock source.

Both are seeded from :class:`~repro.config.ReproConfig`, so runs are
reproducible; the oracle harness disables them via
:meth:`~repro.config.ReproConfig.without_noise`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from ..config import ReproConfig


@dataclass(frozen=True)
class MeasuredInterval:
    """A timed interval as DySel's selection logic observes it.

    ``true_cycles`` is the simulator's ground truth (used only by tests and
    the oracle); ``measured_cycles`` is what the runtime reads and bases
    selection on.
    """

    true_cycles: float
    measured_cycles: float


class NoisyClock:
    """Deterministic noise source for one device.

    A clock owns an RNG stream derived from the configuration seed and the
    device name, so two devices in one experiment see independent noise and
    the whole experiment replays identically for a fixed seed.
    """

    def __init__(self, config: ReproConfig, device_name: str) -> None:
        self._config = config
        self._rng = config.rng("clock", device_name)
        self._jitter = config.noise.execution_jitter
        self._quantum = config.noise.timer_quantum

    @property
    def quantum(self) -> float:
        """Timer resolution in cycles."""
        return self._quantum

    def jitter_durations(self, true_cycles: np.ndarray) -> np.ndarray:
        """Apply execution jitter to an array of work-group durations.

        Lognormal with unit median: ``exp(N(0, sigma))``.  With jitter 0 the
        input is returned unchanged (oracle runs).
        """
        true_cycles = np.asarray(true_cycles, dtype=float)
        if self._jitter <= 0 or true_cycles.size == 0:
            return true_cycles
        factors = np.exp(
            self._rng.normal(0.0, self._jitter, size=true_cycles.shape)
        )
        return true_cycles * factors

    def read_interval(self, true_cycles: float) -> MeasuredInterval:
        """Measure an elapsed interval through the quantized timer.

        Models reading a start and an end timestamp, each aligned to the
        timer quantum at an unknown phase: the error of a duration
        measurement is up to one quantum, uniformly distributed.
        """
        if true_cycles < 0:
            raise ValueError(f"interval cannot be negative: {true_cycles}")
        quantum = self._quantum
        if true_cycles > quantum * 2**40:
            # Quantum far below the interval's float resolution: the
            # timer is effectively exact (and tick arithmetic would lose
            # precision at this magnitude).
            return MeasuredInterval(
                true_cycles=true_cycles, measured_cycles=true_cycles
            )
        phase = self._rng.uniform(0.0, quantum)
        start_tick = math.floor(phase / quantum)
        end_tick = math.floor((phase + true_cycles) / quantum)
        measured = (end_tick - start_tick) * quantum
        return MeasuredInterval(true_cycles=true_cycles, measured_cycles=measured)

    def read_intervals(self, true_cycles) -> List[MeasuredInterval]:
        """Measure several intervals through the quantized timer at once.

        Bit-identical to calling :meth:`read_interval` once per entry in
        order — including RNG consumption: entries on the exact branch
        (interval far above the quantum) draw nothing, the rest draw one
        phase each, and a numpy ``Generator`` produces the same stream
        whether the uniforms are drawn one at a time or as a batch.  The
        engine's vectorized drain uses this so measurement noise cannot
        tell the paths apart.
        """
        values = np.asarray(true_cycles, dtype=float)
        if values.size == 0:
            return []
        if np.any(values < 0):
            bad = float(values[values < 0][0])
            raise ValueError(f"interval cannot be negative: {bad}")
        quantum = self._quantum
        exact = values > quantum * 2**40
        n_draws = int(np.count_nonzero(~exact))
        phases = (
            self._rng.uniform(0.0, quantum, size=n_draws)
            if n_draws
            else np.zeros(0)
        )
        out: List[MeasuredInterval] = []
        draw = 0
        for index, value in enumerate(values):
            value = float(value)
            if exact[index]:
                out.append(
                    MeasuredInterval(true_cycles=value, measured_cycles=value)
                )
                continue
            phase = float(phases[draw])
            draw += 1
            start_tick = math.floor(phase / quantum)
            end_tick = math.floor((phase + value) / quantum)
            out.append(
                MeasuredInterval(
                    true_cycles=value,
                    measured_cycles=(end_tick - start_tick) * quantum,
                )
            )
        return out
