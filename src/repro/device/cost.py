"""Mechanistic cost model: per-unit pricing, per-work-group aggregation.

:class:`CostModel` interprets a variant's IR against a device.  All IR
quantities (trip counts, byte volumes, flops) are defined **per workload
unit** — the finest decomposition of the launch.  A variant packs
``wa_factor`` units into each work-group, so the model:

1. evaluates per-unit compute, bandwidth and latency cycles (vectorized,
   honoring data-dependent loop bounds for exactly the units covered);
2. sums each component over every work-group's units;
3. combines with a roofline — bandwidth traffic overlaps compute; exposed
   latency (gathers, atomics), loop bookkeeping, scratchpad staging and
   the per-work-group dispatch overhead add on top.

Because per-unit quantities are evaluated for the *specific* units a
work-group covers, profiling a slice reflects that slice's data — the
property DySel's productive profiling relies on (paper §2.1), and the
reason profiling can be misled only by genuine workload irregularity, not
by model artifacts.

The DySel runtime never calls this module; it only observes measured
execution times from the engine — the same information asymmetry the real
system has.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from ..kernel.buffers import Buffer, MemorySpace
from ..kernel.ir import AtomicKind, KernelIR
from ..kernel.kernel import KernelVariant, WorkRange
from .base import Device
from .memory import ELEM_BYTES, AccessCost


@lru_cache(maxsize=4096)
def ir_hash(ir: KernelIR) -> str:
    """Stable structural hash of an IR.

    Callables (data-dependent evaluators) are replaced by a fixed marker:
    static analyses never look through them, so two IRs differing only in
    evaluator bodies hash identically — which is exactly why the cost-kernel
    memo below refuses to cache IRs that carry any evaluator at all
    (:func:`statically_priced`).
    """
    parts = []
    for loop in ir.loops:
        bound = (
            f"static:{loop.bound.static_trips}"
            if loop.bound.static_trips is not None
            else "dynamic"
        )
        parts.append(
            f"loop:{loop.name}:{bound}:{loop.is_work_item_loop}:{loop.has_early_exit}"
        )
    for access in ir.accesses:
        parts.append(
            "access:" + ":".join(
                str(x)
                for x in (
                    access.buffer,
                    access.is_write,
                    access.pattern.value,
                    access.bytes_per_trip,
                    access.loop,
                    access.scope,
                    access.stride_bytes,
                    access.atomic.value,
                    access.working_set_hint,
                    access.stride_evaluator is not None,
                    access.footprint_hint is not None,
                    access.strides_by_loop,
                )
            )
        )
    parts.append(
        "scalars:" + ":".join(
            str(x)
            for x in (
                ir.flops_per_trip,
                ir.flops_fixed,
                ir.vector_width,
                ir.divergence,
                ir.scratchpad_bytes,
                ir.uses_barrier,
                ir.unroll_factor,
                ir.prefetch,
                ir.placements,
                ir.work_group_threads,
            )
        )
    )
    digest = hashlib.blake2b("\n".join(parts).encode(), digest_size=16)
    return digest.hexdigest()


@lru_cache(maxsize=4096)
def statically_priced(ir: KernelIR) -> bool:
    """True when an IR's pricing cannot depend on runtime data.

    An IR is statically priced when no loop bound, stride, or footprint is
    evaluator-driven: every per-unit cost term is then a function of IR
    constants and buffer shapes only, identical across units — the
    precondition for the cost-kernel memo (and the reason ``ir_hash``'s
    evaluator-blindness is safe there).
    """
    if any(loop.bound.evaluator is not None for loop in ir.loops):
        return False
    return all(
        access.stride_evaluator is None and access.footprint_hint is None
        for access in ir.accesses
    )


# ----------------------------------------------------------------------
# Cost-kernel memo
# ----------------------------------------------------------------------
#
# For a statically priced IR, ``workgroup_cycles`` depends only on the IR
# structure, the device, the variant's packing factor, the *length* of the
# unit range (starts are wa-aligned, so group partitioning is position
# independent) and the shapes/placements of the buffers bound to each
# access.  One entry therefore serves every launch of the same workload
# class — repeated serving launches, profiling slices of equal length,
# eager chunks — and the cached array is returned as-is (read-only), so a
# warm launch derives nothing.

_MEMO_LOCK = threading.Lock()
_COST_MEMO: Dict[Tuple, np.ndarray] = {}
_MEMO_HITS = 0
_MEMO_MISSES = 0
#: Invalidation generation: a computation begun under an older generation
#: must not repopulate the memo after an invalidation raced past it.
_MEMO_GEN = 0


def cost_memo_stats() -> Dict[str, int]:
    """Current memo size and hit/miss counters (monotonic until cleared)."""
    with _MEMO_LOCK:
        return {
            "entries": len(_COST_MEMO),
            "hits": _MEMO_HITS,
            "misses": _MEMO_MISSES,
        }


def clear_cost_memo() -> None:
    """Drop every memo entry and reset the hit/miss counters."""
    global _MEMO_HITS, _MEMO_MISSES, _MEMO_GEN
    with _MEMO_LOCK:
        _COST_MEMO.clear()
        _MEMO_HITS = 0
        _MEMO_MISSES = 0
        _MEMO_GEN += 1


def invalidate_cost_memo(ir_hashes: Optional[Iterable[str]] = None) -> int:
    """Drop memo entries for the given IR hashes (all entries when None).

    Returns the number of entries dropped.  Runs under the memo lock and
    bumps the generation counter, so a cost evaluation already in flight
    on another thread cannot re-insert a doomed entry after this returns
    (the pool re-registration race).
    """
    global _MEMO_GEN
    with _MEMO_LOCK:
        _MEMO_GEN += 1
        if ir_hashes is None:
            dropped = len(_COST_MEMO)
            _COST_MEMO.clear()
            return dropped
        doomed_hashes = set(ir_hashes)
        doomed = [key for key in _COST_MEMO if key[0] in doomed_hashes]
        for key in doomed:
            del _COST_MEMO[key]
        return len(doomed)


@dataclass(frozen=True)
class UnitCostBreakdown:
    """Per-unit cost components (arrays over units)."""

    compute_cycles: np.ndarray
    bandwidth_cycles: np.ndarray
    exposed_cycles: np.ndarray  # latency + atomics + loop overhead


class CostModel:
    """Prices work-groups of a variant on one device."""

    def __init__(self, device: Device) -> None:
        self.device = device
        #: Memo key component identifying the pricing-relevant device
        #: state.  Specs, cache levels and DRAM rows are frozen
        #: dataclasses, so equal devices (fleet replicas) share entries.
        self._device_key = (
            type(device).__qualname__,
            device.spec,
            device.memory.levels,
            device.memory.dram,
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def workgroup_cycles(
        self,
        variant: KernelVariant,
        args: Mapping[str, object],
        units: WorkRange,
    ) -> np.ndarray:
        """True (noise-free) cycles for each work-group covering ``units``.

        ``units`` must be aligned to the variant's ``wa_factor`` (safe
        point analysis guarantees this for profiling slices; whole-launch
        ranges start at zero and are trivially aligned).

        Statically priced IRs (:func:`statically_priced`) are memoized per
        (IR hash, device, packing factor, range length, buffer shapes):
        repeated launches of the same workload class return the cached
        (read-only) array without re-deriving anything.  The memo is a
        pure cache — hits are bit-identical to the computation they skip.
        """
        global _MEMO_HITS, _MEMO_MISSES
        if units.empty:
            return np.zeros(0)
        key = self._memo_key(variant, args, units)
        if key is not None:
            with _MEMO_LOCK:
                cached = _COST_MEMO.get(key)
                if cached is not None:
                    _MEMO_HITS += 1
                    return cached
                generation = _MEMO_GEN
        result = self._workgroup_cycles_uncached(variant, args, units)
        if key is not None:
            result.setflags(write=False)
            with _MEMO_LOCK:
                _MEMO_MISSES += 1
                if _MEMO_GEN == generation:
                    _COST_MEMO.setdefault(key, result)
        return result

    def _memo_key(
        self,
        variant: KernelVariant,
        args: Mapping[str, object],
        units: WorkRange,
    ) -> Optional[Tuple]:
        """Memo key for a launch, or None when it must not be cached.

        Only wa-aligned ranges qualify: alignment makes the group
        partition (and therefore the cost array) a function of the range
        *length* alone, so profiling slices at different offsets share
        one entry.  A misaligned range falls through to the uncached path
        (which rejects it the same way it always has).
        """
        ir = variant.ir
        if not statically_priced(ir):
            return None
        if units.start % variant.wa_factor != 0:
            return None
        placements = dict(ir.placements)
        fingerprint = []
        for access in ir.accesses:
            buffer = self._buffer_arg(args, access.buffer)
            space = placements.get(
                access.buffer,
                buffer.space.value if buffer is not None else "global",
            )
            hint = (
                self._buffer_arg(args, access.working_set_hint)
                if access.working_set_hint
                else None
            )
            fingerprint.append(
                (
                    float(buffer.nbytes) if buffer is not None else None,
                    space,
                    float(hint.nbytes) if hint is not None else None,
                )
            )
        return (
            ir_hash(ir),
            self._device_key,
            variant.wa_factor,
            len(units),
            tuple(fingerprint),
        )

    def _workgroup_cycles_uncached(
        self,
        variant: KernelVariant,
        args: Mapping[str, object],
        units: WorkRange,
    ) -> np.ndarray:
        """Full cost derivation (the memo's fill path)."""
        unit_ids = np.arange(units.start, units.end, dtype=np.int64)
        breakdown = self.unit_costs(variant.ir, args, unit_ids)

        group_start, group_end = variant.groups_for_units(units)
        factor = variant.wa_factor
        offsets = (
            np.arange(group_start, group_end, dtype=np.int64) * factor
            - units.start
        )
        compute = np.add.reduceat(breakdown.compute_cycles, offsets)
        bandwidth = np.add.reduceat(breakdown.bandwidth_cycles, offsets)
        exposed = np.add.reduceat(breakdown.exposed_cycles, offsets)

        per_group_fixed = (
            self.device.scratchpad_cycles_per_group(variant.ir)
            + self.device.spec.workgroup_dispatch_overhead
        )
        return np.maximum(compute, bandwidth) + exposed + per_group_fixed

    def unit_costs(
        self,
        ir: KernelIR,
        args: Mapping[str, object],
        unit_ids: np.ndarray,
    ) -> UnitCostBreakdown:
        """Evaluate per-unit cost components for the given unit ids."""
        ids = np.asarray(unit_ids, dtype=np.int64)
        flops = ir.total_flops(args, ids)
        compute = self.device.compute_cycles(ir, flops, self._wg_size(ir))

        cost = AccessCost.zero(ids.size)
        atomic_cycles = np.zeros(ids.size)
        placements = dict(ir.placements)
        memory = self.device.memory
        for access in ir.accesses:
            trips = ir.access_trips(access, args, ids)
            useful_bytes = access.bytes_per_trip * trips
            buffer = self._buffer_arg(args, access.buffer)
            space = MemorySpace(
                placements.get(
                    access.buffer,
                    buffer.space.value if buffer is not None else "global",
                )
            )
            hint = (
                self._buffer_arg(args, access.working_set_hint)
                if access.working_set_hint
                else None
            )
            working_set = memory.working_set(access, args, ids, buffer, hint)
            buffer_bytes = (
                float(buffer.nbytes) if buffer is not None else float("inf")
            )
            dynamic_stride = (
                np.asarray(access.stride_evaluator(args, ids), dtype=float)
                if access.stride_evaluator is not None
                else None
            )
            cost = cost + memory.access_cost(
                access,
                useful_bytes,
                working_set,
                buffer_bytes,
                ir,
                space,
                dynamic_stride=dynamic_stride,
            )
            if access.atomic is AtomicKind.GLOBAL:
                ops = useful_bytes / ELEM_BYTES
                atomic_cycles += ops * self.device.atomic_cycles_per_op()

        bookkeeping = self._loop_bookkeeping(ir, args, ids)
        exposed = cost.latency_cycles + atomic_cycles + bookkeeping
        return UnitCostBreakdown(
            compute_cycles=compute,
            bandwidth_cycles=cost.bandwidth_cycles,
            exposed_cycles=exposed,
        )

    def _loop_bookkeeping(
        self,
        ir: KernelIR,
        args: Mapping[str, object],
        ids: np.ndarray,
    ) -> np.ndarray:
        """Per-unit loop setup and trip bookkeeping cycles.

        Every loop charges a setup cost per *instance* (once per iteration
        of its enclosing loops) and a per-trip branch cost; only the
        innermost loop's trips are amortized by unrolling.  Short
        data-dependent inner loops are therefore setup-dominated, which is
        what makes loop order matter for irregular inputs (paper §4.4's
        DFO/BFO crossover).
        """
        spec = self.device.spec
        bookkeeping = np.zeros(ids.size)
        instances = np.ones(ids.size)
        for index, loop in enumerate(ir.loops):
            trips = loop.bound.trips(args, ids)
            iterations = instances * trips
            per_trip = spec.loop_overhead_cycles
            if index == len(ir.loops) - 1:
                # The innermost loop's bookkeeping amortizes over both
                # unrolling and SIMD lanes (a vectorized loop takes 1/w
                # as many trips).
                per_trip /= ir.unroll_factor * max(1, ir.vector_width)
                if ir.prefetch:
                    # Prefetch instructions occupy an issue slot per trip.
                    per_trip += 0.6
            bookkeeping += instances * spec.loop_setup_cycles
            bookkeeping += iterations * per_trip
            instances = iterations
        return bookkeeping

    def launch_cycles(
        self,
        variant: KernelVariant,
        args: Mapping[str, object],
        units: WorkRange,
    ) -> float:
        """Total serialized cycles if the work-groups ran on one unit.

        Convenience for tests and analytical baselines; the engine computes
        actual makespans with concurrency.
        """
        return float(np.sum(self.workgroup_cycles(variant, args, units)))

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _wg_size(ir: KernelIR) -> int:
        """Work-group thread count hint used by compute-efficiency rules."""
        return ir.work_group_threads

    @staticmethod
    def _buffer_arg(
        args: Mapping[str, object], name: Optional[str]
    ) -> Optional[Buffer]:
        """Resolve an argument to a Buffer, or None for scalars/missing."""
        if name is None:
            return None
        value = args.get(name)
        return value if isinstance(value, Buffer) else None
