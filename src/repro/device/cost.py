"""Mechanistic cost model: per-unit pricing, per-work-group aggregation.

:class:`CostModel` interprets a variant's IR against a device.  All IR
quantities (trip counts, byte volumes, flops) are defined **per workload
unit** — the finest decomposition of the launch.  A variant packs
``wa_factor`` units into each work-group, so the model:

1. evaluates per-unit compute, bandwidth and latency cycles (vectorized,
   honoring data-dependent loop bounds for exactly the units covered);
2. sums each component over every work-group's units;
3. combines with a roofline — bandwidth traffic overlaps compute; exposed
   latency (gathers, atomics), loop bookkeeping, scratchpad staging and
   the per-work-group dispatch overhead add on top.

Because per-unit quantities are evaluated for the *specific* units a
work-group covers, profiling a slice reflects that slice's data — the
property DySel's productive profiling relies on (paper §2.1), and the
reason profiling can be misled only by genuine workload irregularity, not
by model artifacts.

The DySel runtime never calls this module; it only observes measured
execution times from the engine — the same information asymmetry the real
system has.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from ..kernel.buffers import Buffer, MemorySpace
from ..kernel.ir import AtomicKind, KernelIR
from ..kernel.kernel import KernelVariant, WorkRange
from .base import Device
from .memory import ELEM_BYTES, AccessCost


@dataclass(frozen=True)
class UnitCostBreakdown:
    """Per-unit cost components (arrays over units)."""

    compute_cycles: np.ndarray
    bandwidth_cycles: np.ndarray
    exposed_cycles: np.ndarray  # latency + atomics + loop overhead


class CostModel:
    """Prices work-groups of a variant on one device."""

    def __init__(self, device: Device) -> None:
        self.device = device

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def workgroup_cycles(
        self,
        variant: KernelVariant,
        args: Mapping[str, object],
        units: WorkRange,
    ) -> np.ndarray:
        """True (noise-free) cycles for each work-group covering ``units``.

        ``units`` must be aligned to the variant's ``wa_factor`` (safe
        point analysis guarantees this for profiling slices; whole-launch
        ranges start at zero and are trivially aligned).
        """
        if units.empty:
            return np.zeros(0)
        unit_ids = np.arange(units.start, units.end, dtype=np.int64)
        breakdown = self.unit_costs(variant.ir, args, unit_ids)

        group_start, group_end = variant.groups_for_units(units)
        factor = variant.wa_factor
        offsets = (
            np.arange(group_start, group_end, dtype=np.int64) * factor
            - units.start
        )
        compute = np.add.reduceat(breakdown.compute_cycles, offsets)
        bandwidth = np.add.reduceat(breakdown.bandwidth_cycles, offsets)
        exposed = np.add.reduceat(breakdown.exposed_cycles, offsets)

        per_group_fixed = (
            self.device.scratchpad_cycles_per_group(variant.ir)
            + self.device.spec.workgroup_dispatch_overhead
        )
        return np.maximum(compute, bandwidth) + exposed + per_group_fixed

    def unit_costs(
        self,
        ir: KernelIR,
        args: Mapping[str, object],
        unit_ids: np.ndarray,
    ) -> UnitCostBreakdown:
        """Evaluate per-unit cost components for the given unit ids."""
        ids = np.asarray(unit_ids, dtype=np.int64)
        flops = ir.total_flops(args, ids)
        compute = self.device.compute_cycles(ir, flops, self._wg_size(ir))

        cost = AccessCost.zero(ids.size)
        atomic_cycles = np.zeros(ids.size)
        placements = dict(ir.placements)
        memory = self.device.memory
        for access in ir.accesses:
            trips = ir.access_trips(access, args, ids)
            useful_bytes = access.bytes_per_trip * trips
            buffer = self._buffer_arg(args, access.buffer)
            space = MemorySpace(
                placements.get(
                    access.buffer,
                    buffer.space.value if buffer is not None else "global",
                )
            )
            hint = (
                self._buffer_arg(args, access.working_set_hint)
                if access.working_set_hint
                else None
            )
            working_set = memory.working_set(access, args, ids, buffer, hint)
            buffer_bytes = (
                float(buffer.nbytes) if buffer is not None else float("inf")
            )
            dynamic_stride = (
                np.asarray(access.stride_evaluator(args, ids), dtype=float)
                if access.stride_evaluator is not None
                else None
            )
            cost = cost + memory.access_cost(
                access,
                useful_bytes,
                working_set,
                buffer_bytes,
                ir,
                space,
                dynamic_stride=dynamic_stride,
            )
            if access.atomic is AtomicKind.GLOBAL:
                ops = useful_bytes / ELEM_BYTES
                atomic_cycles += ops * self.device.atomic_cycles_per_op()

        bookkeeping = self._loop_bookkeeping(ir, args, ids)
        exposed = cost.latency_cycles + atomic_cycles + bookkeeping
        return UnitCostBreakdown(
            compute_cycles=compute,
            bandwidth_cycles=cost.bandwidth_cycles,
            exposed_cycles=exposed,
        )

    def _loop_bookkeeping(
        self,
        ir: KernelIR,
        args: Mapping[str, object],
        ids: np.ndarray,
    ) -> np.ndarray:
        """Per-unit loop setup and trip bookkeeping cycles.

        Every loop charges a setup cost per *instance* (once per iteration
        of its enclosing loops) and a per-trip branch cost; only the
        innermost loop's trips are amortized by unrolling.  Short
        data-dependent inner loops are therefore setup-dominated, which is
        what makes loop order matter for irregular inputs (paper §4.4's
        DFO/BFO crossover).
        """
        spec = self.device.spec
        bookkeeping = np.zeros(ids.size)
        instances = np.ones(ids.size)
        for index, loop in enumerate(ir.loops):
            trips = loop.bound.trips(args, ids)
            iterations = instances * trips
            per_trip = spec.loop_overhead_cycles
            if index == len(ir.loops) - 1:
                # The innermost loop's bookkeeping amortizes over both
                # unrolling and SIMD lanes (a vectorized loop takes 1/w
                # as many trips).
                per_trip /= ir.unroll_factor * max(1, ir.vector_width)
                if ir.prefetch:
                    # Prefetch instructions occupy an issue slot per trip.
                    per_trip += 0.6
            bookkeeping += instances * spec.loop_setup_cycles
            bookkeeping += iterations * per_trip
            instances = iterations
        return bookkeeping

    def launch_cycles(
        self,
        variant: KernelVariant,
        args: Mapping[str, object],
        units: WorkRange,
    ) -> float:
        """Total serialized cycles if the work-groups ran on one unit.

        Convenience for tests and analytical baselines; the engine computes
        actual makespans with concurrency.
        """
        return float(np.sum(self.workgroup_cycles(variant, args, units)))

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _wg_size(ir: KernelIR) -> int:
        """Work-group thread count hint used by compute-efficiency rules."""
        return ir.work_group_threads

    @staticmethod
    def _buffer_arg(
        args: Mapping[str, object], name: Optional[str]
    ) -> Optional[Buffer]:
        """Resolve an argument to a Buffer, or None for scalars/missing."""
        if name is None:
            return None
        value = args.get(name)
        return value if isinstance(value, Buffer) else None
