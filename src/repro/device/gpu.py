"""Simulated GPU (modeled after the paper's NVIDIA K20c, Kepler).

Architecture rules encoded here, with their paper correlates:

* **Warp coalescing** — a warp touching adjacent elements issues one
  transaction; per-thread-sequential or strided patterns amplify traffic
  (Fig 11b: scalar spmv-csr is 4.73× slower on the random matrix because
  adjacent threads walk different rows).
* **Lane utilization** — work assigned per warp that is narrower than the
  warp wastes lanes (Fig 11b: vector spmv-csr is 22.73× slower on the
  diagonal matrix, one useful lane out of 32).
* **Texture / constant paths** — read-only placements change the served
  cache path, the axis PORPLE and Jang et al. optimize (Fig 9).
* **Scratchpad** — real on-chip storage: staging costs little and the
  tiling transform's reduced global traffic is visible in the IR.
* **Launch and query overheads** — kernel launches cost microseconds and
  host stream queries are slower than micro-profiling itself, which is why
  async DySel degenerates to sync on GPUs (§5.1) and why tiny iterative
  spmv launches expose profiling overhead (§5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from ..config import DEFAULT_CONFIG, ReproConfig
from ..kernel.buffers import MemorySpace
from ..kernel.ir import AccessPattern, KernelIR, MemoryAccess
from .base import Device, DeviceSpec
from .memory import ELEM_BYTES, AccessCost, CacheLevel, MemoryModel


@dataclass(frozen=True)
class GpuSpec(DeviceSpec):
    """GPU-specific tuning knobs on top of the common spec.

    ``warp_size`` is the SIMT width; ``uncoalesced_amplification`` is the
    traffic blow-up of per-thread-sequential walks; ``latency_hiding``
    is the effective number of in-flight warps hiding gather latency;
    ``texture_latency_hiding`` the (better) figure on the texture path.
    """

    warp_size: int = 32
    uncoalesced_amplification: float = 24.0
    latency_hiding: float = 20.0
    texture_latency_hiding: float = 48.0
    #: Streaming bandwidth of the texture path relative to the global path
    #: (< 1: texture is a latency cache, not a streaming pipe).
    texture_stream_scale: float = 0.7


class GpuMemoryModel(MemoryModel):
    """Warp-level memory cost rules for the GPU."""

    def __init__(self, spec: GpuSpec, levels, dram) -> None:
        super().__init__(levels, dram)
        self._spec = spec

    def _stream_cycles_gpu(
        self,
        useful_bytes,
        working_set,
        buffer_bytes: float,
        space: MemorySpace,
        amplification: float = 1.0,
    ):
        """Reuse-aware streaming with Kepler's L1 policy.

        Global loads bypass the L1 on Kepler — re-touches of a cached
        working set are served from L2 at best.  Texture-path streams do
        enjoy the read-only L1 cache.  (This asymmetry is why scratchpad
        tiling pays off on the GPU: explicit staging recovers the on-chip
        reuse the L1 will not provide.)
        """
        if space is MemorySpace.TEXTURE:
            return self.stream_cycles(
                useful_bytes, working_set, buffer_bytes, amplification
            )
        useful = np.asarray(useful_bytes, dtype=float) * amplification
        footprint = np.asarray(working_set, dtype=float) * amplification
        fresh = np.minimum(useful, footprint)
        reused = useful - fresh
        source_bw = self.stream_bandwidth(min(buffer_bytes * amplification, 1e18))
        l2 = self.levels[-1]
        cache_bw = np.where(
            footprint <= l2.size_bytes,
            l2.bytes_per_cycle,
            self.dram.bytes_per_cycle,
        )
        return fresh / source_bw + reused / cache_bw

    def access_cost(
        self,
        access: MemoryAccess,
        useful_bytes: np.ndarray,
        working_set: np.ndarray,
        buffer_bytes: float,
        ir: KernelIR,
        space: MemorySpace,
        dynamic_stride=None,
    ) -> AccessCost:
        """Cycles one variant's access stream costs on this memory system."""
        useful_bytes = np.asarray(useful_bytes, dtype=float)
        count = useful_bytes.size
        pattern = access.pattern

        # Streaming through the texture path trades bandwidth for the
        # read-only cache; through constant memory, divergent addresses
        # serialize on the broadcast bank (a classic placement pitfall).
        if space is MemorySpace.TEXTURE:
            stream_scale = 1.0 / self._spec.texture_stream_scale
        elif space is MemorySpace.CONSTANT:
            stream_scale = 8.0
        else:
            stream_scale = 1.0

        if pattern is AccessPattern.COALESCED:
            cycles = self._stream_cycles_gpu(
                useful_bytes, working_set, buffer_bytes, space
            )
            return AccessCost(cycles * stream_scale, np.zeros(count))

        if pattern is AccessPattern.UNIT_STRIDE:
            # Per-thread-sequential: each lane walks its own region, so a
            # warp touches up to warp_size distinct lines per trip.  When
            # the per-lane regions are short (dynamic stride near one
            # element), adjacent lanes touch adjacent lines and the walk
            # coalesces after all.
            max_amp = self._spec.uncoalesced_amplification
            if dynamic_stride is not None:
                amp = np.clip(
                    np.asarray(dynamic_stride, dtype=float) / ELEM_BYTES,
                    1.0,
                    max_amp,
                )
                fresh = self._stream_cycles_gpu(
                    useful_bytes, working_set, buffer_bytes, space
                )
                return AccessCost(fresh * amp * stream_scale, np.zeros(count))
            cycles = self._stream_cycles_gpu(
                useful_bytes,
                working_set,
                buffer_bytes,
                space,
                amplification=max_amp,
            )
            return AccessCost(cycles * stream_scale, np.zeros(count))

        if pattern is AccessPattern.STRIDED:
            amp = min(
                self.stride_amplification(access.stride_bytes),
                self._spec.uncoalesced_amplification,
            )
            cycles = self._stream_cycles_gpu(
                useful_bytes, working_set, buffer_bytes, space, amplification=amp
            )
            return AccessCost(cycles * stream_scale, np.zeros(count))

        if pattern is AccessPattern.GATHER:
            elems = useful_bytes / ELEM_BYTES
            if space is MemorySpace.TEXTURE:
                # Read-only path: dedicated cache, deeper latency hiding.
                hiding = self._spec.texture_latency_hiding
                amp = 2.0
            elif space is MemorySpace.CONSTANT:
                # Divergent constant-bank reads serialize per distinct
                # address within a warp: latency hiding collapses.
                hiding = 4.0
                amp = 4.0
            else:
                hiding = self._spec.latency_hiding
                amp = 4.0
            # Divergent warps keep fewer loads in flight, shrinking the
            # latency hiding the scheduler can extract.
            hiding /= 1.0 + ir.divergence
            if ir.prefetch:
                # Software prefetching overlaps gather latency; largely
                # redundant once the texture path already hides it
                # (paper §4.3's spmv-jds observation).
                hiding *= 1.5 if space is not MemorySpace.TEXTURE else 1.05
            latency = self.gather_latency_mixed(
                useful_bytes, working_set, buffer_bytes
            ) / hiding
            bandwidth = self.stream_bandwidth(working_set)
            return AccessCost(
                useful_bytes * amp / bandwidth, elems * latency
            )

        if pattern is AccessPattern.BROADCAST:
            if space is MemorySpace.CONSTANT:
                # Constant cache broadcasts to the whole warp in one cycle.
                return AccessCost(useful_bytes / 256.0, np.zeros(count))
            bandwidth = self.stream_bandwidth(np.minimum(working_set, 64 * 1024))
            return AccessCost(useful_bytes / bandwidth, np.zeros(count))

        raise AssertionError(f"unhandled access pattern {pattern!r}")


class GpuDevice(Device):
    """SM-based GPU with SIMT warps, scratchpad, texture and constant paths."""

    kind = "gpu"

    def __init__(
        self,
        spec: GpuSpec,
        memory: GpuMemoryModel,
        config: ReproConfig,
    ) -> None:
        super().__init__(spec, memory, config)
        self._gpu_spec = spec

    def compute_cycles(
        self, ir: KernelIR, flops: np.ndarray, work_group_size: int
    ) -> np.ndarray:
        """Arithmetic cycles per work group for one variant's flops."""
        flops = np.asarray(flops, dtype=float)
        spec = self._gpu_spec
        # A narrow work-group cannot fill the SM's datapaths.
        occupancy = min(1.0, work_group_size / (2.0 * spec.warp_size))
        throughput = self.spec.flops_per_cycle * occupancy
        # Divergent warps execute both paths serially.
        penalty = 1.0 + ir.divergence
        return flops * penalty / throughput

    def scratchpad_cycles_per_group(self, ir: KernelIR) -> float:
        """Staging + barrier cycles the scratchpad costs per work group."""
        if ir.scratchpad_bytes == 0:
            return 0.0
        # Real on-chip storage: staging is cheap, barriers cost a pipeline
        # drain per work-group.
        copy = ir.scratchpad_bytes / 128.0
        barrier = 100.0 if ir.uses_barrier else 0.0
        return copy + barrier

    def atomic_cycles_per_op(self) -> float:
        """Cycles one global atomic operation costs."""
        # L2-serialized read-modify-write.
        return 60.0


def make_gpu(config: ReproConfig = DEFAULT_CONFIG) -> GpuDevice:
    """Build the default GPU model (K20c-like: 13 SMs, 1.25MB L2)."""
    spec = GpuSpec(
        name="gpu-k20c",
        compute_units=13,
        clock_ghz=0.705,
        flops_per_cycle=128.0,
        max_vector_width=32,
        workgroup_dispatch_overhead=350.0,
        kernel_launch_overhead=3500.0,
        host_query_latency=5000.0,
        loop_overhead_cycles=1.0,
        loop_setup_cycles=4.0,
    )
    levels = (
        CacheLevel("L1/tex", 48 * 1024, 128, 30.0, 64.0),
        CacheLevel("L2", 1280 * 1024, 128, 150.0, 24.0),
    )
    dram = CacheLevel("DRAM", float("inf"), 128, 400.0, 16.0)
    memory = GpuMemoryModel(spec, levels, dram)
    return GpuDevice(spec, memory, config)
