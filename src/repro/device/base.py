"""Device abstraction shared by the CPU and GPU models.

A :class:`Device` bundles a static :class:`DeviceSpec`, a
:class:`~repro.device.memory.MemoryModel`, a noise clock, and the
architecture-specific compute-efficiency rules.  The discrete-event engine
(:mod:`~repro.device.engine`) asks the device for per-work-group cycle
costs (through :class:`~repro.device.cost.CostModel`) and schedules them on
``spec.compute_units`` concurrent execution units.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import ReproConfig
from ..errors import DeviceError
from ..kernel.ir import KernelIR
from .clock import NoisyClock
from .memory import MemoryModel


@dataclass(frozen=True)
class DeviceSpec:
    """Static parameters every device exposes.

    Parameters
    ----------
    name:
        Device name (also seeds its noise stream).
    compute_units:
        Concurrent execution units: cores on CPU, SMs on GPU.
    clock_ghz:
        Nominal clock, used only to convert cycles to seconds in reports.
    flops_per_cycle:
        Peak scalar arithmetic throughput of one unit (ops/cycle); vector
        and warp efficiency scale it per variant.
    max_vector_width:
        SIMD lanes (CPU) or warp size (GPU).
    workgroup_dispatch_overhead:
        Fixed cycles charged per work-group (TBB task dispatch on CPU,
        block scheduler on GPU).  Drives the §5.2 tiny-task overhead case.
    kernel_launch_overhead:
        Cycles from API call to first work-group start (task-group spawn on
        CPU, driver launch on GPU).  Drives the §5.2 spmv-on-GPU overhead
        discussion and the eager-chunking tradeoff (§2.4).
    host_query_latency:
        Cycles a host-side stream-status query consumes (GPU async flow,
        §5.1); irrelevant on CPU where shared memory makes polling cheap.
    loop_overhead_cycles:
        Branch/index cycles per loop trip (the innermost loop's share is
        amortized by unrolling).
    loop_setup_cycles:
        Cycles to enter a loop (bound load, induction init).  Charged per
        loop *instance*, so a short data-dependent inner loop entered once
        per work-item is overhead-dominated — the mechanism behind the
        DFO/BFO crossover on the diagonal matrix (paper §4.4).
    """

    name: str
    compute_units: int
    clock_ghz: float
    flops_per_cycle: float
    max_vector_width: int
    workgroup_dispatch_overhead: float
    kernel_launch_overhead: float
    host_query_latency: float
    loop_overhead_cycles: float
    loop_setup_cycles: float = 8.0

    def __post_init__(self) -> None:
        if self.compute_units < 1:
            raise DeviceError(
                f"device {self.name!r}: compute_units must be >= 1"
            )
        if self.clock_ghz <= 0 or self.flops_per_cycle <= 0:
            raise DeviceError(f"device {self.name!r}: invalid throughput spec")
        if self.max_vector_width < 1:
            raise DeviceError(
                f"device {self.name!r}: max_vector_width must be >= 1"
            )
        for field_name in (
            "workgroup_dispatch_overhead",
            "kernel_launch_overhead",
            "host_query_latency",
            "loop_overhead_cycles",
            "loop_setup_cycles",
        ):
            if getattr(self, field_name) < 0:
                raise DeviceError(
                    f"device {self.name!r}: {field_name} must be >= 0"
                )

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert simulated cycles to seconds at the nominal clock."""
        return cycles / (self.clock_ghz * 1e9)


class Device:
    """A simulated device: spec + memory model + compute rules + noise.

    Subclasses implement :meth:`compute_cycles` (how vector width,
    divergence and work-group shape map to arithmetic efficiency) and
    :meth:`scratchpad_cycles` (what on-chip scratchpad costs/saves — the
    asymmetry behind Fig 10a's "tiling hurts on CPU" result).
    """

    #: "cpu" or "gpu"; workload variant pools use it to pick applicable
    #: transform axes (e.g. texture placement is GPU-only).
    kind: str = "abstract"

    def __init__(
        self,
        spec: DeviceSpec,
        memory: MemoryModel,
        config: ReproConfig,
    ) -> None:
        self.spec = spec
        self.memory = memory
        self.config = config
        self.clock = NoisyClock(config, spec.name)

    @property
    def name(self) -> str:
        """Device name."""
        return self.spec.name

    # ------------------------------------------------------------------
    # Architecture-specific rules
    # ------------------------------------------------------------------

    def compute_cycles(
        self, ir: KernelIR, flops: np.ndarray, work_group_size: int
    ) -> np.ndarray:
        """Arithmetic cycles per work-group for the given flop counts."""
        raise NotImplementedError

    def scratchpad_cycles_per_group(self, ir: KernelIR) -> float:
        """Fixed per-work-group cost of scratchpad staging and barriers."""
        raise NotImplementedError

    def atomic_cycles_per_op(self) -> float:
        """Serialized cycles per global atomic operation."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.spec.name!r}, "
            f"units={self.spec.compute_units})"
        )
