"""Streams: named in-order submission queues (CUDA-stream analogue).

DySel's GPU runtime launches each profiling candidate on its own stream so
candidates profile concurrently, then either synchronizes the device (sync
flow) or polls stream status while eagerly dispatching (async flow, §3.3).
A :class:`Stream` wraps the engine with per-stream task tracking and the
query/synchronize operations those flows use.

:class:`StreamPool` is the serving layer's admission substrate: a bounded,
thread-safe set of reusable streams per device.  Each admitted request
leases one stream for its lifetime, which (a) bounds how many requests can
be in flight on one device at once and (b) tags every batch submission
with the request's stream name, so a recorded trace shows per-request
queues (:mod:`repro.serve`).
"""

from __future__ import annotations

import threading
from typing import List, Mapping, Optional

from ..errors import StreamError
from ..kernel.kernel import KernelVariant, WorkRange
from .engine import ExecutionEngine, Priority, TaskHandle


class Stream:
    """An in-order submission queue on one device."""

    def __init__(self, engine: ExecutionEngine, name: str) -> None:
        if not name:
            raise StreamError("stream name must be non-empty")
        self.engine = engine
        self.name = name
        self.tasks: List[TaskHandle] = []
        self._destroyed = False

    def submit(
        self,
        variant: KernelVariant,
        args: Mapping[str, object],
        units: WorkRange,
        priority: Priority = Priority.BATCH,
        measure: bool = False,
    ) -> TaskHandle:
        """Launch a kernel on this stream."""
        self._check_alive()
        task = self.engine.submit(
            variant, args, units, priority=priority, stream=self.name,
            measure=measure,
        )
        self.tasks.append(task)
        return task

    def query(self) -> bool:
        """``cudaStreamQuery``: has all work on this stream completed?

        Costs host query latency (see §5.1: the query often takes longer
        than the micro-profile it is checking on).
        """
        self._check_alive()
        for task in self.tasks:
            if not task.finished:
                return self.engine.poll(task)
        # All finished; one poll still pays the host round-trip.
        if self.tasks:
            return self.engine.poll(self.tasks[-1])
        return True

    def synchronize(self) -> float:
        """Block until all work on this stream completes."""
        self._check_alive()
        return self.engine.wait_all(self.tasks)

    def destroy(self) -> None:
        """Release the stream; further use raises."""
        self._check_alive()
        self._destroyed = True

    def _check_alive(self) -> None:
        """Refuse operations on a destroyed stream."""
        if self._destroyed:
            raise StreamError(f"stream {self.name!r} was destroyed")

    def __repr__(self) -> str:
        state = "destroyed" if self._destroyed else f"{len(self.tasks)} tasks"
        return f"Stream({self.name!r}, {state})"


class StreamPool:
    """A bounded, thread-safe pool of reusable streams on one device.

    ``acquire`` blocks while all ``capacity`` streams are leased — that is
    the serving layer's per-device admission control: at most ``capacity``
    requests can be in flight on the device at once, the rest queue at the
    pool.  Streams are recycled rather than destroyed; a released stream
    keeps its name, so trace lanes stay stable across requests.
    """

    def __init__(
        self, engine: ExecutionEngine, capacity: int, prefix: str = "serve"
    ) -> None:
        """Create ``capacity`` streams named ``{prefix}-0 .. {prefix}-N``."""
        if capacity < 1:
            raise StreamError(
                f"stream pool capacity must be >= 1, got {capacity}"
            )
        self.engine = engine
        self.capacity = capacity
        self._free: List[Stream] = [
            Stream(engine, f"{prefix}-{i}") for i in range(capacity)
        ]
        self._leased: int = 0
        self._cond = threading.Condition()

    def acquire(self, timeout: Optional[float] = None) -> Stream:
        """Lease a stream, blocking until one frees up.

        Raises :class:`StreamError` when ``timeout`` (seconds) elapses
        first — serving callers surface that as an admission failure
        rather than deadlocking the client thread.
        """
        with self._cond:
            if not self._cond.wait_for(
                lambda: bool(self._free), timeout=timeout
            ):
                raise StreamError(
                    f"no stream available after {timeout}s "
                    f"({self._leased}/{self.capacity} leased)"
                )
            stream = self._free.pop()
            self._leased += 1
            return stream

    def release(self, stream: Stream) -> None:
        """Return a leased stream to the pool (clearing its task list)."""
        with self._cond:
            stream.tasks.clear()
            self._free.append(stream)
            self._leased -= 1
            self._cond.notify()

    @property
    def in_flight(self) -> int:
        """How many streams are currently leased."""
        with self._cond:
            return self._leased

    def __repr__(self) -> str:
        return f"StreamPool({self._leased}/{self.capacity} leased)"
