"""Streams: named in-order submission queues (CUDA-stream analogue).

DySel's GPU runtime launches each profiling candidate on its own stream so
candidates profile concurrently, then either synchronizes the device (sync
flow) or polls stream status while eagerly dispatching (async flow, §3.3).
A :class:`Stream` wraps the engine with per-stream task tracking and the
query/synchronize operations those flows use.
"""

from __future__ import annotations

from typing import List, Mapping

from ..errors import StreamError
from ..kernel.kernel import KernelVariant, WorkRange
from .engine import ExecutionEngine, Priority, TaskHandle


class Stream:
    """An in-order submission queue on one device."""

    def __init__(self, engine: ExecutionEngine, name: str) -> None:
        if not name:
            raise StreamError("stream name must be non-empty")
        self.engine = engine
        self.name = name
        self.tasks: List[TaskHandle] = []
        self._destroyed = False

    def submit(
        self,
        variant: KernelVariant,
        args: Mapping[str, object],
        units: WorkRange,
        priority: Priority = Priority.BATCH,
        measure: bool = False,
    ) -> TaskHandle:
        """Launch a kernel on this stream."""
        self._check_alive()
        task = self.engine.submit(
            variant, args, units, priority=priority, stream=self.name,
            measure=measure,
        )
        self.tasks.append(task)
        return task

    def query(self) -> bool:
        """``cudaStreamQuery``: has all work on this stream completed?

        Costs host query latency (see §5.1: the query often takes longer
        than the micro-profile it is checking on).
        """
        self._check_alive()
        for task in self.tasks:
            if not task.finished:
                return self.engine.poll(task)
        # All finished; one poll still pays the host round-trip.
        if self.tasks:
            return self.engine.poll(self.tasks[-1])
        return True

    def synchronize(self) -> float:
        """Block until all work on this stream completes."""
        self._check_alive()
        return self.engine.wait_all(self.tasks)

    def destroy(self) -> None:
        """Release the stream; further use raises."""
        self._check_alive()
        self._destroyed = True

    def _check_alive(self) -> None:
        if self._destroyed:
            raise StreamError(f"stream {self.name!r} was destroyed")

    def __repr__(self) -> str:
        state = "destroyed" if self._destroyed else f"{len(self.tasks)} tasks"
        return f"Stream({self.name!r}, {state})"
