"""Simulated heterogeneous devices.

This subpackage replaces the paper's real hardware (Intel i7-3820 CPU,
NVIDIA K20c GPU) with discrete-event simulated devices.  The substitution
preserves what DySel actually consumes from hardware:

* work-group-granularity dispatch with priorities and concurrency
  (:mod:`~repro.device.engine`),
* per-kernel timing with realistic measurement noise
  (:mod:`~repro.device.clock`),
* performance that *emerges from device/data interaction* — a mechanistic
  cost model over the kernel IR (:mod:`~repro.device.cost`,
  :mod:`~repro.device.memory`) in which strides cost cache lines,
  divergence costs SIMD masking, gathers cost latency, and placement
  changes the served memory path.

Nothing in the DySel runtime reads the cost model directly; it only
observes measured times, exactly as on real hardware.
"""

from .base import Device, DeviceSpec
from .clock import MeasuredInterval, NoisyClock
from .cost import (
    CostModel,
    clear_cost_memo,
    cost_memo_stats,
    invalidate_cost_memo,
    ir_hash,
    statically_priced,
)
from .cpu import CpuDevice, CpuSpec, make_cpu
from .engine import ExecutionEngine, Priority, TaskHandle
from .gpu import GpuDevice, GpuSpec, make_gpu
from .memory import AccessCost, CacheLevel, MemoryModel
from .stream import Stream, StreamPool

__all__ = [
    "AccessCost",
    "CacheLevel",
    "CostModel",
    "CpuDevice",
    "CpuSpec",
    "Device",
    "DeviceSpec",
    "ExecutionEngine",
    "GpuDevice",
    "GpuSpec",
    "MeasuredInterval",
    "MemoryModel",
    "NoisyClock",
    "Priority",
    "Stream",
    "StreamPool",
    "TaskHandle",
    "clear_cost_memo",
    "cost_memo_stats",
    "invalidate_cost_memo",
    "ir_hash",
    "make_cpu",
    "make_gpu",
    "statically_priced",
]
