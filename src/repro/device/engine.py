"""Discrete-event execution engine for simulated devices.

The engine plays the role of TBB (CPU) and the CUDA driver + block
scheduler (GPU): it dispatches work-groups onto ``compute_units``
concurrent execution units, honoring priorities — profiling work beats
eager work beats batch work, like DySel's prioritized task groups (§3.2) —
and charging kernel-launch overhead and host query latency (§3.3, §5.1).

Causality is host-driven: the engine never simulates past the host clock
(``now``) on its own.  Host-side operations (submit, poll, wait, barrier)
advance the host clock, and only then does the device schedule work-groups
whose start times fall inside the advanced window.  This makes the
asynchronous flow faithful: an eager chunk submitted after a poll really
competes with whatever is still running at that host time.

Functional execution (the variant actually writing its output buffers)
happens at submission; simulated timing is independent of functional
results, matching how a deterministic kernel's output does not depend on
when it is scheduled.

Measurement mimics the paper's in-kernel clock instrumentation (Fig 7):
a task's interval spans the earliest work-group start to the latest
work-group end among its work-groups, read through the quantized noisy
timer.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..config import ReproConfig
from ..errors import EngineError
from ..kernel.kernel import KernelVariant, WorkRange
from ..obs.events import EventKind
from ..obs.tracer import make_tracer
from .base import Device
from .clock import MeasuredInterval, NoisyClock
from .cost import CostModel

#: Fraction of the kernel-launch overhead spent on the *host* side of the
#: launch call (driver entry / task-group spawn); the remainder is
#: device-side setup before the first work-group starts.
HOST_LAUNCH_FRACTION = 0.25

#: Above this many *total queued* work-groups, a drain to an unbounded
#: horizon skips the per-work-group event machinery and runs the analytic
#: schedule (see :meth:`ExecutionEngine._try_fast_batch`).  Contended and
#: mixed-priority queues qualify: with no pending arrivals the event loop
#: is provably a priority-ordered greedy list schedule, so draining it in
#: one pass is exact, not an approximation.
FAST_BATCH_THRESHOLD = 4096

#: When True, the analytic drain additionally collapses equal-duration
#: batches (noise off, statically priced kernels) into a numpy
#: closed-form round-robin schedule instead of a per-group heap loop.
#: The closed form is only taken when it is provably bit-identical to the
#: heap loop; tests monkeypatch this flag to force each path.
VECTORIZED_BATCH = True

#: Shared empty duration array for finalized/cancelled tasks.
_NO_DURATIONS = np.zeros(0)


class _Batch:
    """Queued work-groups of one task: a duration array and a cursor.

    The event loop consumes groups by advancing ``index``; the analytic
    drain consumes the remaining suffix at once.  Keeping the array whole
    (instead of a deque of floats) is what makes the vectorized schedule
    possible without changing delivery order.
    """

    __slots__ = ("task", "durations", "index")

    def __init__(self, task: "TaskHandle") -> None:
        self.task = task
        self.durations = task._durations
        self.index = 0

    @property
    def remaining(self) -> int:
        """Work-groups not yet dispatched from this batch."""
        return len(self.durations) - self.index


class Priority(enum.IntEnum):
    """Dispatch priority classes (lower value wins)."""

    PROFILING = 0
    EAGER = 1
    BATCH = 2


@dataclass
class TaskHandle:
    """One submitted kernel execution (a set of work-groups).

    Exposes completion state and the measured interval once finished.
    ``true_cycles``/``measured`` are populated by the engine; callers
    (the DySel runtime) must only read ``measured`` — ``true_*`` fields
    exist for the oracle and tests.
    """

    task_id: int
    variant: KernelVariant
    units: WorkRange
    priority: Priority
    stream: Optional[str]
    measure: bool
    submit_time: float
    arrival_time: float
    #: Work-group durations (jittered), dispatched in index order.  The
    #: array may be a read-only view shared with the cost-kernel memo;
    #: the engine never writes through it (consumption state lives on the
    #: ready-queue :class:`_Batch`, not here).
    _durations: np.ndarray = field(
        default_factory=lambda: _NO_DURATIONS, repr=False
    )
    total_work_groups: int = 0
    completed_work_groups: int = 0
    first_start: float = float("inf")
    last_end: float = 0.0
    measured: Optional[MeasuredInterval] = None
    #: Injected hang: the task was accepted but will never be scheduled.
    hung: bool = False
    #: The host gave up on this task (deadline expiry / fault cleanup).
    cancelled: bool = False

    @property
    def finished(self) -> bool:
        """True once every work-group has completed (never for a hang)."""
        if self.hung or self.cancelled:
            return False
        return self.completed_work_groups >= self.total_work_groups

    @property
    def true_span_cycles(self) -> float:
        """Ground-truth profiled interval (first start to last end)."""
        if not self.finished:
            raise EngineError(
                f"task {self.task_id} not finished; span unavailable"
            )
        if self.total_work_groups == 0:
            return 0.0
        return self.last_end - self.first_start


class ExecutionEngine:
    """Event-driven scheduler for one device."""

    def __init__(self, device: Device, config: Optional[ReproConfig] = None) -> None:
        self.device = device
        self.config = config if config is not None else device.config
        # The engine owns its clock so a per-run config (e.g. noise
        # disabled for oracle runs) takes effect regardless of how the
        # device was built.
        self.clock = NoisyClock(self.config, device.spec.name)
        self.cost_model = CostModel(device)
        #: Observability hook (:mod:`repro.obs`): recording when
        #: ``config.trace`` is set, the shared no-op otherwise.  Hot paths
        #: guard on ``tracer.enabled`` so the disabled configuration pays
        #: one branch per call.
        self.tracer = make_tracer(self.config)
        self._now = 0.0
        units = device.spec.compute_units
        #: Heap of (free_time, unit_id).
        self._unit_heap: List[Tuple[float, int]] = [(0.0, i) for i in range(units)]
        heapq.heapify(self._unit_heap)
        #: Pending device-side arrivals: (arrival_time, seq, task).
        self._arrivals: List[Tuple[float, int, TaskHandle]] = []
        #: Ready work by priority: deque of per-task :class:`_Batch`es.
        self._ready: Dict[Priority, Deque[_Batch]] = {
            p: deque() for p in Priority
        }
        self._seq = itertools.count()
        self._busy_cycles = 0.0
        self._launch_count = 0
        #: Task the current ``_advance_to`` must stop after (plumbed to
        #: the analytic drain, whose signature tests subclass).
        self._stop_task: Optional[TaskHandle] = None
        #: Optional fault injector (:mod:`repro.faults`); when installed,
        #: it owns functional execution and may sabotage submissions.
        self.injector = None

    # ------------------------------------------------------------------
    # Host-side API
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current host clock, in device cycles."""
        return self._now

    @property
    def launch_count(self) -> int:
        """Number of kernel launches submitted so far."""
        return self._launch_count

    def utilization(self) -> float:
        """Fraction of unit-cycles spent busy since time zero."""
        elapsed = self._device_horizon()
        if elapsed <= 0:
            return 0.0
        return self._busy_cycles / (elapsed * self.device.spec.compute_units)

    def submit(
        self,
        variant: KernelVariant,
        args: Mapping[str, object],
        units: WorkRange,
        priority: Priority = Priority.BATCH,
        stream: Optional[str] = None,
        measure: bool = False,
    ) -> TaskHandle:
        """Launch a variant over a workload-unit range.

        Functionally executes the variant immediately (writing its output
        buffers); schedules its work-groups for timing.  The host clock
        advances by the host-side share of the launch overhead; the
        work-groups become dispatchable after the device-side share.

        With a fault injector installed the injector owns functional
        execution: it may raise a :class:`~repro.errors.VariantFault`
        (the submission never becomes a task — a crashed kernel launch),
        slow the task's work-groups, or hang it (the task is returned
        but will never finish; use :meth:`wait_deadline`).
        """
        overhead = self.device.spec.kernel_launch_overhead
        self._now += overhead * HOST_LAUNCH_FRACTION
        arrival = self._now + overhead * (1.0 - HOST_LAUNCH_FRACTION)
        self._launch_count += 1

        if self.injector is None:
            variant.execute(args, units)
            hang = False
            latency_scale = 1.0
        else:
            outcome = self.injector.intercept(variant, args, units)
            hang = outcome.hang
            latency_scale = outcome.latency_scale

        true_costs = self.cost_model.workgroup_cycles(variant, args, units)
        durations = self.clock.jitter_durations(true_costs)
        if latency_scale != 1.0:
            # Elementwise multiply: bit-identical to scaling each float.
            durations = durations * latency_scale
        # No copy when the costs came back from the memo unscaled: the
        # read-only cached array flows straight onto the ready queue.
        durations = np.ascontiguousarray(durations, dtype=np.float64)

        task = TaskHandle(
            task_id=next(self._seq),
            variant=variant,
            units=units,
            priority=priority,
            stream=stream,
            measure=measure,
            submit_time=self._now,
            arrival_time=arrival,
            _durations=durations,
            total_work_groups=int(durations.size),
        )
        if hang:
            # Accepted by the driver, never scheduled: the task sits
            # outside the arrival queue so barriers still drain, and only
            # a deadline wait (then ``cancel``) gets the host unstuck.
            task.hung = True
        elif task.total_work_groups == 0:
            task.first_start = arrival
            task.last_end = arrival
            self._finalize(task)
        else:
            heapq.heappush(self._arrivals, (arrival, next(self._seq), task))
        if self.tracer.enabled:
            self.tracer.instant(
                EventKind.TASK_SUBMIT,
                variant.name,
                self._now,
                task_id=task.task_id,
                units=len(units),
                start_unit=units.start,
                end_unit=units.end,
                priority=priority.name.lower(),
                stream=stream,
                work_groups=task.total_work_groups,
            )
        return task

    def poll(self, task: TaskHandle) -> bool:
        """Query a task's completion status (costs host query latency).

        Models ``cudaStreamQuery`` (§3.3): the query itself takes longer
        than a micro-profile often does, which is what limits eager
        dispatch on GPUs (§5.1).
        """
        self._now += self.device.spec.host_query_latency
        self._advance_to(self._now)
        done = task.finished and task.last_end <= self._now
        if self.tracer.enabled:
            self.tracer.instant(
                EventKind.HOST_POLL,
                task.variant.name,
                self._now,
                task_id=task.task_id,
                finished=done,
                latency_cycles=self.device.spec.host_query_latency,
            )
        return done

    def wait(self, task: TaskHandle) -> float:
        """Block the host until a task completes; returns completion time."""
        blocked_at = self._now
        self._drain_task(task)
        self._now = max(self._now, task.last_end)
        if self.tracer.enabled:
            self.tracer.span(
                EventKind.HOST_WAIT,
                task.variant.name,
                blocked_at,
                self._now,
                task_id=task.task_id,
            )
        return task.last_end

    def wait_all(self, tasks: List[TaskHandle]) -> float:
        """Block the host until all tasks complete (device synchronize)."""
        blocked_at = self._now
        end = self._now
        for task in tasks:
            self._drain_task(task)
            end = max(end, task.last_end)
        self._now = max(self._now, end)
        if self.tracer.enabled:
            self.tracer.span(
                EventKind.HOST_WAIT,
                f"{len(tasks)} task(s)",
                blocked_at,
                self._now,
            )
        return self._now

    def wait_deadline(self, task: TaskHandle, deadline: float) -> bool:
        """Block until a task completes or the host clock hits ``deadline``.

        Returns True if the task finished.  Unlike :meth:`wait`, a task
        that cannot make progress (an injected hang) does not wedge the
        host: the clock advances to the deadline, other work keeps
        flowing, and the caller decides what to do with the straggler
        (usually :meth:`cancel`).
        """
        blocked_at = self._now
        deadline = max(deadline, self._now)
        while not task.finished:
            if not self._advance_to(deadline, stop_task=task):
                break
        finished = task.finished
        if finished:
            self._now = max(self._now, task.last_end)
        else:
            self._now = max(self._now, deadline)
            self._advance_to(self._now)
        if self.tracer.enabled:
            self.tracer.span(
                EventKind.HOST_WAIT,
                task.variant.name,
                blocked_at,
                self._now,
                task_id=task.task_id,
                deadline=deadline,
                timed_out=not finished,
            )
        return finished

    def cancel(self, task: TaskHandle) -> None:
        """Abandon a task the host has given up on (hang cleanup).

        Undelivered work-groups are dropped; already-dispatched ones
        complete (a real device cannot claw back in-flight blocks, and
        their cycles stay in the utilization accounting).  The task is
        marked ``cancelled`` and will never read as finished.
        """
        self._arrivals = [
            entry for entry in self._arrivals if entry[2] is not task
        ]
        heapq.heapify(self._arrivals)
        for queue in self._ready.values():
            if any(batch.task is task for batch in queue):
                kept = [batch for batch in queue if batch.task is not task]
                queue.clear()
                queue.extend(kept)
        task._durations = _NO_DURATIONS
        task.cancelled = True
        if self.tracer.enabled:
            self.tracer.instant(
                EventKind.TASK_CANCEL,
                task.variant.name,
                self._now,
                task_id=task.task_id,
                completed_work_groups=task.completed_work_groups,
            )

    def barrier(self) -> float:
        """Drain every outstanding work-group (``cudaDeviceSynchronize``)."""
        blocked_at = self._now
        self._advance_to(float("inf"))
        self._now = max(self._now, self._device_horizon())
        if self.tracer.enabled:
            self.tracer.span(
                EventKind.BARRIER, "device", blocked_at, self._now
            )
        return self._now

    def host_compute(self, cycles: float) -> None:
        """Charge host-side work (selection compare, bookkeeping)."""
        if cycles < 0:
            raise EngineError(f"host_compute cycles must be >= 0: {cycles}")
        self._now += cycles
        self._advance_to(self._now)

    # ------------------------------------------------------------------
    # Simulation core
    # ------------------------------------------------------------------

    def _drain_task(self, task: TaskHandle) -> None:
        """Advance simulation until the given task finishes."""
        guard = 0
        while not task.finished:
            progressed = self._advance_to(float("inf"), stop_task=task)
            guard += 1
            if not progressed and not task.finished:
                raise EngineError(
                    f"task {task.task_id} cannot finish: engine is stuck "
                    f"(ready={sum(len(q) for q in self._ready.values())}, "
                    f"arrivals={len(self._arrivals)})"
                )
            if guard > 10_000_000:
                raise EngineError("engine livelock detected")

    def _device_horizon(self) -> float:
        """Latest unit free time (device-side frontier)."""
        return max(t for t, _ in self._unit_heap)

    def _ready_count(self) -> int:
        """Work-groups currently queued across all priorities."""
        return sum(
            batch.remaining
            for queue in self._ready.values()
            for batch in queue
        )

    def _peek_ready(self) -> _Batch:
        """The highest-priority ready batch (queues must not be empty)."""
        for priority in Priority:
            queue = self._ready[priority]
            if queue:
                return queue[0]
        raise EngineError("no ready work-group to pop")

    def _deliver_arrivals(self, up_to: float) -> None:
        """Move tasks whose submit time has passed onto the ready queues."""
        while self._arrivals and self._arrivals[0][0] <= up_to:
            _, _, task = heapq.heappop(self._arrivals)
            self._ready[task.priority].append(_Batch(task))

    def _advance_to(
        self, horizon: float, stop_task: Optional[TaskHandle] = None
    ) -> bool:
        """Schedule work-groups with start times up to ``horizon``.

        Returns True if any progress was made.  With ``stop_task`` given,
        returns as soon as that task finishes.
        """
        progressed = False
        previous_stop = self._stop_task
        self._stop_task = stop_task
        try:
            while True:
                if stop_task is not None and stop_task.finished:
                    return progressed
                ready = self._ready
                if not (
                    ready[Priority.PROFILING]
                    or ready[Priority.EAGER]
                    or ready[Priority.BATCH]
                ):
                    if not self._arrivals:
                        return progressed
                    next_arrival = self._arrivals[0][0]
                    if next_arrival > horizon:
                        return progressed
                    self._deliver_arrivals(next_arrival)
                    continue

                if self._try_fast_batch(horizon):
                    progressed = True
                    continue

                free_time, unit = self._unit_heap[0]
                # Deliver anything arriving by the dispatch instant so
                # higher priority work can claim the unit.
                self._deliver_arrivals(free_time)
                batch = self._peek_ready()
                task = batch.task
                start = max(free_time, task.arrival_time)
                if start > horizon:
                    # Nothing can start inside the horizon yet.
                    return progressed
                duration = float(batch.durations[batch.index])
                batch.index += 1
                if batch.index == len(batch.durations):
                    self._ready[task.priority].popleft()
                heapq.heappop(self._unit_heap)
                end = start + duration
                heapq.heappush(self._unit_heap, (end, unit))
                self._busy_cycles += duration
                task.first_start = min(task.first_start, start)
                task.last_end = max(task.last_end, end)
                task.completed_work_groups += 1
                if task.finished:
                    self._finalize(task)
                progressed = True
        finally:
            self._stop_task = previous_stop

    def _try_fast_batch(self, horizon: float) -> bool:
        """Analytic drain of the ready queues (exact, never approximate).

        With no pending arrivals and an unbounded horizon, the event loop
        degenerates to a fixed iteration order: for each queued work-group
        in priority-then-FIFO order, pop the earliest-free unit, start at
        ``max(free_time, arrival)``, run, push back.  Nothing can preempt
        — arrivals are empty and priorities are fixed — so running that
        schedule as a tight loop over whole batches (contended,
        mixed-priority, and preempted queues included) produces *bit
        identical* unit free times, intervals, busy cycles, and
        measurement-RNG consumption; only the simulation cost differs.

        When every remaining duration in a batch is the same value ``d``
        and all units are free at the same instant (the uncontended
        noise-free case), the greedy schedule is a round-robin with round
        ends ``a, a+d, a+2d, …`` — a sequential fold that
        ``np.add.accumulate`` reproduces exactly, so the heap loop
        collapses to a handful of array ops (gated by
        :data:`VECTORIZED_BATCH`).

        A ``stop_task`` (plumbed via ``_advance_to``) stops the drain
        right after the batch that finishes it; later batches stay queued
        because work submitted afterwards could still preempt them.
        """
        if self._arrivals or horizon != float("inf"):
            return False
        if self._ready_count() < FAST_BATCH_THRESHOLD:
            return False

        stop_task = self._stop_task
        unit_heap = self._unit_heap
        heapreplace = heapq.heapreplace
        busy = self._busy_cycles
        finished: List[TaskHandle] = []
        stopped = False
        for priority in Priority:
            queue = self._ready[priority]
            while queue and not stopped:
                batch = queue[0]
                task = batch.task
                durations = batch.durations
                index = batch.index
                count = len(durations) - index
                arrival = task.arrival_time
                first_start = task.first_start
                last_end = task.last_end

                vectorized = False
                if VECTORIZED_BATCH:
                    d = float(durations[index])
                    f0 = unit_heap[0][0]
                    if (
                        d > 0.0
                        and all(t == f0 for t, _ in unit_heap)
                        and bool(np.all(durations[index:] == d))
                    ):
                        busy, start0, end_last = self._vector_rounds(
                            arrival, d, count, busy
                        )
                        if start0 < first_start:
                            first_start = start0
                        if end_last > last_end:
                            last_end = end_last
                        vectorized = True

                if not vectorized:
                    while index < len(durations):
                        free_time, unit = unit_heap[0]
                        start = (
                            free_time if free_time > arrival else arrival
                        )
                        duration = float(durations[index])
                        end = start + duration
                        heapreplace(unit_heap, (end, unit))
                        if start < first_start:
                            first_start = start
                        if end > last_end:
                            last_end = end
                        busy += duration
                        index += 1

                batch.index = len(durations)
                queue.popleft()
                task.first_start = first_start
                task.last_end = last_end
                task.completed_work_groups += count
                if task.finished:
                    finished.append(task)
                    if task is stop_task:
                        stopped = True
            if stopped:
                break
        self._busy_cycles = busy
        self._measure_finished(finished)
        return True

    def _vector_rounds(
        self, arrival: float, d: float, count: int, busy: float
    ) -> Tuple[float, float, float]:
        """Closed-form round-robin schedule for an equal-duration batch.

        Preconditions (checked by the caller): every unit free at the
        same instant ``f0``, every remaining duration equal to ``d > 0``.
        The event path then pops units in id order (heap ties break on
        the id) and every unit walks the same end sequence
        ``a, a+d, a+2d, …`` with ``a = max(f0, arrival)`` — computed here
        with ``np.add.accumulate``, whose sequential left fold matches
        the event path's repeated ``end = start + d`` bit for bit.
        Returns the new busy-cycle fold and the batch's first start and
        last end.
        """
        unit_heap = self._unit_heap
        f0 = unit_heap[0][0]
        m = len(unit_heap)
        a = f0 if f0 > arrival else arrival
        rounds = -(-count // m)
        ends = np.add.accumulate(
            np.concatenate(([a], np.full(rounds, d)))
        )
        ids = sorted(unit for _, unit in unit_heap)
        rebuilt = []
        for position, unit in enumerate(ids):
            groups = (count - position + m - 1) // m if position < count else 0
            free = float(ends[groups]) if groups > 0 else f0
            rebuilt.append((free, unit))
        unit_heap[:] = rebuilt
        heapq.heapify(unit_heap)
        busy = float(
            np.add.accumulate(np.concatenate(([busy], np.full(count, d))))[-1]
        )
        return busy, float(ends[0]), float(ends[(count - 1) // m + 1])

    def _measure_finished(self, tasks: List[TaskHandle]) -> None:
        """Read measurements for drained tasks, in completion order.

        Uses the clock's batched read so one RNG call serves the whole
        drain; bit-identical to per-task :meth:`_finalize` calls because
        nothing else consumes the clock's RNG between the completions.
        """
        pending = [
            task
            for task in tasks
            if task.measure and task.measured is None
        ]
        if not pending:
            return
        intervals = self.clock.read_intervals(
            [task.true_span_cycles for task in pending]
        )
        for task, interval in zip(pending, intervals):
            task.measured = interval

    def _finalize(self, task: TaskHandle) -> None:
        """Complete a task: read its (noisy) measurement, emit its span."""
        if task.measure and task.measured is None:
            span = task.true_span_cycles
            task.measured = self.clock.read_interval(span)
