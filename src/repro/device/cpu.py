"""Simulated multicore CPU (modeled after the paper's Intel i7-3820).

Architecture rules encoded here, with their paper correlates:

* **SIMD masking / packing** — under control divergence, wider vectors pay
  growing mask, pack and unpack overhead on both compute and memory ops
  (paper §1, Fig 1: the Intel vectorizer's width choice can lose 2.13×).
* **Work-item scheduling sensitivity** — access patterns produced by the
  chosen work-item/kernel-loop schedule decide whether streams hit the
  prefetched unit-stride path or pay strided line amplification (Fig 8's
  up-to-117× spread across LC schedules).
* **Uniform memory space** — scratchpad is lowered to ordinary cached
  memory, so tiling buys no latency and costs copies (Fig 10a's 1.23×
  average tiling slowdown on CPU).
* **Task dispatch overhead** — every work-group is a TBB task; tiny tasks
  expose the dispatch spin cost (§5.2's 88% overhead pathology).
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from ..config import DEFAULT_CONFIG, ReproConfig
from ..kernel.buffers import MemorySpace
from ..kernel.ir import AccessPattern, KernelIR, MemoryAccess
from .base import Device, DeviceSpec
from .memory import ELEM_BYTES, AccessCost, CacheLevel, MemoryModel


@dataclass(frozen=True)
class CpuSpec(DeviceSpec):
    """CPU-specific tuning knobs on top of the common spec.

    ``simd_mask_overhead`` scales the per-lane divergence penalty on
    compute; ``simd_pack_overhead`` scales the penalty vectorization adds
    to irregular (gather/divergent) memory ops; ``gather_mlp`` is the
    memory-level parallelism the out-of-order core extracts from
    independent gathers.
    """

    simd_mask_overhead: float = 0.15
    simd_pack_overhead: float = 0.08
    gather_mlp: float = 6.0


class CpuMemoryModel(MemoryModel):
    """Cache-hierarchy cost rules for the CPU."""

    def __init__(self, spec: CpuSpec, levels, dram) -> None:
        super().__init__(levels, dram)
        self._spec = spec

    def access_cost(
        self,
        access: MemoryAccess,
        useful_bytes: np.ndarray,
        working_set: np.ndarray,
        buffer_bytes: float,
        ir: KernelIR,
        space: MemorySpace,
        dynamic_stride=None,
    ) -> AccessCost:
        """Cycles one variant's access stream costs on this memory system."""
        useful_bytes = np.asarray(useful_bytes, dtype=float)
        count = useful_bytes.size
        pattern = access.pattern

        # Vectorization penalty on irregular memory ops: masked/packed
        # lanes cost extra scalar work proportional to width (paper Fig 1).
        width = ir.vector_width
        irregular = pattern is AccessPattern.GATHER or ir.divergence > 0
        if width > 1 and irregular:
            pack = 1.0 + self._spec.simd_pack_overhead * (width - 1) * (
                0.5 + ir.divergence
            )
        else:
            pack = 1.0

        if pattern in (AccessPattern.UNIT_STRIDE, AccessPattern.COALESCED):
            # Prefetched streaming: fresh bytes come from wherever the
            # buffer lives, re-touches from the footprint's level.  On
            # CPU, "coalesced across work-items" lowers to unit-stride
            # inner loops after work-item serialization/vectorization.
            cycles = self.stream_cycles(useful_bytes, working_set, buffer_bytes)
            return AccessCost(cycles * pack, np.zeros(count))

        if pattern is AccessPattern.STRIDED:
            amp = self.stride_amplification(access.stride_bytes)
            cycles = self.stream_cycles(
                useful_bytes, working_set, buffer_bytes, amplification=amp
            )
            # A stride of a full line or more also defeats the adjacent
            # line prefetcher, exposing part of the access latency.
            if access.stride_bytes >= self.line_bytes:
                elems = useful_bytes / ELEM_BYTES
                latency = self.gather_latency(working_set * amp) / (
                    2.0 * self._spec.gather_mlp
                )
                exposed = elems * latency * pack
            else:
                exposed = np.zeros(count)
            return AccessCost(cycles * pack, exposed)

        if pattern is AccessPattern.GATHER:
            elems = useful_bytes / ELEM_BYTES
            latency = self.gather_latency_mixed(
                useful_bytes, working_set, buffer_bytes
            ) / self._spec.gather_mlp
            bandwidth = self.stream_bandwidth(working_set)
            return AccessCost(
                useful_bytes * pack / bandwidth, elems * latency * pack
            )

        if pattern is AccessPattern.BROADCAST:
            # Register/L1-resident after the first touch.
            l1 = self.levels[0]
            return AccessCost(
                useful_bytes / (4.0 * l1.bytes_per_cycle), np.zeros(count)
            )

        raise AssertionError(f"unhandled access pattern {pattern!r}")


class CpuDevice(Device):
    """Multicore CPU with SIMD datapaths and a three-level cache."""

    kind = "cpu"

    def __init__(
        self,
        spec: CpuSpec,
        memory: CpuMemoryModel,
        config: ReproConfig,
    ) -> None:
        super().__init__(spec, memory, config)
        self._cpu_spec = spec

    def compute_cycles(
        self, ir: KernelIR, flops: np.ndarray, work_group_size: int
    ) -> np.ndarray:
        """Arithmetic cycles per work group for one variant's flops."""
        flops = np.asarray(flops, dtype=float)
        width = min(ir.vector_width, self.spec.max_vector_width)
        throughput = self.spec.flops_per_cycle * width
        if width > 1 and ir.divergence > 0:
            # Divergent lanes execute both paths plus mask management;
            # overhead grows with datapath width (paper §1).
            penalty = 1.0 + ir.divergence * self._cpu_spec.simd_mask_overhead * width
        else:
            penalty = 1.0
        return flops * penalty / throughput

    def scratchpad_cycles_per_group(self, ir: KernelIR) -> float:
        """Staging + barrier cycles the scratchpad costs per work group."""
        if ir.scratchpad_bytes == 0:
            return 0.0
        # Scratchpad lowers to ordinary cached memory: the staging copies
        # are pure overhead (in + out through L1), and barriers serialize
        # the work-item loops (Fig 10a: tiling hurts on CPU).
        l1 = self.memory.levels[0]
        copy = 2.0 * ir.scratchpad_bytes / l1.bytes_per_cycle
        barrier = 200.0 if ir.uses_barrier else 0.0
        return copy + barrier

    def atomic_cycles_per_op(self) -> float:
        """Cycles one global atomic operation costs."""
        # Locked cacheline round-trip between cores.
        return 25.0


def make_cpu(config: ReproConfig = DEFAULT_CONFIG) -> CpuDevice:
    """Build the default CPU model (i7-3820-like: 4 cores, AVX, 10MB LLC)."""
    spec = CpuSpec(
        name="cpu-i7",
        compute_units=4,
        clock_ghz=3.6,
        flops_per_cycle=2.0,
        max_vector_width=8,
        workgroup_dispatch_overhead=900.0,
        kernel_launch_overhead=6000.0,
        host_query_latency=100.0,
        loop_overhead_cycles=1.0,
        loop_setup_cycles=10.0,
    )
    levels = (
        CacheLevel("L1", 32 * 1024, 64, 4.0, 48.0),
        CacheLevel("L2", 256 * 1024, 64, 12.0, 16.0),
        CacheLevel("L3", 10 * 1024 * 1024, 64, 36.0, 8.0),
    )
    dram = CacheLevel("DRAM", float("inf"), 64, 200.0, 4.0)
    memory = CpuMemoryModel(spec, levels, dram)
    return CpuDevice(spec, memory, config)
