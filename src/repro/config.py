"""Global configuration for the DySel reproduction.

The simulator is deterministic given a seed: all measurement noise, workload
generation, and scheduling tie-breaks draw from RNG streams derived from a
single root seed.  Experiments construct a :class:`ReproConfig` and thread it
through devices and workloads; library defaults are chosen so that
``ReproConfig()`` reproduces the paper-shaped results out of the box.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

import numpy as np

from .errors import ConfigurationError

#: Default root seed.  Chosen arbitrarily; fixed so results are reproducible.
DEFAULT_SEED = 20160402  # ASPLOS'16 started April 2, 2016.

#: Work-group-count threshold below which DySel deactivates profiling
#: (paper §2.1: "profiling-based kernel selection is deactivated for small
#: workload"; Figure 2 drops launches under 128 work-groups).
SMALL_WORKLOAD_THRESHOLD = 128


@dataclass(frozen=True)
class NoiseModel:
    """Measurement / execution noise parameters.

    The paper (§5.2) observes that profiling accuracy degrades when the
    profiled unit of work is tiny relative to system noise (95% selection
    accuracy on CPU spmv-csr).  We model two noise sources:

    * ``execution_jitter`` — multiplicative lognormal jitter applied to each
      work-group's true cost (system noise, frequency scaling, ...).
    * ``timer_quantum`` — granularity of the simulated cycle counter; tiny
      measurements are rounded to this quantum, losing resolution exactly
      when the paper says wall-clock timers become unreliable (§3.3).
    """

    execution_jitter: float = 0.02
    timer_quantum: float = 1.0

    def __post_init__(self) -> None:
        if self.execution_jitter < 0:
            raise ConfigurationError(
                f"execution_jitter must be >= 0, got {self.execution_jitter}"
            )
        if self.timer_quantum <= 0:
            raise ConfigurationError(
                f"timer_quantum must be > 0, got {self.timer_quantum}"
            )


@dataclass(frozen=True)
class FaultPolicy:
    """Runtime fault-tolerance knobs (:mod:`repro.faults`, ``docs/faults.md``).

    Controls how the hardened runtime reacts to :class:`~repro.errors.VariantFault`
    failures: transient faults are retried with capped exponential backoff
    (``backoff_base_cycles × 2^attempt``, capped at ``backoff_cap_cycles``),
    hung tasks are declared dead once a profiling wait exceeds
    ``hang_deadline_cycles`` on the device clock, and a variant that
    accumulates ``quarantine_threshold`` faults is quarantined for
    ``parole_ttl`` clock seconds before it may run again on parole.
    """

    #: Transient-fault resubmission attempts per submission (0 disables).
    max_retries: int = 3
    #: First retry's host-side backoff, in device cycles.
    backoff_base_cycles: float = 500.0
    #: Exponential backoff ceiling, in device cycles.
    backoff_cap_cycles: float = 8_000.0
    #: Device cycles a profiling wait may block before declaring a hang.
    hang_deadline_cycles: float = 5_000_000.0
    #: Faults (lifetime, per variant) that trigger quarantine.
    quarantine_threshold: int = 2
    #: Quarantine duration in ledger-clock seconds (``None`` = forever).
    parole_ttl: Optional[float] = 600.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base_cycles < 0 or self.backoff_cap_cycles < 0:
            raise ConfigurationError(
                "backoff cycles must be >= 0, got "
                f"{self.backoff_base_cycles}/{self.backoff_cap_cycles}"
            )
        if self.hang_deadline_cycles <= 0:
            raise ConfigurationError(
                "hang_deadline_cycles must be > 0, got "
                f"{self.hang_deadline_cycles}"
            )
        if self.quarantine_threshold < 1:
            raise ConfigurationError(
                "quarantine_threshold must be >= 1, got "
                f"{self.quarantine_threshold}"
            )
        if self.parole_ttl is not None and self.parole_ttl <= 0:
            raise ConfigurationError(
                f"parole_ttl must be positive or None, got {self.parole_ttl}"
            )

    def backoff_cycles(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based), capped."""
        if attempt < 1:
            raise ConfigurationError(f"attempt must be >= 1, got {attempt}")
        return min(
            self.backoff_base_cycles * (2.0 ** (attempt - 1)),
            self.backoff_cap_cycles,
        )


@dataclass(frozen=True)
class RuleAdjustment:
    """One configured severity adjustment of a verifier rule.

    ``action`` is ``"suppress"`` (drop the diagnostic) or ``"downgrade"``
    (ERROR → WARNING, keeping the finding visible).  ``pools`` restricts
    the adjustment to pools whose label contains any of the given
    substrings; empty means every pool.  Rule-id existence is validated by
    the analyze layer against its registry (unknown ids are configuration
    errors there — this module cannot import the registry without a
    cycle).
    """

    rule_id: str
    action: str = "suppress"
    pools: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.action not in ("suppress", "downgrade"):
            raise ConfigurationError(
                "rule adjustment action must be 'suppress' or 'downgrade', "
                f"got {self.action!r} for {self.rule_id!r}"
            )
        if not self.rule_id:
            raise ConfigurationError("rule adjustment needs a rule_id")

    def matches(self, pool_label: str) -> bool:
        """Whether the adjustment applies to a pool label."""
        return not self.pools or any(sub in pool_label for sub in self.pools)


@dataclass(frozen=True)
class AnalyzeSettings:
    """Static cost-bound analysis knobs (:mod:`repro.analyze`).

    ``dominance`` opts the runtime and serve scheduler into static
    cost-interval features: dominance pruning of micro-profiling candidate
    sets and cold-start load estimates from interval midpoints.  Off by
    default — the analysis is sound but its pruning is a behaviour change
    (fewer variants measured), so it is an explicit opt-in like tracing.

    ``data_trip_bounds`` is the widening interval assumed for any
    data-dependent loop's per-unit trip count; workloads outside it void
    the interval-soundness guarantee.  ``dominance_margin`` (``>= 1``)
    is the safety factor a variant's best case must exceed a rival's
    worst case by before it is pruned.
    """

    dominance: bool = False
    dominance_margin: float = 1.25
    data_trip_bounds: Tuple[float, float] = (0.0, 4096.0)
    #: Configured per-rule severity adjustments (``[tool.repro.analyze]``).
    rules: Tuple[RuleAdjustment, ...] = ()

    def __post_init__(self) -> None:
        if self.dominance_margin < 1.0:
            raise ConfigurationError(
                "dominance_margin must be >= 1, got "
                f"{self.dominance_margin}"
            )
        lo, hi = self.data_trip_bounds
        if lo < 0 or hi < lo:
            raise ConfigurationError(
                "data_trip_bounds must satisfy 0 <= lo <= hi, got "
                f"{self.data_trip_bounds}"
            )


@dataclass(frozen=True)
class ReproConfig:
    """Root configuration threaded through devices, workloads and harness."""

    seed: int = DEFAULT_SEED
    noise: NoiseModel = field(default_factory=NoiseModel)
    #: Constant multiplier from safe point analysis (paper §3.4): the
    #: normalized profiling workload is scaled to a multiple of the number of
    #: compute units "to fully utilize the hardware".
    safe_point_multiplier: int = 1
    #: Work-group-count threshold for deactivating profiling.
    small_workload_threshold: int = SMALL_WORKLOAD_THRESHOLD
    #: Number of work-groups dispatched per eager chunk in asynchronous mode
    #: (paper §2.4: eager execution is "a series of chunks").  Expressed as a
    #: multiple of the device's compute-unit count.
    eager_chunk_units: int = 1
    #: Static kernel-pool verification level (:mod:`repro.analyze`):
    #: ``"strict"`` refuses illegal (mode, flow) launches with the full
    #: diagnostic, ``"warn"`` emits a warning and auto-demotes to the
    #: cheapest legal combination, ``"off"`` skips verification entirely
    #: (pre-verifier behaviour).
    verify: str = "warn"
    #: Fault-tolerance policy (:mod:`repro.faults`): retry/backoff caps,
    #: hang deadlines, and quarantine thresholds for the hardened runtime.
    faults: FaultPolicy = field(default_factory=FaultPolicy)
    #: Runtime tracing (:mod:`repro.obs`): when set, runtimes and engines
    #: record structured launch events (profile spans, eager chunks,
    #: selection updates, cache traffic) for export to Chrome trace JSON
    #: / text timelines.  Off by default: the disabled path costs one
    #: branch per instrumentation site.
    trace: bool = False
    #: Static cost-bound analysis settings (:mod:`repro.analyze`):
    #: dominance pruning of profiling candidates, interval widening
    #: bounds, and configured rule-severity adjustments.
    analyze: AnalyzeSettings = field(default_factory=AnalyzeSettings)

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ConfigurationError(f"seed must be >= 0, got {self.seed}")
        if self.safe_point_multiplier < 1:
            raise ConfigurationError(
                "safe_point_multiplier must be >= 1, got "
                f"{self.safe_point_multiplier}"
            )
        if self.small_workload_threshold < 0:
            raise ConfigurationError(
                "small_workload_threshold must be >= 0, got "
                f"{self.small_workload_threshold}"
            )
        if self.eager_chunk_units < 1:
            raise ConfigurationError(
                f"eager_chunk_units must be >= 1, got {self.eager_chunk_units}"
            )
        if self.verify not in ("strict", "warn", "off"):
            raise ConfigurationError(
                "verify must be one of 'strict', 'warn', 'off', got "
                f"{self.verify!r}"
            )

    def rng(self, *stream: object) -> np.random.Generator:
        """Return an independent RNG for the named stream.

        Streams are identified by arbitrary hashable labels, e.g.
        ``config.rng("noise", device_name)``.  The same labels always yield
        the same stream for a given root seed, and distinct labels yield
        statistically independent streams.
        """
        key = [self.seed] + [_stable_hash(part) for part in stream]
        return np.random.default_rng(key)

    def with_noise(self, **changes: float) -> "ReproConfig":
        """Return a copy with noise-model fields replaced."""
        return replace(self, noise=replace(self.noise, **changes))

    def without_noise(self) -> "ReproConfig":
        """Return a copy with all noise disabled (for oracle runs)."""
        return replace(
            self, noise=NoiseModel(execution_jitter=0.0, timer_quantum=1e-12)
        )


def _stable_hash(part: object) -> int:
    """Hash ``part`` to a 32-bit int, stable across processes.

    ``hash()`` on str/bytes is salted per interpreter process
    (PYTHONHASHSEED), which would make RNG streams irreproducible across
    runs; we hash the repr with blake2 instead.
    """
    digest = hashlib.blake2s(repr(part).encode("utf-8"), digest_size=4)
    return int.from_bytes(digest.digest(), "little")


#: Library-wide default configuration instance.
DEFAULT_CONFIG = ReproConfig()
