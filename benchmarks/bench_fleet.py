"""Fleet benchmark: heterogeneous scaling, work splitting, store contention.

Measures the three headline fleet claims on the simulated substrate and
writes them to ``BENCH_fleet.json``:

1. **Throughput scaling** — the same mixed spmv traffic served by mixed
   CPU+GPU fleets of 1 (one CPU), 2, 4, 8 and 16 devices.  Time is
   simulated cycles (the fleet makespan), so the curve reflects
   cost-model placement spreading load across kinds, not host threading.
   Acceptance: makespan is monotone non-increasing and the 16-device
   mixed fleet beats the single CPU by >= 3x.
2. **Work splitting** — one large launch split across the fleet
   (:meth:`LaunchScheduler.launch_split`) vs the same launch whole on
   one device; the stitched makespan (slowest part) should win.
3. **Store contention** — 64 client threads hammering lookups/publishes
   while the store checkpoints every round: the sharded store's
   dirty-only per-shard saves must spend less wall-clock than the
   single-file store's whole-map rewrites.

A traced mixed-fleet run (including a split launch) is written as a
Chrome trace to ``TRACE_fleet.json`` and every device timeline must
reconcile cleanly.

Run ``python benchmarks/bench_fleet.py --quick`` for CI-sized inputs.
Exits non-zero when an acceptance threshold is missed.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from typing import Dict, List

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.config import ReproConfig  # noqa: E402
from repro.device import make_cpu, make_gpu  # noqa: E402
from repro.obs.export import reconcile, write_chrome_trace  # noqa: E402
from repro.serve import (  # noqa: E402
    LaunchScheduler,
    SelectionStore,
    ServeRequest,
    ShardedSelectionStore,
)
from repro.workloads import spmv_csr  # noqa: E402

#: Acceptance thresholds (mirrored in EXPERIMENTS.md).
MIN_FLEET_SPEEDUP = 3.0

FLEET_SIZES = (1, 2, 4, 8, 16)
CONTENTION_CLIENTS = 64
CONTENTION_SHARDS = 32


def make_fleet(size: int, config: ReproConfig):
    """A mixed fleet: half CPUs, half GPUs (size 1 = one CPU)."""
    cpus = max(1, size // 2)
    gpus = size - cpus
    return tuple(make_cpu(config) for _ in range(cpus)) + tuple(
        make_gpu(config) for _ in range(gpus)
    )


def register_kind_pools(scheduler, size: int, config: ReproConfig):
    """Register the kind-specific spmv pools under one kernel name."""
    kinds = {"cpu"}
    if any(name.startswith("gpu") for name in scheduler.devices):
        kinds.add("gpu")
    for kind in kinds:
        for matrix_kind in ("random", "diagonal"):
            case = spmv_csr.input_dependent_case(
                kind, matrix_kind, size, config
            )
            scheduler.register_pool(case.pool, device_kind=kind)
            break  # both matrix kinds share one pool per device kind


def build_traffic(size: int, requests: int, config: ReproConfig):
    """Mixed-class spmv traffic (random + diagonal matrices)."""
    cases = [
        spmv_csr.input_dependent_case("cpu", kind, size, config)
        for kind in ("random", "diagonal")
    ]
    batch: List[ServeRequest] = []
    checks = []
    for i in range(requests):
        case = cases[i % len(cases)]
        args = case.fresh_args()
        batch.append(
            ServeRequest(
                kernel=case.pool.name,
                args=args,
                workload_units=case.workload_units,
            )
        )
        checks.append((case, args))
    return batch, checks


def serve_fleet(devices, batch, checks, config, size, clients=8, **kwargs):
    """Serve one batch on one fleet (validating every output)."""
    scheduler = LaunchScheduler(devices, **kwargs)
    register_kind_pools(scheduler, size, config)
    scheduler.serve_all(batch, clients=clients)
    for case, args in checks:
        if not case.validate(args):
            raise SystemExit(f"served output failed validation: {case.name}")
    return scheduler


def warm_store(size: int, config: ReproConfig) -> SelectionStore:
    """A store with every (device kind, matrix kind) class profiled.

    Store keys carry the device *kind*, not the fleet size, so one warm
    store serves every point on the scaling curve.  Paying the cold
    micro-profiles once up front makes the curve steady-state: it
    reflects placement and load spreading, not which fleet happened to
    profile its classes on the slowest device.
    """
    store = SelectionStore()
    scheduler = LaunchScheduler(make_fleet(2, config), store=store)
    register_kind_pools(scheduler, size, config)
    for kind in ("cpu", "gpu"):
        for matrix_kind in ("random", "diagonal"):
            case = spmv_csr.input_dependent_case(
                "cpu", matrix_kind, size, config
            )
            scheduler.launch(
                ServeRequest(
                    kernel=case.pool.name,
                    args=case.fresh_args(),
                    workload_units=case.workload_units,
                    device_kind=kind,
                )
            )
    return store


def run_scaling(size: int, requests: int, config: ReproConfig):
    """Steady-state makespan of the same traffic over growing fleets."""
    store = warm_store(size, config)
    curve = []
    for fleet_size in FLEET_SIZES:
        batch, checks = build_traffic(size, requests, config)
        scheduler = serve_fleet(
            make_fleet(fleet_size, config),
            batch,
            checks,
            config,
            size,
            clients=min(16, 2 * fleet_size),
            store=store,
        )
        curve.append(
            {
                "devices": fleet_size,
                "makespan_cycles": scheduler.makespan_cycles(),
                "placements": scheduler.stats.placements,
                "per_device_requests": scheduler.stats.per_device,
            }
        )
    return curve


def run_split(size: int, config: ReproConfig):
    """One large launch: whole on one CPU vs split across 8 devices."""
    case = spmv_csr.input_dependent_case("cpu", "random", size, config)

    whole_batch, whole_checks = build_traffic(size, 1, config)
    whole = serve_fleet(
        make_fleet(1, config),
        whole_batch,
        whole_checks,
        config,
        size,
        clients=1,
    )
    whole_cycles = whole.makespan_cycles()

    scheduler = LaunchScheduler(make_fleet(8, config))
    register_kind_pools(scheduler, size, config)
    args = case.fresh_args()
    outcome = scheduler.launch_split(
        ServeRequest(
            kernel=case.pool.name,
            args=args,
            workload_units=case.workload_units,
        ),
        parts=8,
    )
    if not case.validate(args):
        raise SystemExit("split output failed validation")
    return {
        "workload_units": case.workload_units,
        "whole_single_cpu_cycles": whole_cycles,
        "split_parts": len(outcome.parts),
        "split_ranges": list(outcome.ranges),
        "split_devices": list(outcome.devices),
        "split_stitched_cycles": outcome.elapsed_cycles,
        "split_speedup": (
            whole_cycles / outcome.elapsed_cycles
            if outcome.elapsed_cycles > 0
            else 0.0
        ),
    }


def hammer_store(store, rounds: int, checkpoint_dir: str, single_file: bool):
    """64 clients look up / publish while the store checkpoints each round.

    Returns total checkpoint (save) wall-clock seconds.  Each round the
    64 clients mostly *look up* warm classes and only republish a small
    hot set — the realistic warm-fleet shape, where the sharded store's
    dirty-only saves rewrite a handful of shard files while the
    single-file store rewrites the whole map every checkpoint.  The
    clients run concurrently with each timed save, so the numbers
    include live lock contention, not just serialization cost.
    """
    from concurrent.futures import ThreadPoolExecutor, wait

    keys = [
        f"spmv_csr|{'cpu' if i % 2 else 'gpu'}|units^2={i % 24}|client={i}"
        for i in range(CONTENTION_CLIENTS * 8)
    ]
    hot_keys = keys[:: len(keys) // 8][:8]
    for i, key in enumerate(keys):
        store.publish(
            key, kernel="spmv_csr", selected="vector",
            cycles_per_unit=1.0 + (i % 7),
        )
    target = (
        os.path.join(checkpoint_dir, "store.json")
        if single_file
        else os.path.join(checkpoint_dir, "store")
    )
    store.save(target)

    def client_round(index: int) -> None:
        for key in keys[index::CONTENTION_CLIENTS]:
            store.lookup(key)
        store.publish(
            hot_keys[index % len(hot_keys)],
            kernel="spmv_csr",
            selected="vector",
            cycles_per_unit=2.0,
        )

    save_seconds = 0.0
    with ThreadPoolExecutor(max_workers=CONTENTION_CLIENTS) as executor:
        for _ in range(rounds):
            futures = [
                executor.submit(client_round, i)
                for i in range(CONTENTION_CLIENTS)
            ]
            begin = time.perf_counter()
            store.save(target)
            save_seconds += time.perf_counter() - begin
            wait(futures)
    return save_seconds


def run_contention(rounds: int):
    """Checkpoint wall-clock: single-file store vs sharded store."""
    with tempfile.TemporaryDirectory() as tmp:
        single_seconds = hammer_store(
            SelectionStore(), rounds, tmp, single_file=True
        )
    with tempfile.TemporaryDirectory() as tmp:
        sharded = ShardedSelectionStore(shards=CONTENTION_SHARDS)
        sharded_seconds = hammer_store(
            sharded, rounds, tmp, single_file=False
        )
    return {
        "clients": CONTENTION_CLIENTS,
        "shards": CONTENTION_SHARDS,
        "checkpoint_rounds": rounds,
        "single_file_save_seconds": single_seconds,
        "sharded_save_seconds": sharded_seconds,
        "sharded_speedup": (
            single_seconds / sharded_seconds if sharded_seconds > 0 else 0.0
        ),
    }


def run_traced(size: int, config_seed: ReproConfig, trace_path: str):
    """A traced mixed-fleet run (with one split) for TRACE_fleet.json."""
    config = ReproConfig(seed=config_seed.seed, trace=True)
    batch, checks = build_traffic(size, 8, config)
    scheduler = serve_fleet(
        make_fleet(4, config), batch, checks, config, size, clients=4,
    )
    case = spmv_csr.input_dependent_case("cpu", "random", size, config)
    args = case.fresh_args()
    scheduler.launch_split(
        ServeRequest(
            kernel=case.pool.name,
            args=args,
            workload_units=case.workload_units,
        ),
        parts=4,
    )
    write_chrome_trace(scheduler.tracer.events, trace_path)
    device_problems = [
        problem
        for events in scheduler.device_traces().values()
        for problem in reconcile(events)
    ]
    placements = sum(
        1 for e in scheduler.tracer.events if e.kind.value == "placement"
    )
    splits = sum(
        1 for e in scheduler.tracer.events if e.kind.value == "split_launch"
    )
    return {
        "trace_events": len(scheduler.tracer.events),
        "placement_events": placements,
        "split_launch_events": splits,
        "device_trace_problems": device_problems,
    }


def run_benchmark(quick: bool, trace_path: str) -> Dict[str, object]:
    """Run every scenario and return the BENCH_fleet.json document."""
    config = ReproConfig()
    size = 2048 if quick else 8192
    requests = 32 if quick else 64
    rounds = 8 if quick else 24

    curve = run_scaling(size, requests, config)
    makespans = [point["makespan_cycles"] for point in curve]
    monotone = all(
        later <= earlier * 1.001  # tolerate float jitter only
        for earlier, later in zip(makespans, makespans[1:])
    )
    speedup = makespans[0] / makespans[-1] if makespans[-1] > 0 else 0.0

    split = run_split(size, config)
    contention = run_contention(rounds)
    trace = run_traced(size, config, trace_path)

    return {
        "benchmark": "fleet",
        "quick": quick,
        "workload": {
            "kernel": "spmv-csr (kind-specific pools, one signature)",
            "matrix_size": size,
            "matrix_kinds": ["random", "diagonal"],
            "requests": requests,
            "fleet_sizes": list(FLEET_SIZES),
            "fleet_mix": "half CPUs, half GPUs (size 1 = one CPU)",
        },
        "scaling": {
            "curve": curve,
            "monotone_makespan": monotone,
            "speedup_16_vs_1cpu": speedup,
        },
        "split": split,
        "contention": contention,
        "trace": trace,
        "acceptance": {
            "scaling_monotone_ok": monotone,
            "fleet_speedup_min": MIN_FLEET_SPEEDUP,
            "fleet_speedup_ok": speedup >= MIN_FLEET_SPEEDUP,
            "split_beats_whole_ok": split["split_speedup"] > 1.0,
            "sharded_save_faster_ok": contention["sharded_speedup"] > 1.0,
            "trace_reconciles_ok": not trace["device_trace_problems"],
        },
    }


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized inputs (seconds instead of minutes)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_fleet.json",
        help="where to write the results document",
    )
    parser.add_argument(
        "--trace",
        default="TRACE_fleet.json",
        help="where to write the traced mixed-fleet Chrome trace",
    )
    args = parser.parse_args(argv)

    doc = run_benchmark(quick=args.quick, trace_path=args.trace)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")

    scaling = doc["scaling"]
    contention = doc["contention"]
    split = doc["split"]
    print(f"fleet benchmark ({'quick' if args.quick else 'full'} inputs)")
    for point in scaling["curve"]:
        print(
            f"  scaling    : {point['devices']:>2} device(s) -> "
            f"{point['makespan_cycles']:.0f} cycles makespan"
        )
    print(
        f"  speedup    : {scaling['speedup_16_vs_1cpu']:.2f}x at 16 mixed "
        f"devices vs 1 CPU (monotone: {scaling['monotone_makespan']})"
    )
    print(
        f"  split      : {split['whole_single_cpu_cycles']:.0f} whole -> "
        f"{split['split_stitched_cycles']:.0f} stitched cycles "
        f"({split['split_parts']} parts, "
        f"{split['split_speedup']:.2f}x)"
    )
    print(
        f"  contention : {contention['clients']} clients, "
        f"{contention['checkpoint_rounds']} checkpoints — "
        f"{contention['single_file_save_seconds'] * 1e3:.1f} ms single "
        f"file vs {contention['sharded_save_seconds'] * 1e3:.1f} ms "
        f"sharded ({contention['sharded_speedup']:.1f}x)"
    )
    print(f"  written    : {args.output} + {args.trace}")

    acceptance = doc["acceptance"]
    ok = all(
        acceptance[key]
        for key in (
            "scaling_monotone_ok",
            "fleet_speedup_ok",
            "split_beats_whole_ok",
            "sharded_save_faster_ok",
            "trace_reconciles_ok",
        )
    )
    if not ok:
        print("  ACCEPTANCE FAILED", file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
