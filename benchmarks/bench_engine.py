"""Engine benchmark: event vs analytic vs vectorized scheduling paths.

Times the same workloads through the engine's three scheduling paths —
the per-work-group event loop, the analytic fast-batch drain, and the
numpy closed-form vectorized drain — and measures the cost-kernel memo's
warm hit rate.  All three paths are bit-identical by construction (the
equivalence suite proves it); this benchmark shows what that equivalence
buys and gates against regressions (written to ``BENCH_engine.json``):

1. **uncontended** — one 64k-work-group noise-free batch per path,
   work-groups/sec.  The vectorized path must clear ``MIN_SPEEDUP``×
   the event path (5× on full inputs, 2× on ``--quick``).
2. **contended** — a mixed-priority three-task stream with interleaved
   host polls.  Vectorized must clear 2× the event path.
3. **memo** — repeated launches of one workload class; the warm hit
   rate must be at least 95%.

The benchmark also re-asserts exact equality of the three paths'
observables on the workloads it times (a cheap in-situ slice of the
equivalence harness) and reconciles a traced runtime launch executed
with the vectorized drain forced on.

Run with ``--quick`` for CI-sized inputs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Tuple

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

import numpy as np  # noqa: E402

from repro.config import ReproConfig  # noqa: E402
from repro.core.runtime import DySelRuntime  # noqa: E402
from repro.device import (  # noqa: E402
    clear_cost_memo,
    cost_memo_stats,
    make_cpu,
)
from repro.device import engine as engine_mod  # noqa: E402
from repro.device.engine import ExecutionEngine, Priority  # noqa: E402
from repro.kernel import (  # noqa: E402
    AccessPattern,
    ArgSpec,
    KernelIR,
    KernelSignature,
    KernelSpec,
    KernelVariant,
    Loop,
    LoopBound,
    MemoryAccess,
    WorkRange,
)
from repro.kernel.buffers import Buffer  # noqa: E402
from repro.obs.export import reconcile, write_chrome_trace  # noqa: E402

#: Acceptance floors (mirrored in EXPERIMENTS.md).  The uncontended
#: floor relaxes to the contended floor on ``--quick`` inputs: small
#: batches amortize less python overhead per array op.
MIN_SPEEDUP_UNCONTENDED = 5.0
MIN_SPEEDUP_CONTENDED = 2.0
MIN_MEMO_HIT_RATE = 0.95

#: Work-group sizes per scenario.
FULL_GROUPS = 65536
QUICK_GROUPS = 8192

#: The three paths as (FAST_BATCH_THRESHOLD, VECTORIZED_BATCH) forcings.
PATHS = (
    ("event", (10**9, False)),
    ("fast", (1, False)),
    ("vectorized", (1, True)),
)

ELEMS_PER_UNIT = 8


def scale_executor(args, unit_start: int, unit_end: int) -> None:
    """y = 2x over the covered slice — cheap enough that functional
    execution does not drown the scheduling cost being measured."""
    lo = unit_start * ELEMS_PER_UNIT
    hi = unit_end * ELEMS_PER_UNIT
    args["y"].data[lo:hi] = 2.0 * args["x"].data[lo:hi]


def make_variant(name: str = "scale") -> KernelVariant:
    """One statically priced synthetic variant (memoizable costs)."""
    ir = KernelIR(
        loops=(Loop("k", LoopBound(static_trips=8)),),
        accesses=(
            MemoryAccess(
                "x",
                False,
                AccessPattern.UNIT_STRIDE,
                4.0 * ELEMS_PER_UNIT / 8,
                loop="k",
            ),
            MemoryAccess(
                "y",
                True,
                AccessPattern.UNIT_STRIDE,
                4.0 * ELEMS_PER_UNIT / 8,
                loop="k",
            ),
        ),
        flops_per_trip=float(ELEMS_PER_UNIT),
        work_group_threads=ELEMS_PER_UNIT,
    )
    return KernelVariant(
        name=name,
        ir=ir,
        executor=scale_executor,
        work_group_size=ELEMS_PER_UNIT,
    )


def make_args(units: int, config: ReproConfig) -> Dict[str, object]:
    rng = config.rng("bench-engine-args", units)
    x = rng.standard_normal(units * ELEMS_PER_UNIT).astype(np.float32)
    return {
        "x": Buffer("x", x, writable=False),
        "y": Buffer("y", np.zeros(units * ELEMS_PER_UNIT, dtype=np.float32)),
    }


class forced_path:
    """Pin the engine's path-selection constants for one measurement."""

    def __init__(self, forcing: Tuple[int, bool]) -> None:
        self.forcing = forcing

    def __enter__(self):
        self.saved = (
            engine_mod.FAST_BATCH_THRESHOLD,
            engine_mod.VECTORIZED_BATCH,
        )
        engine_mod.FAST_BATCH_THRESHOLD, engine_mod.VECTORIZED_BATCH = (
            self.forcing
        )
        return self

    def __exit__(self, *exc):
        engine_mod.FAST_BATCH_THRESHOLD, engine_mod.VECTORIZED_BATCH = (
            self.saved
        )
        return False


def snapshot(engine, tasks) -> Tuple:
    """Path-invariant observables for the in-situ equality check."""
    return (
        tuple(
            (
                task.first_start,
                task.last_end,
                task.completed_work_groups,
                None
                if task.measured is None
                else task.measured.measured_cycles,
            )
            for task in tasks
        ),
        engine.now,
        engine.utilization(),
        tuple(sorted(engine._unit_heap)),
    )


def run_uncontended(groups: int, config: ReproConfig, forcing) -> Tuple:
    """One single-task batch; returns (snapshot, elapsed seconds)."""
    with forced_path(forcing):
        variant = make_variant()
        args = make_args(groups, config)
        engine = ExecutionEngine(make_cpu(config), config)
        begin = time.perf_counter()
        task = engine.submit(
            variant, args, WorkRange(0, groups), measure=True
        )
        engine.wait(task)
        elapsed = time.perf_counter() - begin
        return snapshot(engine, [task]), elapsed


def run_contended(groups: int, config: ReproConfig, forcing) -> Tuple:
    """Mixed-priority three-task stream with interleaved host polls."""
    per_task = groups // 3
    with forced_path(forcing):
        variant = make_variant()
        engine = ExecutionEngine(make_cpu(config), config)
        begin = time.perf_counter()
        tasks: List = []
        for priority in (Priority.BATCH, Priority.PROFILING, Priority.EAGER):
            args = make_args(per_task, config)
            tasks.append(
                engine.submit(
                    variant,
                    args,
                    WorkRange(0, per_task),
                    priority=priority,
                    measure=True,
                )
            )
            engine.poll(tasks[0])
        engine.wait_all(tasks)
        engine.barrier()
        elapsed = time.perf_counter() - begin
        return snapshot(engine, tasks), elapsed


def measure_paths(scenario, groups: int, config: ReproConfig, repeats: int):
    """Best-of-``repeats`` seconds per path, with equality checking."""
    timings: Dict[str, float] = {}
    snapshots: Dict[str, Tuple] = {}
    for label, forcing in PATHS:
        best = float("inf")
        for _ in range(repeats):
            snap, elapsed = scenario(groups, config, forcing)
            best = min(best, elapsed)
        timings[label] = best
        snapshots[label] = snap
    for label in ("fast", "vectorized"):
        if snapshots[label] != snapshots["event"]:
            raise SystemExit(
                f"equivalence violated: {label} path disagrees with the "
                "event path on the benchmark workload"
            )
    return timings


def measure_memo(groups: int, config: ReproConfig, launches: int) -> Dict:
    """Warm hit rate over repeated launches of one workload class."""
    clear_cost_memo()
    variant = make_variant()
    engine = ExecutionEngine(make_cpu(config), config)
    for _ in range(launches):
        args = make_args(groups, config)
        task = engine.submit(variant, args, WorkRange(0, groups))
        engine.wait(task)
    stats = cost_memo_stats()
    total = stats["hits"] + stats["misses"]
    stats["hit_rate"] = stats["hits"] / total if total else 0.0
    stats["launches"] = launches
    clear_cost_memo()
    return stats


def traced_reconcile(trace_path: str) -> Tuple[int, List[str]]:
    """A traced runtime launch under the vectorized drain, reconciled."""
    with forced_path((1, True)):
        config = ReproConfig(trace=True)
        runtime = DySelRuntime(make_cpu(config), config)
        variant = make_variant()
        spec = KernelSpec(
            signature=KernelSignature(
                "scale", (ArgSpec("x"), ArgSpec("y", is_output=True))
            )
        )
        from repro.compiler.variants import VariantPool

        runtime.register_pool(VariantPool(spec=spec, variants=(variant,)))
        units = 512
        args = make_args(units, config)
        result = runtime.launch_kernel("scale", args, units)
        write_chrome_trace(runtime.tracer.events, trace_path)
        problems = reconcile(
            runtime.tracer.events,
            elapsed_cycles=result.elapsed_cycles,
            workload_units=units,
        )
        return len(runtime.tracer.events), problems


def run_benchmark(quick: bool, trace_path: str) -> Dict[str, object]:
    """Run all scenarios and return the BENCH_engine.json document."""
    groups = QUICK_GROUPS if quick else FULL_GROUPS
    repeats = 2 if quick else 3
    min_uncontended = (
        MIN_SPEEDUP_CONTENDED if quick else MIN_SPEEDUP_UNCONTENDED
    )
    quiet = ReproConfig().without_noise()
    noisy = ReproConfig()

    clear_cost_memo()
    uncontended = measure_paths(run_uncontended, groups, quiet, repeats)
    contended = measure_paths(run_contended, groups, noisy, repeats)
    memo = measure_memo(groups, quiet, launches=40)
    trace_events, trace_problems = traced_reconcile(trace_path)
    clear_cost_memo()

    def speedup(timings):
        return timings["event"] / timings["vectorized"]

    uncontended_speedup = speedup(uncontended)
    contended_speedup = speedup(contended)
    return {
        "benchmark": "engine",
        "quick": quick,
        "workload": {
            "work_groups": groups,
            "repeats": repeats,
            "contended_tasks": 3,
            "memo_launches": memo["launches"],
        },
        "work_groups_per_sec": {
            "uncontended": {
                label: groups / seconds
                for label, seconds in uncontended.items()
            },
            "contended": {
                label: (3 * (groups // 3)) / seconds
                for label, seconds in contended.items()
            },
        },
        "seconds": {"uncontended": uncontended, "contended": contended},
        "memo": memo,
        "trace": {"events": trace_events, "problems": trace_problems},
        "acceptance": {
            "uncontended_speedup": uncontended_speedup,
            "uncontended_speedup_min": min_uncontended,
            "uncontended_speedup_ok": uncontended_speedup >= min_uncontended,
            "contended_speedup": contended_speedup,
            "contended_speedup_min": MIN_SPEEDUP_CONTENDED,
            "contended_speedup_ok": (
                contended_speedup >= MIN_SPEEDUP_CONTENDED
            ),
            "memo_hit_rate": memo["hit_rate"],
            "memo_hit_rate_min": MIN_MEMO_HIT_RATE,
            "memo_hit_rate_ok": memo["hit_rate"] >= MIN_MEMO_HIT_RATE,
            "paths_bit_identical_ok": True,  # measure_paths aborts otherwise
            "trace_reconciles_ok": not trace_problems,
        },
    }


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized inputs (seconds instead of minutes)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_engine.json",
        help="where to write the results document",
    )
    parser.add_argument(
        "--trace",
        default="TRACE_engine.json",
        help="where to write the traced launch's Chrome trace",
    )
    args = parser.parse_args(argv)

    doc = run_benchmark(quick=args.quick, trace_path=args.trace)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")

    rates = doc["work_groups_per_sec"]
    acceptance = doc["acceptance"]
    print(f"engine benchmark ({'quick' if doc['quick'] else 'full'} inputs)")
    for scenario in ("uncontended", "contended"):
        row = rates[scenario]
        print(
            f"  {scenario:<11}: "
            + " / ".join(
                f"{label} {row[label]:,.0f} wg/s"
                for label, _ in PATHS
            )
            + f"  ({acceptance[scenario + '_speedup']:.1f}x, "
            f"floor {acceptance[scenario + '_speedup_min']:.1f}x)"
        )
    print(
        f"  memo       : {100 * acceptance['memo_hit_rate']:.1f}% warm hits "
        f"over {doc['workload']['memo_launches']} launches "
        f"(floor {100 * acceptance['memo_hit_rate_min']:.0f}%)"
    )
    print(
        f"  trace      : {args.trace} ({doc['trace']['events']} events, "
        f"{len(doc['trace']['problems'])} problem(s))"
    )
    print(f"  written    : {args.output}")

    ok = (
        acceptance["uncontended_speedup_ok"]
        and acceptance["contended_speedup_ok"]
        and acceptance["memo_hit_rate_ok"]
        and acceptance["trace_reconciles_ok"]
    )
    if not ok:
        print("  ACCEPTANCE FAILED", file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
