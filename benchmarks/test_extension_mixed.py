"""Extension: mixed execution beats the best pure version (§4.1).

The paper: "a mixed version that applies different pure versions on
different partitions of computation could potentially outperform the
'oracle' ... we consider it as the future work."  This benchmark builds
the input that realizes the potential — a half-random, half-diagonal
matrix where no single spmv kernel is best everywhere — and shows the
per-slice-profiled :class:`~repro.core.mixed.MixedPlan` beating every
pure variant on the computation itself.
"""

from repro.core.mixed import build_mixed_plan, execute_mixed
from repro.device import make_gpu
from repro.device.engine import ExecutionEngine, Priority
from repro.kernel import WorkRange
from repro.workloads import spmv_csr
from repro.workloads.matrices import banded_random_csr

from conftest import record


def run_comparison(config, quick):
    rows = 4096 if quick else 16384
    matrix = banded_random_csr(rows, 0.01, config)
    make_args = spmv_csr.make_args_factory(matrix, config)
    checker = spmv_csr.make_checker(matrix)
    units = spmv_csr.workload_units(matrix)
    pool = spmv_csr.input_dependent_case("gpu", "random", 1024, config).pool
    device = make_gpu(config)

    pure_times = {}
    for variant in pool.variants:
        engine = ExecutionEngine(device, config)
        args = make_args()
        task = engine.submit(
            variant, args, WorkRange(0, units), priority=Priority.BATCH
        )
        engine.wait(task)
        assert checker(args), variant.name
        pure_times[variant.name] = engine.now

    engine = ExecutionEngine(device, config)
    args = make_args()
    plan = build_mixed_plan(pool, engine, args, units, num_slices=8)
    plan_built_at = engine.now
    execute_mixed(plan, pool, engine, args)
    assert checker(args)
    return {
        "pure": pure_times,
        "mixed_total": engine.now,
        "mixed_compute": engine.now - plan_built_at,
        "segments": [
            (units.start, units.end, name) for units, name in plan.segments
        ],
    }


def test_mixed_execution_beats_oracle(benchmark, config, quick):
    results = benchmark.pedantic(
        lambda: run_comparison(config, quick), rounds=1, iterations=1
    )
    best_pure = min(results["pure"].values())
    print()
    for name, cycles in results["pure"].items():
        print(f"  pure {name:<8}: {cycles:>14,.0f} cycles")
    print(f"  mixed compute : {results['mixed_compute']:>14,.0f} cycles "
          f"({len(results['segments'])} segments)")
    print(f"  mixed total   : {results['mixed_total']:>14,.0f} cycles "
          "(including per-slice profiling)")
    record(
        benchmark,
        {
            "best_pure": best_pure,
            "mixed_compute": results["mixed_compute"],
            "gain_over_oracle": best_pure / results["mixed_compute"],
        },
    )
    # The plan uses both kernels (the matrix is genuinely heterogeneous)...
    variants_used = {name for _, _, name in results["segments"]}
    assert len(variants_used) == 2
    # ...and its compute phase beats the best single pure version.
    assert results["mixed_compute"] < best_pure
