"""Serving benchmark: concurrent throughput and warm-start profiling cost.

Measures the two headline serving claims on the simulated substrate and
writes them to ``BENCH_serve.json``:

1. **Concurrent throughput** — a batch of mixed spmv requests served by 8
   client threads over a 4-device fleet vs the same batch serialized
   through a single device.  Time is *simulated cycles* (the fleet
   makespan: the furthest-advanced device clock), so the speedup reflects
   the scheduler's multi-device multiplexing, not host thread scheduling.
2. **Warm persistent cache** — the same traffic replayed against a store
   saved by the cold run.  Warm serving pins the persisted winner per
   workload class, so micro-profiling cycles should all but vanish.

Run ``python benchmarks/bench_serve.py --quick`` for CI-sized inputs, or
without ``--quick`` for the calibrated sizes recorded in EXPERIMENTS.md.
Exits non-zero when an acceptance threshold (3x throughput, 90% profiling
reduction) is missed, so CI fails loudly instead of shipping a regression.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
from typing import Dict, List

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.config import ReproConfig  # noqa: E402
from repro.device import make_cpu  # noqa: E402
from repro.serve import (  # noqa: E402
    LaunchScheduler,
    SelectionStore,
    ServeRequest,
)
from repro.workloads import spmv_csr  # noqa: E402

#: Acceptance thresholds (mirrored in EXPERIMENTS.md).
MIN_SPEEDUP = 3.0
MIN_PROFILING_REDUCTION = 0.90

FLEET_DEVICES = 4
CLIENTS = 8


def build_traffic(size: int, requests: int, config: ReproConfig):
    """Mixed-class spmv traffic: half random-matrix, half diagonal.

    The two matrix kinds land in different input-aware workload classes
    (density/regularity buckets), so a correct scheduler profiles each
    class once and reuses the winner for the rest — the paper's Fig 11
    crossover replayed as serving traffic.
    """
    cases = [
        spmv_csr.input_dependent_case("cpu", kind, size, config)
        for kind in ("random", "diagonal")
    ]
    batch: List[ServeRequest] = []
    checks = []
    for i in range(requests):
        case = cases[i % len(cases)]
        args = case.fresh_args()
        batch.append(
            ServeRequest(
                kernel=case.pool.name,
                args=args,
                workload_units=case.workload_units,
            )
        )
        checks.append((case, args))
    return cases, batch, checks


def serve(cases, batch, checks, devices: int, clients: int, store=None):
    """Serve one batch and return the scheduler (validating every output)."""
    fleet = tuple(make_cpu() for _ in range(devices))
    scheduler = LaunchScheduler(fleet, store=store)
    # Both matrix kinds share one kernel signature; register its pool
    # once (a second registration is a replacement and would — correctly
    # — invalidate the warm store).
    registered = set()
    for case in cases:
        if case.pool.name not in registered:
            scheduler.register_pool(case.pool)
            registered.add(case.pool.name)
    scheduler.serve_all(batch, clients=clients)
    for case, args in checks:
        if not case.validate(args):
            raise SystemExit(f"served output failed validation: {case.name}")
    return scheduler


def run_benchmark(quick: bool) -> Dict[str, object]:
    """Run both scenarios and return the BENCH_serve.json document."""
    config = ReproConfig()
    size = 2048 if quick else 8192
    requests = 32 if quick else 64

    # Scenario 1: serialized single device vs concurrent fleet.
    cases, batch, checks = build_traffic(size, requests, config)
    serial = serve(cases, batch, checks, devices=1, clients=1)
    serial_cycles = serial.makespan_cycles()

    cases, batch, checks = build_traffic(size, requests, config)
    fleet = serve(cases, batch, checks, devices=FLEET_DEVICES, clients=CLIENTS)
    fleet_cycles = fleet.makespan_cycles()
    speedup = serial_cycles / fleet_cycles if fleet_cycles > 0 else 0.0

    # Scenario 2: cold store vs a warm store persisted by the cold run.
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "selections.json")
        fleet.store.save(path)
        cases, batch, checks = build_traffic(size, requests, config)
        warm = serve(
            cases,
            batch,
            checks,
            devices=FLEET_DEVICES,
            clients=CLIENTS,
            store=SelectionStore.load(path),
        )

    cold_profile_cycles = fleet.stats.profiling_latency_cycles
    warm_profile_cycles = warm.stats.profiling_latency_cycles
    reduction = (
        1.0 - warm_profile_cycles / cold_profile_cycles
        if cold_profile_cycles > 0
        else 0.0
    )

    return {
        "benchmark": "serve",
        "quick": quick,
        "workload": {
            "kernel": "spmv-csr (scalar/vector x DFO/BFO)",
            "matrix_size": size,
            "matrix_kinds": ["random", "diagonal"],
            "requests": requests,
            "workload_classes": len(fleet.store),
        },
        "throughput": {
            "serialized_devices": 1,
            "serialized_clients": 1,
            "serialized_cycles": serial_cycles,
            "fleet_devices": FLEET_DEVICES,
            "fleet_clients": CLIENTS,
            "fleet_makespan_cycles": fleet_cycles,
            "speedup": speedup,
            "per_device_requests": fleet.stats.per_device,
        },
        "warm_cache": {
            "cold_profiled_launches": fleet.stats.profiled_launches,
            "warm_profiled_launches": warm.stats.profiled_launches,
            "cold_profiling_cycles": cold_profile_cycles,
            "warm_profiling_cycles": warm_profile_cycles,
            "profiling_cycle_reduction": reduction,
            "cold_store_hits": fleet.stats.store_hits,
            "warm_store_hits": warm.stats.store_hits,
            "warm_profile_rate": warm.stats.profile_rate,
        },
        "acceptance": {
            "throughput_speedup_min": MIN_SPEEDUP,
            "throughput_speedup_ok": speedup >= MIN_SPEEDUP,
            "profiling_reduction_min": MIN_PROFILING_REDUCTION,
            "profiling_reduction_ok": reduction >= MIN_PROFILING_REDUCTION,
        },
    }


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized inputs (seconds instead of minutes)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_serve.json",
        help="where to write the results document",
    )
    args = parser.parse_args(argv)

    doc = run_benchmark(quick=args.quick)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")

    throughput = doc["throughput"]
    warm = doc["warm_cache"]
    print(f"serve benchmark ({'quick' if args.quick else 'full'} inputs)")
    print(
        f"  throughput : {throughput['serialized_cycles']:.0f} cycles "
        f"serialized -> {throughput['fleet_makespan_cycles']:.0f} fleet "
        f"makespan = {throughput['speedup']:.2f}x "
        f"({throughput['fleet_clients']} clients, "
        f"{throughput['fleet_devices']} devices)"
    )
    print(
        f"  warm cache : profiling {warm['cold_profiling_cycles']:.0f} -> "
        f"{warm['warm_profiling_cycles']:.0f} cycles "
        f"({100 * warm['profiling_cycle_reduction']:.1f}% reduction, "
        f"{warm['warm_store_hits']} store hits)"
    )
    print(f"  written    : {args.output}")

    acceptance = doc["acceptance"]
    ok = (
        acceptance["throughput_speedup_ok"]
        and acceptance["profiling_reduction_ok"]
    )
    if not ok:
        print("  ACCEPTANCE FAILED", file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
