"""Benchmark: regenerate the §5.1/§5.2 overhead and accuracy studies."""

from repro.harness.experiments import overhead

from conftest import record


def test_overhead_study(benchmark, config, quick):
    result = benchmark.pedantic(
        lambda: overhead.run(config, quick), rounds=1, iterations=1
    )
    print()
    print(result.text)
    sync_async = result.data["sync_vs_async"]
    record(
        benchmark,
        {
            "sgemm.sync_overhead": sync_async["cpu_sync_overhead"],
            "sgemm.async_overhead": sync_async["cpu_async_overhead"],
            "gpu_eager_chunks": result.data["gpu_eager_dispatch"][
                "gpu_eager_chunks"
            ],
            "cpu_eager_chunks": result.data["gpu_eager_dispatch"][
                "cpu_eager_chunks"
            ],
            "selection_accuracy": result.data["selection_accuracy"][
                "accuracy"
            ],
        },
    )
    # §5.1: sync pays for the slowest candidate; async no worse.
    assert sync_async["cpu_async_overhead"] <= sync_async["cpu_sync_overhead"] + 0.02
    # §5.1: the GPU's host query latency suppresses eager dispatch
    # relative to the CPU.
    eager = result.data["gpu_eager_dispatch"]
    assert eager["gpu_eager_chunks"] <= eager["cpu_eager_chunks"]
    # §5.2: per-iteration profiling is strictly more expensive than
    # profile-once, and profile-once overhead is small.
    per_it = result.data["per_iteration"]
    for label in ("cpu/spmv-csr (random)", "gpu/spmv-csr (random)", "cpu/stencil"):
        once = per_it[f"{label}: profile-once overhead"]
        every = per_it[f"{label}: profile-every-iteration overhead"]
        assert every > once
        assert once < 0.25, label
    # §5.2: selection accuracy high but not necessarily perfect (95% case).
    assert result.data["selection_accuracy"]["accuracy"] >= 0.8
