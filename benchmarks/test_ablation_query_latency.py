"""Ablation: host query latency vs eager dispatch on GPU (paper §5.1).

"Querying the status often takes a longer latency than profiling time.
Therefore, it can only have few or even zero eager dispatches."  Sweeps
the simulated host query latency and counts eager chunks.
"""

import dataclasses

from repro.device.gpu import GpuDevice, make_gpu
from repro.harness.runner import run_dysel
from repro.modes import OrchestrationFlow
from repro.workloads import spmv_csr

from conftest import record

LATENCIES = (100.0, 1000.0, 5000.0, 20000.0)


def gpu_with_latency(config, latency):
    base = make_gpu(config)
    spec = dataclasses.replace(base.spec, host_query_latency=latency)
    return GpuDevice(spec, base.memory, config)


def run_sweep(config, quick):
    size = 2048 if quick else 8192
    results = {}
    for latency in LATENCIES:
        device = gpu_with_latency(config, latency)
        case = spmv_csr.input_dependent_case("gpu", "random", size, config)
        run = run_dysel(case, device, flow=OrchestrationFlow.ASYNC, config=config)
        results[latency] = run.eager_chunks
    return results


def test_query_latency_vs_eager_dispatch(benchmark, config, quick):
    results = benchmark.pedantic(
        lambda: run_sweep(config, quick), rounds=1, iterations=1
    )
    print()
    for latency, chunks in results.items():
        print(f"  query latency {latency:>8.0f} cycles: {chunks} eager chunks")
        record(benchmark, {f"lat{int(latency)}.chunks": float(chunks)})
    # Faster queries allow (weakly) more eager dispatch; at K20c-like
    # latency the count collapses toward zero — the §5.1 observation.
    assert results[100.0] >= results[20000.0]
    assert results[20000.0] <= 2
