"""Prediction benchmark: zero-profile serving of unseen workload classes.

Trains the selection predictor by serving spmv-csr traffic over a grid
of (matrix size x matrix kind) workload classes — every class pays its
one micro-profile and the measured winner becomes training history —
then serves *held-out* classes the store has never seen:

1. **predicted** — the trained, predict-armed store: held-out classes
   are served by the decision tree (``"predicted selection"``), paying
   zero micro-profiles when the model is confident.
2. **baseline**  — the identical held-out traffic on a cold store with
   prediction off: every class pays its cold-start micro-profile (the
   same cold path ``BENCH_serve.json`` measures).
3. **oracle**    — each held-out class profiled directly under a
   noise-free config: the ground-truth winner the prediction is graded
   against.

Acceptance (written to ``BENCH_predict.json``): at least 60% of the
baseline's cold-start profiling cycles must be eliminated on the
held-out classes, prediction accuracy against the noise-free oracle is
reported, and the predicted run's serve trace must reconcile cleanly
(``python -m repro.obs reconcile``; the Chrome trace is written next to
the JSON for exactly that).

Run with ``--quick`` for CI-sized inputs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Tuple

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.config import ReproConfig  # noqa: E402
from repro.core.runtime import DySelRuntime  # noqa: E402
from repro.device import make_cpu  # noqa: E402
from repro.obs.export import reconcile, write_chrome_trace  # noqa: E402
from repro.predict import PredictConfig  # noqa: E402
from repro.serve import (  # noqa: E402
    LaunchScheduler,
    SelectionStore,
    ServeRequest,
)
from repro.serve.signature import derive_signature  # noqa: E402
from repro.workloads import spmv_csr  # noqa: E402

#: Acceptance thresholds (mirrored in EXPERIMENTS.md).
MIN_PROFILE_ELIMINATION = 0.60

MATRIX_KINDS = ("random", "diagonal")


def build_requests(
    sizes, config: ReproConfig
) -> Tuple[list, List[ServeRequest], list]:
    """One request per (size, kind) workload class, plus output checks."""
    cases, batch, checks = [], [], []
    for size in sizes:
        for kind in MATRIX_KINDS:
            case = spmv_csr.input_dependent_case("cpu", kind, size, config)
            args = case.fresh_args()
            cases.append(case)
            batch.append(
                ServeRequest(
                    kernel=case.pool.name,
                    args=args,
                    workload_units=case.workload_units,
                )
            )
            checks.append((case, args))
    return cases, batch, checks


def serve(cases, batch, checks, store, config) -> LaunchScheduler:
    """Serve the batch serially on one device; validate every output."""
    scheduler = LaunchScheduler(
        (make_cpu(config),), config=config, store=store
    )
    scheduler.register_pool(cases[0].pool)
    for request in batch:
        scheduler.launch(request)
    for case, args in checks:
        if not case.validate(args):
            raise SystemExit(f"served output failed validation: {case.name}")
    return scheduler


def oracle_winners(sizes, config: ReproConfig) -> Dict[str, str]:
    """Noise-free ground truth: the measured winner per held-out class,
    keyed by ``{size}:{kind}``."""
    quiet = config.without_noise()
    winners: Dict[str, str] = {}
    for size in sizes:
        for kind in MATRIX_KINDS:
            case = spmv_csr.input_dependent_case("cpu", kind, size, quiet)
            runtime = DySelRuntime(make_cpu(quiet), quiet)
            runtime.register_pool(case.pool)
            result = runtime.launch_kernel(
                case.pool.name,
                case.fresh_args(),
                case.workload_units,
            )
            winners[f"{size}:{kind}"] = result.selected
    return winners


def run_benchmark(quick: bool, trace_path: str) -> Dict[str, object]:
    """Run all three scenarios and return the BENCH_predict.json doc."""
    config = ReproConfig()
    train_sizes = (1024, 2048, 8192) if quick else (1024, 2048, 8192, 16384)
    held_out_sizes = (4096,)
    predict = PredictConfig(
        min_examples=len(train_sizes) * len(MATRIX_KINDS),
        confidence_threshold=0.6,
    )

    # Phase 1: train by serving — every training class micro-profiles
    # once and its measured winner becomes predictor history.
    traced = ReproConfig(trace=True)
    store = SelectionStore(predict=predict)
    cases, batch, checks = build_requests(train_sizes, traced)
    train_run = serve(cases, batch, checks, store, traced)

    # Phase 2: the held-out classes must be genuinely unseen.
    cases, batch, checks = build_requests(held_out_sizes, traced)
    held_out_keys = []
    for request in batch:
        key = derive_signature(
            request.kernel, "cpu", request.args, request.workload_units
        ).key
        if store.peek(key) is not None:
            raise SystemExit(f"held-out class already in store: {key}")
        held_out_keys.append(key)
    predicted_run = serve(cases, batch, checks, store, traced)
    predicted_profiles = predicted_run.stats.profiled_launches
    predicted_cycles = predicted_run.stats.profiling_latency_cycles
    predicted_entries = {
        key: store.peek(key) for key in held_out_keys
    }
    write_chrome_trace(predicted_run.tracer.events, trace_path)
    trace_problems = reconcile(predicted_run.tracer.events)
    device_problems = [
        problem
        for events in predicted_run.device_traces().values()
        for problem in reconcile(events)
    ]

    # Phase 3: the baseline — identical held-out traffic, cold store,
    # prediction off: the cold-start cost prediction is claiming back.
    cases, batch, checks = build_requests(held_out_sizes, config)
    baseline_run = serve(cases, batch, checks, SelectionStore(), config)
    baseline_profiles = baseline_run.stats.profiled_launches
    baseline_cycles = baseline_run.stats.profiling_latency_cycles

    # Phase 4: grade against the noise-free oracle.  ``held_out_keys``
    # follows the same (size, kind) iteration order as the oracle map.
    winners = oracle_winners(held_out_sizes, config)
    class_ids = [
        f"{size}:{kind}"
        for size in held_out_sizes
        for kind in MATRIX_KINDS
    ]
    graded = []
    for key, class_id in zip(held_out_keys, class_ids):
        entry = predicted_entries[key]
        oracle = winners[class_id]
        graded.append(
            {
                "workload_class": key,
                "held_out": class_id,
                "predicted": entry.selected if entry else None,
                "was_predicted": bool(entry and entry.predicted),
                "oracle": oracle,
                "correct": bool(entry and entry.selected == oracle),
            }
        )
    accuracy = (
        sum(g["correct"] for g in graded) / len(graded) if graded else 0.0
    )
    elimination = (
        1.0 - predicted_cycles / baseline_cycles
        if baseline_cycles > 0
        else 0.0
    )

    return {
        "benchmark": "predict",
        "quick": quick,
        "workload": {
            "kernel": cases[0].pool.name,
            "matrix_kinds": list(MATRIX_KINDS),
            "train_sizes": list(train_sizes),
            "held_out_sizes": list(held_out_sizes),
            "train_classes": len(train_sizes) * len(MATRIX_KINDS),
            "held_out_classes": len(held_out_keys),
            "predict_config": {
                "confidence_threshold": predict.confidence_threshold,
                "min_examples": predict.min_examples,
                "max_depth": predict.max_depth,
            },
        },
        "train_run": {
            "profiled_launches": train_run.stats.profiled_launches,
            "profiling_cycles": train_run.stats.profiling_latency_cycles,
            "prediction_fallbacks": train_run.stats.prediction_fallbacks,
        },
        "predicted_run": {
            "profiled_launches": predicted_profiles,
            "profiling_cycles": predicted_cycles,
            "predicted_launches": predicted_run.stats.predicted_launches,
            "trace_events": len(predicted_run.tracer.events),
            "trace_problems": trace_problems,
            "device_trace_problems": device_problems,
        },
        "baseline_run": {
            "profiled_launches": baseline_profiles,
            "profiling_cycles": baseline_cycles,
        },
        "held_out": graded,
        "acceptance": {
            "profile_elimination": elimination,
            "profile_elimination_min": MIN_PROFILE_ELIMINATION,
            "profile_elimination_ok": (
                elimination >= MIN_PROFILE_ELIMINATION
            ),
            "oracle_accuracy": accuracy,
            "all_held_out_predicted_ok": all(
                g["was_predicted"] for g in graded
            ),
            "trace_reconciles_ok": (
                not trace_problems and not device_problems
            ),
        },
    }


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized inputs (seconds instead of minutes)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_predict.json",
        help="where to write the results document",
    )
    parser.add_argument(
        "--trace",
        default="TRACE_predict.json",
        help="where to write the predicted run's Chrome trace",
    )
    args = parser.parse_args(argv)

    doc = run_benchmark(quick=args.quick, trace_path=args.trace)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")

    acceptance = doc["acceptance"]
    predicted = doc["predicted_run"]
    baseline = doc["baseline_run"]
    print(f"predict benchmark ({'quick' if doc['quick'] else 'full'} inputs)")
    print(
        f"  cold-start : baseline {baseline['profiled_launches']} "
        f"profile(s), {baseline['profiling_cycles']:.0f} cycles; "
        f"predicted {predicted['profiled_launches']} profile(s), "
        f"{predicted['profiling_cycles']:.0f} cycles"
    )
    print(
        f"  eliminated : {100 * acceptance['profile_elimination']:.1f}% "
        f"of cold-start profiling cycles "
        f"({predicted['predicted_launches']} predicted launch(es))"
    )
    print(
        f"  accuracy   : {100 * acceptance['oracle_accuracy']:.1f}% vs "
        "the noise-free oracle"
    )
    for grade in doc["held_out"]:
        marker = "ok" if grade["correct"] else "MISS"
        print(
            f"  held-out   : {grade['held_out']} -> "
            f"{grade['predicted']} (oracle {grade['oracle']}) [{marker}]"
        )
    print(f"  trace      : {args.trace} ({predicted['trace_events']} events)")
    print(f"  written    : {args.output}")

    ok = (
        acceptance["profile_elimination_ok"]
        and acceptance["all_held_out_predicted_ok"]
        and acceptance["trace_reconciles_ok"]
    )
    if not ok:
        print("  ACCEPTANCE FAILED", file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
