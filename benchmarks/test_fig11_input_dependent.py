"""Benchmark: regenerate Figure 11 (input-dependent selection, Case IV)."""

from repro.harness.experiments import fig11

from conftest import record


def test_fig11_cpu(benchmark, config, quick):
    result = benchmark.pedantic(
        lambda: fig11.run_device("cpu", config, quick), rounds=1, iterations=1
    )
    print()
    print(result.text)
    for group, info in result.data.items():
        record(benchmark, {
            f"{group}.sync": info["series"]["Sync"],
            f"{group}.worst": info["series"]["Worst"],
            f"{group}.selected": info["dysel_selected"],
        })
        assert info["all_valid"], group
        assert info["series"]["Sync"] < 1.05, group
        assert info["dysel_selected"] == info["oracle_variant"], group
    # Paper: scalar+DFO wins random, scalar+BFO wins diagonal; the wrong
    # choice costs 2.98x / 8.63x.
    assert result.data["random matrix"]["oracle_variant"] == "scalar,DFO"
    assert result.data["diagonal matrix"]["oracle_variant"] == "scalar,BFO"
    assert result.data["random matrix"]["series"]["Worst"] > 2.0
    assert result.data["diagonal matrix"]["series"]["Worst"] > 5.0


def test_fig11_gpu(benchmark, config, quick):
    result = benchmark.pedantic(
        lambda: fig11.run_device("gpu", config, quick), rounds=1, iterations=1
    )
    print()
    print(result.text)
    for group, info in result.data.items():
        record(benchmark, {
            f"{group}.sync": info["series"]["Sync"],
            f"{group}.worst": info["series"]["Worst"],
            f"{group}.selected": info["dysel_selected"],
        })
        assert info["all_valid"], group
        assert info["series"]["Sync"] < 1.05, group
        assert info["dysel_selected"] == info["oracle_variant"], group
    # Paper: vector wins random (scalar 4.73x off), scalar wins diagonal
    # (vector 22.73x off).
    assert result.data["random matrix"]["oracle_variant"] == "vector"
    assert result.data["diagonal matrix"]["oracle_variant"] == "scalar"
    assert result.data["random matrix"]["series"]["Worst"] > 2.0
    assert result.data["diagonal matrix"]["series"]["Worst"] > 5.0
