"""Ablation: the safe-point multiplier (paper §3.4's "fill the hardware").

Sweeps the constant that scales the normalized profiling slice.  Larger
slices cost more profiling time but average over more data; the paper
notes increasing executions per kernel improves accuracy "at the expense
of additional profiling overhead".
"""

import dataclasses

from repro.device import make_cpu
from repro.harness.runner import evaluate_case
from repro.workloads import spmv_csr

from conftest import record

MULTIPLIERS = (1, 2, 4)


def run_sweep(config, quick):
    size = 8192 if quick else 16384
    results = {}
    for multiplier in MULTIPLIERS:
        swept = dataclasses.replace(config, safe_point_multiplier=multiplier)
        case = spmv_csr.input_dependent_case(
            "cpu", "random", size, swept, iterations=10
        )
        evaluation = evaluate_case(
            case, make_cpu(swept), swept, dysel_flows=("sync",)
        )
        results[multiplier] = {
            "overhead": evaluation.relative(evaluation.dysel["sync"]) - 1.0,
            "selected": evaluation.dysel["sync"].selected,
            "oracle": evaluation.oracle.selected,
        }
    return results


def test_safe_point_multiplier(benchmark, config, quick):
    results = benchmark.pedantic(
        lambda: run_sweep(config, quick), rounds=1, iterations=1
    )
    print()
    for multiplier, info in results.items():
        print(
            f"  multiplier {multiplier}: overhead {info['overhead']*100:.2f}% "
            f"selected {info['selected']!r}"
        )
        record(benchmark, {f"x{multiplier}.overhead": info["overhead"]})
    # Overhead grows with the multiplier...
    assert results[4]["overhead"] > results[1]["overhead"]
    # ...while selection stays correct throughout this (easy) workload.
    for info in results.values():
        assert info["selected"] == info["oracle"]
