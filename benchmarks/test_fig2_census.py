"""Benchmark: regenerate Figure 2 (kernel-launch census)."""

from repro.harness.experiments import fig2

from conftest import record


def test_fig2(benchmark, config, quick):
    result = benchmark.pedantic(
        lambda: fig2.run(config, quick), rounds=1, iterations=1
    )
    print()
    print(result.text)
    counts = result.data["counts"]
    record(
        benchmark,
        {
            "total_invocations": float(sum(counts.values())),
            "dropped_small": float(result.data["dropped_small_launches"]),
            "populated_buckets": float(
                sum(1 for v in counts.values() if v > 0)
            ),
        },
    )
    # Paper shape: significant mass across 128..32768; small launches rare.
    assert sum(counts.values()) > 1000
    assert result.data["dropped_small_launches"] < 0.1 * sum(counts.values())
