"""Ablation: measurement noise vs selection accuracy (paper §5.2).

"Profiling accuracy can be a problem when the unit of workload is small
... the dynamic selection accuracy is 95%."  Sweeps execution jitter and
measures how often DySel still picks the true best variant across
reseeded runs, on a pool whose candidates are deliberately close.
"""

import dataclasses

from repro.core import DySelRuntime
from repro.compiler.variants import VariantPool
from repro.device import make_cpu
from repro.kernel import AccessPattern

from conftest import record
from tests.conftest import (
    axpy_signature,
    make_axpy_args,
    make_axpy_variant,
)
from repro.kernel.kernel import KernelSpec

JITTERS = (0.0, 0.05, 0.15)


def close_pool():
    """Two variants ~6% apart: noise can plausibly flip the ranking."""
    return VariantPool(
        spec=KernelSpec(signature=axpy_signature()),
        variants=(
            make_axpy_variant("best", flops_per_trip=64.0),
            make_axpy_variant("close", flops_per_trip=68.0),
        ),
    )


def accuracy_at(jitter, config, trials):
    correct = 0
    for trial in range(trials):
        trial_config = dataclasses.replace(
            config.with_noise(execution_jitter=jitter), seed=config.seed + trial
        )
        runtime = DySelRuntime(make_cpu(trial_config), trial_config)
        runtime.register_pool(close_pool())
        args = make_axpy_args(512, trial_config)
        result = runtime.launch_kernel("axpy", args, 512)
        correct += int(result.selected == "best")
    return correct / trials


def run_sweep(config, quick):
    trials = 10 if quick else 40
    return {jitter: accuracy_at(jitter, config, trials) for jitter in JITTERS}


def test_noise_vs_accuracy(benchmark, config, quick):
    results = benchmark.pedantic(
        lambda: run_sweep(config, quick), rounds=1, iterations=1
    )
    print()
    for jitter, accuracy in results.items():
        print(f"  jitter {jitter:.2f}: accuracy {accuracy*100:.0f}%")
        record(benchmark, {f"jitter{jitter}.accuracy": accuracy})
    # Noise-free profiling is exact; accuracy degrades (weakly) with noise.
    assert results[0.0] == 1.0
    assert results[0.15] <= results[0.0]
