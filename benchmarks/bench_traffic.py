"""Traffic benchmark: QoS backpressure under a bursty three-tenant mix.

Generates seeded multi-tenant storms — an interactive tenant (priority
0, Poisson arrivals, small fixed-size kmeans requests, a deadline
budget), a bursty batch tenant (MMPP arrivals, heavy-tailed Pareto
sizes over histogram/cutcp/spmv-csr classes that all pay real
micro-profiles when cold), and a background tenant (low-rate Poisson,
lognormal sizes over cheap jds/stencil classes) — and serves each storm
twice through an overloaded single-slot fleet (4 closed-loop clients
against ``max_inflight=1``):

1. **Backpressure off** — admission control runs (priorities, fair
   share, EDF) but the defer watermark sits above any reachable
   pressure, so every cold class pays its micro-profile mid-storm and
   the interactive tenant's tail inflates behind profile slices.
2. **Backpressure on** — the zero defer watermark pins the controller
   in deferring mode (the documented "always on" arm), so cold classes
   run their pool default and the store converges after the storm, when
   a pressure-free serial drain re-serves one request per class.

The profiling regime is deliberately heavy (``safe_point_multiplier``
of 16, paper §3.4: profile slices scaled to fully utilize the device),
which is exactly when deferral matters.  The mix omits the two catalog
workloads that cannot show the effect: particle-filter (a fixed ~23M
cycle launch that dwarfs every other service time in both arms) and
sgemm (its replay case sits under the small-workload threshold, so it
never profiles and only adds identical productive weight to both arms).

Acceptance (mirrored in EXPERIMENTS.md): the interactive tenant's p99
latency with backpressure must be <= 0.7x the no-backpressure arm, it
must miss zero deadlines in the backpressure arm, and the drained store
must be *identical* to a warm oracle built by a pressure-free serial
replay — deferral may postpone selections but never change them.

Run ``python benchmarks/bench_traffic.py --quick`` for one storm (CI);
the full run aggregates five independently-seeded storms.  Writes
``BENCH_traffic.json`` plus a Chrome trace of the first storm's
backpressure arm (``TRACE_traffic.json``); exits non-zero on any
acceptance miss.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import replace
from typing import Dict, List, Tuple

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.config import ReproConfig  # noqa: E402
from repro.device import make_cpu  # noqa: E402
from repro.obs.export import reconcile, write_chrome_trace  # noqa: E402
from repro.serve import (  # noqa: E402
    LaunchScheduler,
    QoSConfig,
    SelectionStore,
    ServeRequest,
    TenantSpec,
)
from repro.traffic import (  # noqa: E402
    BurstyArrivals,
    FixedSizes,
    LognormalSizes,
    ParetoSizes,
    PoissonArrivals,
    TenantProfile,
    TrafficGenerator,
    TrafficReplayer,
    TrafficSchedule,
)

#: Acceptance threshold (mirrored in EXPERIMENTS.md).
MAX_P99_RATIO = 0.70

SEED = 1716
QUICK_STORMS = 1
FULL_STORMS = 5
HORIZON = 3.0

FLEET_DEVICES = 1
STREAMS_PER_DEVICE = 1
CLIENTS = 4

#: Heavy profiling regime: slices scaled 16x past first device fill.
SAFE_POINT_MULTIPLIER = 16

#: Interactive latency budget, in fleet cycles.  The backpressure arm's
#: worst observed sojourn (waiting out one cold histogram launch) is
#: ~6.8M cycles; the no-backpressure arm's tail — the same launch plus
#: its mid-storm profile slices — lands past 14M and misses.
DEADLINE_CYCLES = 1.0e7


def tenant_mix() -> Tuple[TenantProfile, ...]:
    """The three-tenant mix (see module docstring for workload choices)."""
    return (
        TenantProfile(
            "interactive",
            PoissonArrivals(rate=10.0),
            FixedSizes(256),
            workloads=("kmeans",),
            priority=0,
            deadline_cycles=DEADLINE_CYCLES,
        ),
        TenantProfile(
            "batch",
            BurstyArrivals(burst_rate=16.0, mean_burst=1.0, mean_gap=1.5),
            ParetoSizes(1.1, min_units=512, max_units=2048),
            workloads=(
                "histogram",
                "cutcp",
                "spmv-csr/random",
                "spmv-csr/diagonal",
            ),
            weights=(0.3, 0.3, 0.2, 0.2),
            priority=1,
        ),
        TenantProfile(
            "background",
            PoissonArrivals(rate=3.0),
            LognormalSizes(
                median=1024, sigma=1.0, min_units=512, max_units=2048
            ),
            workloads=("spmv-jds", "spmv-jds/schedule", "stencil"),
            priority=2,
        ),
    )


def qos_for(tenants, backpressure: bool) -> QoSConfig:
    """One arm's QoS config; only the defer watermark differs.

    A single admission slot serializes service, so a request's sojourn
    is bounded by the launch ahead of it — the arms then differ exactly
    by mid-storm profile slices.  The queue bound exceeds the client
    count, so neither arm sheds load: the comparison isolates profiling
    backpressure, not admission rejections.
    """
    return QoSConfig(
        tenants=tuple(
            TenantSpec(
                t.name,
                priority=t.priority,
                weight=t.weight,
                deadline_cycles=t.deadline_cycles,
            )
            for t in tenants
        ),
        max_queue_depth=16,
        max_inflight=1,
        defer_watermark=0.0 if backpressure else 16.0,
        resume_watermark=0.0,
    )


def serve_arm(
    schedule: TrafficSchedule,
    config: ReproConfig,
    qos: QoSConfig,
) -> Tuple[LaunchScheduler, TrafficReplayer]:
    """Replay the schedule through a fresh fleet under one QoS arm."""
    replayer = TrafficReplayer(config)
    requests = replayer.serve_requests(schedule)
    scheduler = LaunchScheduler(
        tuple(make_cpu(config) for _ in range(FLEET_DEVICES)),
        config=config,
        streams_per_device=STREAMS_PER_DEVICE,
        qos=qos,
    )
    for pool in replayer.pools(schedule).values():
        scheduler.register_pool(pool)
    scheduler.serve_all(requests, clients=CLIENTS)
    return scheduler, replayer


def drain_selections(
    schedule: TrafficSchedule,
    replayer: TrafficReplayer,
    config: ReproConfig,
    store: SelectionStore,
) -> Dict[str, str]:
    """Serially serve one request per workload class, then dump the store.

    Run against the backpressure arm's store this is the "pressure
    cleared" phase that converges deferred classes; run against a fresh
    store it builds the warm oracle the drained store must match.
    """
    scheduler = LaunchScheduler(
        (make_cpu(config),), config=config, store=store
    )
    for pool in replayer.pools(schedule).values():
        scheduler.register_pool(pool)
    for workload, units in dict.fromkeys(
        (r.workload, r.units) for r in schedule.requests
    ):
        case = replayer.case_for(workload, units)
        scheduler.launch(
            ServeRequest(
                kernel=case.pool.name,
                args=case.fresh_args(),
                workload_units=case.workload_units,
            )
        )
    return {key: store.lookup(key).selected for key in store.keys()}


def percentile(latencies: List[float], q: float) -> float:
    """Linear-interpolated percentile over raw samples."""
    if not latencies:
        return 0.0
    data = sorted(latencies)
    pos = (len(data) - 1) * q / 100.0
    lo = int(pos)
    hi = min(lo + 1, len(data) - 1)
    frac = pos - lo
    return data[lo] * (1.0 - frac) + data[hi] * frac


def tenant_report(latencies, misses, deferred) -> Dict[str, float]:
    """One tenant-arm's aggregate latency and QoS figures."""
    return {
        "requests": len(latencies),
        "p50_cycles": percentile(latencies, 50.0),
        "p99_cycles": percentile(latencies, 99.0),
        "p999_cycles": percentile(latencies, 99.9),
        "max_cycles": max(latencies, default=0.0),
        "deadline_misses": misses,
        "profiles_deferred": deferred,
    }


def run_benchmark(quick: bool, trace_path: str) -> Dict[str, object]:
    """Run every storm through both arms; return the BENCH document."""
    config = ReproConfig(safe_point_multiplier=SAFE_POINT_MULTIPLIER)
    tenants = tenant_mix()
    storms = QUICK_STORMS if quick else FULL_STORMS

    latencies: Dict[Tuple[str, str], List[float]] = {}
    misses: Dict[Tuple[str, str], int] = {}
    deferred: Dict[Tuple[str, str], int] = {}
    storm_rows = []
    selections_match = True
    trace_defects: List[object] = []
    trace_events = 0

    for storm in range(storms):
        seed = SEED + storm
        schedule = TrafficGenerator(
            tenants, seed=seed, horizon=HORIZON
        ).generate()

        off, _ = serve_arm(
            schedule, config, qos_for(tenants, backpressure=False)
        )
        on_config = (
            replace(config, trace=True) if storm == 0 else config
        )
        on, on_replayer = serve_arm(
            schedule, on_config, qos_for(tenants, backpressure=True)
        )
        if storm == 0:
            events = on.tracer.events
            write_chrome_trace(events, trace_path)
            trace_defects = reconcile(events)
            trace_events = len(events)

        drained = drain_selections(
            schedule, on_replayer, config, on.store
        )
        oracle = drain_selections(
            schedule, TrafficReplayer(config), config, SelectionStore()
        )
        selections_match = selections_match and drained == oracle

        for arm, scheduler in (("off", off), ("on", on)):
            for name, stats in scheduler.stats.tenants.items():
                key = (arm, name)
                latencies.setdefault(key, []).extend(stats.latencies)
                misses[key] = misses.get(key, 0) + stats.deadline_misses
                deferred[key] = (
                    deferred.get(key, 0) + stats.profiles_deferred
                )
        storm_rows.append(
            {
                "seed": seed,
                "requests": schedule.count(),
                "per_tenant": {
                    t: schedule.count(t) for t in schedule.tenants()
                },
                "workload_classes": len(oracle),
                "profiled_launches_off": off.stats.profiled_launches,
                "profiled_launches_on": on.stats.profiled_launches,
                "profiles_deferred_on": on.stats.profiles_deferred,
                "profiling_cycles_off": (
                    off.stats.profiling_latency_cycles
                ),
                "selections_match_oracle": drained == oracle,
            }
        )

    arms = {}
    for arm in ("off", "on"):
        arms[arm] = {
            name: tenant_report(
                latencies.get((arm, name), []),
                misses.get((arm, name), 0),
                deferred.get((arm, name), 0),
            )
            for name in ("interactive", "batch", "background")
        }

    p99_off = arms["off"]["interactive"]["p99_cycles"]
    p99_on = arms["on"]["interactive"]["p99_cycles"]
    p99_ratio = p99_on / p99_off if p99_off > 0 else float("inf")
    interactive_misses = arms["on"]["interactive"]["deadline_misses"]

    return {
        "benchmark": "traffic",
        "quick": quick,
        "config": {
            "safe_point_multiplier": SAFE_POINT_MULTIPLIER,
            "deadline_cycles": DEADLINE_CYCLES,
            "horizon": HORIZON,
            "storms": storms,
            "fleet_devices": FLEET_DEVICES,
            "streams_per_device": STREAMS_PER_DEVICE,
            "clients": CLIENTS,
        },
        "storms": storm_rows,
        "backpressure_off": arms["off"],
        "backpressure_on": arms["on"],
        "trace": {
            "events": trace_events,
            "defects": len(trace_defects),
        },
        "acceptance": {
            "p99_ratio_max": MAX_P99_RATIO,
            "p99_ratio": p99_ratio,
            "p99_ratio_ok": p99_ratio <= MAX_P99_RATIO,
            "interactive_deadline_misses": interactive_misses,
            "interactive_misses_ok": interactive_misses == 0,
            "selections_match_oracle": selections_match,
            "trace_reconciles": not trace_defects,
        },
    }


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="one storm instead of five (seconds instead of minutes)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_traffic.json",
        help="where to write the results document",
    )
    parser.add_argument(
        "--trace",
        default="TRACE_traffic.json",
        help="where to write the backpressure arm's Chrome trace",
    )
    args = parser.parse_args(argv)

    doc = run_benchmark(quick=args.quick, trace_path=args.trace)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")

    on = doc["backpressure_on"]["interactive"]
    off = doc["backpressure_off"]["interactive"]
    acceptance = doc["acceptance"]
    total = sum(row["requests"] for row in doc["storms"])
    deferred = sum(row["profiles_deferred_on"] for row in doc["storms"])
    profiled = sum(row["profiled_launches_off"] for row in doc["storms"])
    print(f"traffic benchmark ({'quick' if args.quick else 'full'} inputs)")
    print(
        f"  storms     : {len(doc['storms'])} x horizon "
        f"{doc['config']['horizon']}, {total} requests total"
    )
    print(
        f"  interactive: p99 {off['p99_cycles']:.0f} -> "
        f"{on['p99_cycles']:.0f} cycles (ratio "
        f"{acceptance['p99_ratio']:.2f}, bound "
        f"{acceptance['p99_ratio_max']:.2f}); deadline misses "
        f"{off['deadline_misses']} -> {on['deadline_misses']}"
    )
    print(
        f"  deferral   : {deferred} micro-profiles deferred under "
        f"pressure (off arm profiled {profiled} cold classes mid-storm)"
    )
    print(
        f"  converge   : drained store == oracle: "
        f"{acceptance['selections_match_oracle']}; trace reconciles: "
        f"{acceptance['trace_reconciles']}"
    )
    print(f"  written    : {args.output} (+ {args.trace})")

    ok = (
        acceptance["p99_ratio_ok"]
        and acceptance["interactive_misses_ok"]
        and acceptance["selections_match_oracle"]
        and acceptance["trace_reconciles"]
    )
    if not ok:
        print("  ACCEPTANCE FAILED", file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
