"""Benchmark: regenerate Figure 9 (data placement on GPU, Case Study II)."""

from repro.harness.experiments import fig9

from conftest import record


def test_fig9(benchmark, config, quick):
    result = benchmark.pedantic(
        lambda: fig9.run(config, quick), rounds=1, iterations=1
    )
    print()
    print(result.text)
    for group, info in result.data.items():
        series = info["series"]
        record(
            benchmark,
            {
                f"{group}.sync": series["Sync"],
                f"{group}.porple": series["PORPLE"],
                f"{group}.heuristic": series["Heuristic-based"],
                f"{group}.worst": series["Worst"],
            },
        )
        assert info["all_valid"], group
        assert series["Sync"] < 1.06, group  # paper: at most 4%

    spmv = result.data["spmv-csr"]["series"]
    # Paper: PORPLE 1.29x, heuristic 2.29x (worst); Fermi policy optimal.
    assert 1.1 < spmv["PORPLE"] < 1.7
    assert spmv["Heuristic-based"] > 1.8
    assert "porple-fermi" in result.data["spmv-csr"]["oracle_variant"]

    pf = result.data["particle filter"]["series"]
    # Paper: both baselines optimal; Rodinia's original trails (1.17x).
    assert pf["PORPLE"] < 1.05
    assert pf["Heuristic-based"] < 1.05
    assert pf["Worst"] > 1.1
