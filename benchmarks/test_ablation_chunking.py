"""Ablation: eager chunk size in asynchronous DySel (paper §2.4).

Eager execution "is divided into many chunks, imposing associated kernel
launch overhead"; big chunks amortize launches but commit more work to a
possibly-suboptimal current-best variant.  Sweeps the chunk size with the
worst variant as the initial default — the configuration that exposes the
tradeoff.
"""

import dataclasses

from repro.device import make_cpu
from repro.harness.runner import evaluate_case
from repro.workloads import sgemm

from conftest import record

CHUNK_UNITS = (1, 4, 16)


def run_sweep(config, quick):
    n = 256 if quick else 512
    results = {}
    for chunk in CHUNK_UNITS:
        swept = dataclasses.replace(config, eager_chunk_units=chunk)
        case = sgemm.schedule_case(n, swept)
        evaluation = evaluate_case(
            case, make_cpu(swept), swept, dysel_flows=("async-worst",)
        )
        results[chunk] = {
            "overhead": evaluation.relative(evaluation.dysel["async-worst"])
            - 1.0,
        }
    return results


def test_eager_chunk_size(benchmark, config, quick):
    results = benchmark.pedantic(
        lambda: run_sweep(config, quick), rounds=1, iterations=1
    )
    print()
    for chunk, info in results.items():
        print(f"  chunk x{chunk}: async(worst-initial) overhead "
              f"{info['overhead']*100:.2f}%")
        record(benchmark, {f"chunk{chunk}.overhead": info["overhead"]})
    # With a bad initial default, small chunks limit the damage: the
    # largest chunk must not beat the smallest.
    assert results[1]["overhead"] <= results[16]["overhead"] + 0.02
