"""Benchmark: regenerate the §5.3 speedup-recovery summary."""

from repro.harness.experiments import summary

from conftest import record


def test_summary(benchmark, config, quick):
    result = benchmark.pedantic(
        lambda: summary.run(config, quick), rounds=1, iterations=1
    )
    print()
    print(result.text)
    record(benchmark, dict(result.data))
    # Paper's recovery table (measured factors differ; directions must
    # hold): DySel beats LC on the diagonal input, beats both placement
    # baselines, and recovers large factors over the worst pure choices.
    if "case1_lc_recovery" in result.data:
        assert result.data["case1_lc_recovery"] > 1.05  # paper 1.15x
    assert result.data["case2_porple_recovery"] > 1.1  # paper 1.29x
    assert result.data["case2_heuristic_recovery"] > 1.7  # paper 2.29x
    assert result.data["case4_cpu_random_recovery"] > 2.0  # paper 2.98x
    assert result.data["case4_cpu_diagonal_recovery"] > 5.0  # paper 8.63x
    assert result.data["case4_gpu_random_recovery"] > 1.5  # paper 4.73x
    assert result.data["case4_gpu_diagonal_recovery"] > 5.0  # paper 22.73x
