"""Shared benchmark configuration.

Each benchmark regenerates one of the paper's tables/figures through the
experiment harness and records the headline values in
``benchmark.extra_info`` so ``pytest benchmarks/ --benchmark-only``
doubles as the reproduction log.

By default the benchmarks run at reduced ("quick") input sizes so the
whole suite finishes in a few minutes; set ``REPRO_FULL=1`` to run the
calibrated full sizes recorded in EXPERIMENTS.md.
"""

import os

import pytest

from repro.config import ReproConfig


@pytest.fixture(scope="session")
def config() -> ReproConfig:
    """Deterministic configuration shared by every benchmark."""
    return ReproConfig()


@pytest.fixture(scope="session")
def quick() -> bool:
    """False only when REPRO_FULL=1 requests paper-scale inputs."""
    return os.environ.get("REPRO_FULL", "0") != "1"


def record(benchmark, result_data):
    """Stash an experiment's headline numbers on the benchmark record."""
    for key, value in result_data.items():
        benchmark.extra_info[str(key)] = (
            round(value, 4) if isinstance(value, float) else str(value)
        )
