"""Static-analysis benchmark: profiling cycles eliminated by dominance.

A synthetic K=16 pool of one streaming kernel whose variants differ only
in statically visible redundant compute (loop trip counts scale the
per-unit flops).  A handful of contenders are within the dominance
safety margin of each other; the rest are provably slower in their *best*
case than the leaders' *worst* case, so the static cost-bound analysis
(:mod:`repro.analyze.costbound`) can prune them from the micro-profiling
candidate set before a single cycle is spent.

Two noise-free runs over the same launch measure what pruning buys
(written to ``BENCH_analyze.json``):

1. **baseline**  — ``analyze.dominance`` off: all 16 candidates profile.
2. **dominance** — pruning on: only non-dominated survivors profile.

Plus a traced serve phase (scheduler + store) with pruning on, whose
per-device launch traces must pass :func:`repro.obs.export.reconcile`.

Acceptance: the dominance run eliminates at least 40% of the baseline's
profiling latency cycles, both runs select the same variant as the
noise-free cost-model oracle (zero selection regressions), no pruned
variant is the oracle, and the serve traces reconcile with at least one
``DOMINANCE_PRUNE`` event recorded.

Run with ``--quick`` for CI-sized inputs.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from typing import Dict, List

import numpy as np

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.analyze.dominance import pool_cost_bounds  # noqa: E402
from repro.compiler.variants import VariantPool  # noqa: E402
from repro.config import AnalyzeSettings, ReproConfig  # noqa: E402
from repro.core.runtime import DySelRuntime  # noqa: E402
from repro.device import make_cpu  # noqa: E402
from repro.device.cost import CostModel  # noqa: E402
from repro.kernel import (  # noqa: E402
    AccessPattern,
    ArgSpec,
    Buffer,
    KernelIR,
    KernelSignature,
    KernelSpec,
    KernelVariant,
    Loop,
    LoopBound,
    MemoryAccess,
    WorkRange,
)
from repro.obs.events import EventKind  # noqa: E402
from repro.obs.export import reconcile, write_chrome_trace  # noqa: E402
from repro.serve import LaunchScheduler, SelectionStore, ServeRequest  # noqa: E402

#: Acceptance thresholds (mirrored in EXPERIMENTS.md).
MIN_CYCLE_REDUCTION = 0.40

#: Pool size (the K the tentpole targets).
POOL_K = 16

#: Elements one workload unit covers.
UNIT = 64

#: Redundant-work scale per variant: four contenders inside the default
#: 1.25 dominance margin of the best, twelve statically hopeless.
SCALES = (1.0, 1.05, 1.1, 1.2) + tuple(float(s) for s in range(2, 14))


def make_variant(name: str, scale: float) -> KernelVariant:
    """One compute-bound streaming variant doing ``scale``× the flops.

    The redundancy is a *static* loop bound, so the cost interval's
    compute term evaluates exactly and dominance can see it without
    running anything.
    """
    trips = 16

    def executor(args, unit_start: int, unit_end: int) -> None:
        x = args["x"].data
        y = args["y"].data
        y[unit_start * UNIT : unit_end * UNIT] = (
            2.0 * x[unit_start * UNIT : unit_end * UNIT]
        )

    ir = KernelIR(
        loops=(Loop("k", LoopBound(static_trips=trips)),),
        accesses=(
            MemoryAccess(
                "x",
                False,
                AccessPattern.UNIT_STRIDE,
                4.0 * UNIT / trips,
                loop="k",
            ),
            MemoryAccess(
                "y",
                True,
                AccessPattern.UNIT_STRIDE,
                4.0 * UNIT / trips,
                loop="k",
            ),
        ),
        flops_per_trip=4096.0 * scale,
        work_group_threads=UNIT,
    )
    return KernelVariant(
        name=name, ir=ir, executor=executor, wa_factor=1, work_group_size=UNIT
    )


def build_pool() -> VariantPool:
    """The synthetic K=16 pool with large static cost spread."""
    spec = KernelSpec(
        signature=KernelSignature(
            "redundant", (ArgSpec("x"), ArgSpec("y", is_output=True))
        )
    )
    variants = tuple(
        make_variant(f"v{i:02d}_x{scale:g}", scale)
        for i, scale in enumerate(SCALES)
    )
    return VariantPool(spec=spec, variants=variants)


def fresh_args(units: int) -> Dict[str, object]:
    """One launch's argument mapping (fresh output buffer)."""
    n = units * UNIT
    return {
        "x": Buffer("x", np.arange(n, dtype=np.float32)),
        "y": Buffer("y", np.zeros(n, dtype=np.float32), writable=True),
    }


def profiled_launch(config: ReproConfig, units: int):
    """One profiling launch of a fresh pool on a fresh runtime."""
    runtime = DySelRuntime(make_cpu(config), config)
    pool = build_pool()
    runtime.register_pool(pool)
    result = runtime.launch_kernel(
        "redundant", fresh_args(units), units, profiling=True
    )
    return runtime, pool, result


def oracle_selection(config: ReproConfig, units: int) -> str:
    """The noise-free cost-model winner (ground truth selection)."""
    device = make_cpu(config)
    model = CostModel(device)
    pool = build_pool()
    args = fresh_args(units)
    costs = {
        v.name: model.launch_cycles(v, args, WorkRange(0, units))
        for v in pool.variants
    }
    return min(costs, key=costs.get)


def serve_phase(config: ReproConfig, units: int, requests: int):
    """Concurrent-serve smoke: traced scheduler with pruning enabled."""
    scheduler = LaunchScheduler(
        (make_cpu(config),), config=config, store=SelectionStore()
    )
    scheduler.register_pool(build_pool())
    batch = [
        ServeRequest(
            kernel="redundant", args=fresh_args(units), workload_units=units
        )
        for _ in range(requests)
    ]
    outcomes = scheduler.serve_all(batch, clients=4)
    return scheduler, outcomes


def run_benchmark(quick: bool, trace_path: str) -> Dict[str, object]:
    """Run both scenarios and return the BENCH_analyze.json document."""
    units = 256 if quick else 1024
    serve_requests = 6 if quick else 12

    base_config = ReproConfig().without_noise()
    dom_settings = AnalyzeSettings(dominance=True)
    dom_config = dataclasses.replace(
        base_config, analyze=dom_settings, trace=True
    )

    verdict = pool_cost_bounds(
        build_pool(),
        "cpu",
        margin=dom_settings.dominance_margin,
        workload_units=units,
    )

    _, _, base_result = profiled_launch(base_config, units)
    dom_runtime, _, dom_result = profiled_launch(dom_config, units)
    oracle = oracle_selection(base_config, units)

    base_latency = base_result.profiling_latency_cycles
    dom_latency = dom_result.profiling_latency_cycles
    reduction = (
        1.0 - dom_latency / base_latency if base_latency > 0 else 0.0
    )
    prune_events = sum(
        1
        for e in dom_runtime.tracer.events
        if e.kind is EventKind.DOMINANCE_PRUNE
    )

    serve_run, serve_outcomes = serve_phase(dom_config, units, serve_requests)
    trace_problems: List[str] = []
    for device, events in serve_run.device_traces().items():
        for problem in reconcile(events):
            trace_problems.append(f"{device}: {problem}")
    serve_prunes = sum(
        1
        for events in serve_run.device_traces().values()
        for e in events
        if e.kind is EventKind.DOMINANCE_PRUNE
    )
    write_chrome_trace(dom_runtime.tracer.events, trace_path)

    return {
        "benchmark": "analyze",
        "quick": quick,
        "workload": {
            "kernel": "redundant",
            "pool_size": POOL_K,
            "workload_units": units,
            "dominance_margin": dom_settings.dominance_margin,
            "scales": list(SCALES),
        },
        "static_verdict": {
            "pruned": list(verdict.pruned),
            "survivors": list(verdict.survivors),
            "best_upper_bound": verdict.best_name,
        },
        "profiling_latency_cycles": {
            "baseline": base_latency,
            "dominance": dom_latency,
            "reduction": reduction,
        },
        "selections": {
            "baseline": base_result.selected,
            "dominance": dom_result.selected,
            "oracle": oracle,
        },
        "serve_run": {
            "requests": serve_requests,
            "profiled_launches": serve_run.stats.profiled_launches,
            "store_hits": serve_run.stats.store_hits,
            "dominance_prune_events": serve_prunes,
            "trace_problems": trace_problems,
        },
        "acceptance": {
            "cycle_reduction": reduction,
            "cycle_reduction_min": MIN_CYCLE_REDUCTION,
            "cycle_reduction_ok": reduction >= MIN_CYCLE_REDUCTION,
            "selection_match_ok": (
                base_result.selected == oracle
                and dom_result.selected == oracle
            ),
            "oracle_not_pruned_ok": oracle not in verdict.pruned,
            "prune_event_recorded_ok": prune_events >= 1,
            "trace_reconciles_ok": not trace_problems,
        },
    }


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized inputs (seconds instead of minutes)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_analyze.json",
        help="where to write the results document",
    )
    parser.add_argument(
        "--trace",
        default="TRACE_analyze.json",
        help="where to write the dominance run's Chrome trace",
    )
    args = parser.parse_args(argv)

    doc = run_benchmark(quick=args.quick, trace_path=args.trace)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")

    latency = doc["profiling_latency_cycles"]
    acceptance = doc["acceptance"]
    verdict = doc["static_verdict"]
    print(f"analyze benchmark ({'quick' if doc['quick'] else 'full'} inputs)")
    print(
        f"  pruned     : {len(verdict['pruned'])}/{POOL_K} variant(s) "
        f"statically dominated (best bound: {verdict['best_upper_bound']})"
    )
    print(
        f"  profiling  : baseline {latency['baseline']:.0f} cycles -> "
        f"dominance {latency['dominance']:.0f} cycles "
        f"({100 * latency['reduction']:.1f}% eliminated)"
    )
    print(
        f"  selection  : baseline {doc['selections']['baseline']} / "
        f"dominance {doc['selections']['dominance']} / oracle "
        f"{doc['selections']['oracle']}"
    )
    print(f"  trace      : {args.trace}")
    print(f"  written    : {args.output}")

    ok = all(
        acceptance[key]
        for key in (
            "cycle_reduction_ok",
            "selection_match_ok",
            "oracle_not_pruned_ok",
            "prune_event_recorded_ok",
            "trace_reconciles_ok",
        )
    )
    if not ok:
        print("  ACCEPTANCE FAILED", file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
