"""Drift benchmark: mid-run input shift, automatic re-selection.

Serves one workload class whose input regime shifts halfway through —
spmv-csr traffic moves from the random matrix to the diagonal one while
the workload-class key is pinned, so the persisted selection silently
goes stale.  Three runs over the same traffic measure what the drift
detector buys (written to ``BENCH_drift.json``):

1. **drift**    — store armed with a :class:`DriftConfig`: the detector
   confirms the shift from served measurements, the stale entry decays,
   exactly one launch re-profiles, and the new winner serves the tail.
2. **pinned**   — the same store without drift: the stale pre-shift
   winner keeps serving post-shift traffic (the failure mode).
3. **oracle**   — post-shift traffic served from a cold store: the best
   selection the re-profile could possibly recover.

Acceptance: the drift run's post-shift tail must recover at least 80% of
the oracle's tail throughput, with exactly one reselection episode, and
the drift run's Chrome trace must pass ``python -m repro.obs reconcile``
(it is written next to the JSON for exactly that).

Run with ``--quick`` for CI-sized inputs.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Tuple

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.config import ReproConfig  # noqa: E402
from repro.device import make_cpu  # noqa: E402
from repro.drift import DriftConfig  # noqa: E402
from repro.obs.export import reconcile, write_chrome_trace  # noqa: E402
from repro.serve import (  # noqa: E402
    LaunchScheduler,
    SelectionStore,
    ServeRequest,
    WorkloadSignature,
)
from repro.workloads import spmv_csr  # noqa: E402

#: Acceptance thresholds (mirrored in EXPERIMENTS.md).
MIN_ORACLE_RECOVERY = 0.80

#: Detector tuning: a short warmup so the pre-shift phase freezes a
#: baseline, two confirming exceedances so one noisy read cannot fire.
DRIFT = DriftConfig(warmup=4, confirm=2, cooldown=4)


def pinned_signature(kernel: str) -> WorkloadSignature:
    """One fixed workload class for all traffic.

    The shift is only *drift* if the class key cannot see it — this
    models a deployment whose feature extractor does not capture the
    property that changed (here: matrix regularity).
    """
    return WorkloadSignature(
        kernel=kernel, device_kind="cpu", features=(("class", "pinned"),)
    )


def build_traffic(
    size: int, per_phase: int, config: ReproConfig
) -> Tuple[list, List[ServeRequest], list]:
    """Pre-shift random-matrix requests, then diagonal-matrix requests,
    all pinned to one workload class."""
    cases = [
        spmv_csr.input_dependent_case("cpu", kind, size, config)
        for kind in ("random", "diagonal")
    ]
    signature = pinned_signature(cases[0].pool.name)
    batch: List[ServeRequest] = []
    checks = []
    for case in cases:
        for _ in range(per_phase):
            args = case.fresh_args()
            batch.append(
                ServeRequest(
                    kernel=case.pool.name,
                    args=args,
                    workload_units=case.workload_units,
                    signature=signature,
                )
            )
            checks.append((case, args))
    return cases, batch, checks


def serve(cases, batch, checks, store, config) -> Tuple[LaunchScheduler, list]:
    """Serve the batch serially (one device, in order) so each run sees
    the same request sequence; validate every output."""
    scheduler = LaunchScheduler((make_cpu(config),), config=config, store=store)
    scheduler.register_pool(cases[0].pool)
    outcomes = [scheduler.launch(request) for request in batch]
    for case, args in checks:
        if not case.validate(args):
            raise SystemExit(f"served output failed validation: {case.name}")
    return scheduler, outcomes


def tail_cycles_per_unit(outcomes, tail: int) -> float:
    """Mean per-unit cost of the last ``tail`` requests."""
    window = outcomes[-tail:]
    total = sum(o.result.elapsed_cycles for o in window)
    units = sum(o.request.workload_units for o in window)
    return total / units


def run_benchmark(quick: bool, trace_path: str) -> Dict[str, object]:
    """Run all three scenarios and return the BENCH_drift.json document."""
    config = ReproConfig()
    size = 2048 if quick else 8192
    per_phase = 10 if quick else 20
    tail = per_phase // 2

    # Scenario 1: drift-armed store, traced end to end.
    traced = ReproConfig(trace=True)
    cases, batch, checks = build_traffic(size, per_phase, traced)
    drift_run, drift_outcomes = serve(
        cases, batch, checks, SelectionStore(drift=DRIFT), traced
    )
    controller = drift_run.store.drift
    reselections = controller.reselections
    episodes = [
        {
            "key": episode.key,
            "stale_variant": episode.stale_variant,
            "new_variant": episode.new_variant,
            "reselected": episode.reselected,
            "completed": episode.completed,
        }
        for episode in controller.episodes
    ]
    write_chrome_trace(drift_run.tracer.events, trace_path)
    trace_problems = reconcile(drift_run.tracer.events)

    # Scenario 2: the same store shape without drift — the stale winner
    # keeps serving the post-shift phase.
    cases, batch, checks = build_traffic(size, per_phase, config)
    pinned_run, pinned_outcomes = serve(
        cases, batch, checks, SelectionStore(), config
    )

    # Scenario 3: the oracle — post-shift traffic served from cold, so
    # the selection is learned on the post-shift input itself.
    cases, batch, checks = build_traffic(size, per_phase, config)
    post_shift = batch[per_phase:]
    post_checks = checks[per_phase:]
    oracle_run, oracle_outcomes = serve(
        cases, post_shift, post_checks, SelectionStore(), config
    )

    drift_tail = tail_cycles_per_unit(drift_outcomes, tail)
    pinned_tail = tail_cycles_per_unit(pinned_outcomes, tail)
    oracle_tail = tail_cycles_per_unit(oracle_outcomes, tail)
    recovery = oracle_tail / drift_tail if drift_tail > 0 else 0.0
    # The failure mode must actually occur: without drift, the post-shift
    # tail is still served by the pre-shift winner.
    pinned_tail_variant = pinned_outcomes[-1].result.selected
    stale_variant = episodes[0]["stale_variant"] if episodes else None
    pinned_stays_stale = (
        stale_variant is not None and pinned_tail_variant == stale_variant
    )

    return {
        "benchmark": "drift",
        "quick": quick,
        "workload": {
            "kernel": cases[0].pool.name,
            "matrix_size": size,
            "shift": "random -> diagonal at request %d" % per_phase,
            "requests": 2 * per_phase,
            "tail_requests": tail,
            "drift_config": {
                "warmup": DRIFT.warmup,
                "confirm": DRIFT.confirm,
                "cooldown": DRIFT.cooldown,
                "delta": DRIFT.delta,
                "threshold": DRIFT.threshold,
            },
        },
        "tail_cycles_per_unit": {
            "drift": drift_tail,
            "pinned": pinned_tail,
            "oracle": oracle_tail,
        },
        "drift_run": {
            "reselections": reselections,
            "confirmations": controller.confirmations,
            "episodes": episodes,
            "store_decays": drift_run.store.stats.decays,
            "profiled_launches": drift_run.stats.profiled_launches,
            "pinned_profiled_launches": pinned_run.stats.profiled_launches,
            "oracle_profiled_launches": oracle_run.stats.profiled_launches,
            "trace_events": len(drift_run.tracer.events),
            "trace_problems": trace_problems,
        },
        "acceptance": {
            "oracle_recovery": recovery,
            "oracle_recovery_min": MIN_ORACLE_RECOVERY,
            "oracle_recovery_ok": recovery >= MIN_ORACLE_RECOVERY,
            "one_reselection_ok": reselections == 1,
            "pinned_tail_variant": pinned_tail_variant,
            "pinned_stays_stale_ok": pinned_stays_stale,
            "trace_reconciles_ok": not trace_problems,
        },
    }


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI-sized inputs (seconds instead of minutes)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_drift.json",
        help="where to write the results document",
    )
    parser.add_argument(
        "--trace",
        default="TRACE_drift.json",
        help="where to write the drift run's Chrome trace",
    )
    args = parser.parse_args(argv)

    doc = run_benchmark(quick=args.quick, trace_path=args.trace)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")

    tails = doc["tail_cycles_per_unit"]
    acceptance = doc["acceptance"]
    drift_info = doc["drift_run"]
    print(f"drift benchmark ({'quick' if doc['quick'] else 'full'} inputs)")
    print(
        f"  tail cost  : drift {tails['drift']:.3f} / pinned "
        f"{tails['pinned']:.3f} / oracle {tails['oracle']:.3f} "
        f"cycles per unit"
    )
    print(
        f"  recovery   : {100 * acceptance['oracle_recovery']:.1f}% of "
        f"oracle throughput "
        f"({drift_info['reselections']} reselection(s), "
        f"{drift_info['store_decays']} store decay(s))"
    )
    for episode in drift_info["episodes"]:
        print(
            f"  episode    : {episode['stale_variant']} -> "
            f"{episode['new_variant']}"
        )
    print(f"  trace      : {args.trace} ({drift_info['trace_events']} events)")
    print(f"  written    : {args.output}")

    ok = (
        acceptance["oracle_recovery_ok"]
        and acceptance["one_reselection_ok"]
        and acceptance["pinned_stays_stale_ok"]
        and acceptance["trace_reconciles_ok"]
    )
    if not ok:
        print("  ACCEPTANCE FAILED", file=sys.stderr)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
