"""Benchmark: regenerate Figure 1 (vectorization strategies on CPU)."""

from repro.harness.experiments import fig1

from conftest import record


def test_fig1(benchmark, config, quick):
    result = benchmark.pedantic(
        lambda: fig1.run(config, quick), rounds=1, iterations=1
    )
    print()
    print(result.text)
    for group in ("sgemm", "spmv-jds"):
        info = result.data[group]
        record(
            benchmark,
            {
                f"{group}.heuristic_width": info["heuristic_width"],
                f"{group}.best": info["best"],
                f"{group}.best_over_heuristic": info[
                    "best_speedup_over_heuristic"
                ],
            },
        )
    # Paper shape: the heuristic is suboptimal on both kernels, in
    # opposite directions (picks too narrow for sgemm, too wide for spmv).
    assert result.data["sgemm"]["best"] == "8-way"
    assert result.data["spmv-jds"]["best"] != "8-way"
