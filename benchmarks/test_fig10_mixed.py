"""Benchmark: regenerate Figure 10 (mixed optimizations, Case Study III)."""

from repro.harness.experiments import fig10

from conftest import record


def test_fig10_cpu(benchmark, config, quick):
    result = benchmark.pedantic(
        lambda: fig10.run_device("cpu", config, quick), rounds=1, iterations=1
    )
    print()
    print(result.text)
    for group, info in result.data.items():
        record(benchmark, {
            f"{group}.sync": info["series"]["Sync"],
            f"{group}.worst": info["series"]["Worst"],
        })
        assert info["all_valid"], group
        assert info["series"]["Sync"] < 1.2, group
        # Paper: base versions win on CPU.
        assert "tiled" not in info["oracle_variant"], group


def test_fig10_gpu(benchmark, config, quick):
    result = benchmark.pedantic(
        lambda: fig10.run_device("gpu", config, quick), rounds=1, iterations=1
    )
    print()
    print(result.text)
    for group, info in result.data.items():
        record(benchmark, {
            f"{group}.sync": info["series"]["Sync"],
            f"{group}.worst": info["series"]["Worst"],
        })
        assert info["all_valid"], group
        assert info["series"]["Sync"] < 1.25, group
