"""Benchmark: regenerate Figure 8 (LC scheduling on CPU, Case Study I)."""

from repro.harness.experiments import fig8
from repro.harness.report import geomean

from conftest import record


def test_fig8(benchmark, config, quick):
    result = benchmark.pedantic(
        lambda: fig8.run(config, quick), rounds=1, iterations=1
    )
    print()
    print(result.text)
    for group, info in result.data.items():
        series = info["series"]
        record(
            benchmark,
            {
                f"{group}.sync": series["Sync"],
                f"{group}.lc": series["LC"],
                f"{group}.worst": series["Worst"],
            },
        )
        assert info["all_valid"], group
        # DySel near-oracle on every benchmark (paper: negligible
        # overhead; <8% worst observed across the evaluation).
        assert series["Sync"] < 1.25, group
        assert series["Async(best)"] < 1.25, group

    # LC optimal except spmv-csr on the diagonal matrix.
    diag = "spmv-csr (diagonal)"
    if diag in result.data:
        assert result.data[diag]["lc_variant"].endswith("DFO")
        assert result.data[diag]["oracle_variant"].endswith("BFO")
        assert result.data[diag]["series"]["LC"] > 1.05  # paper: 1.15x
    # The spread justifies selection: worst is far from oracle somewhere.
    worst_values = [info["series"]["Worst"] for info in result.data.values()]
    assert max(worst_values) > 5.0
