"""Benchmark: regenerate Table 1 (productive profiling mode properties)."""

from repro.harness.experiments import table1

from conftest import record


def test_table1(benchmark, config, quick):
    result = benchmark.pedantic(
        lambda: table1.run(config, quick), rounds=1, iterations=1
    )
    print()
    print(result.text)
    for mode, info in result.data.items():
        record(
            benchmark,
            {
                f"{mode}.productive": float(info["productive_slices"]),
                f"{mode}.copies": float(info["extra_copies"]),
                f"{mode}.async": str(info["async_support"]),
            },
        )
    k = result.data["fully"]["k"]
    assert result.data["fully"] == {
        "k": k, "productive_slices": k, "extra_copies": 0, "async_support": True
    }
    assert result.data["hybrid"]["extra_copies"] == k - 1
    assert result.data["swap"]["extra_copies"] == k
    assert not result.data["swap"]["async_support"]
